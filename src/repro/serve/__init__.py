"""Multi-stream serving: concurrent fusion sessions over a shared
engine pool.

The ROADMAP's north star is a service handling heavy traffic — many
independent fusion workloads contending for one box's CPU/NEON/FPGA
inventory.  This package is that serving layer:

* :class:`EnginePool` — the hardware inventory as leasable engine
  instances, with a strict lease/release protocol and occupancy
  accounting (:class:`EngineLease`);
* :class:`AdmissionController` — bounded work-in-progress: a global
  ``max_in_flight`` frame cap plus bounded per-stream pending queues,
  so backpressure reaches sources instead of growing buffers;
* :class:`FusionService` — N named streams (each a full
  :class:`~repro.session.FusionSession` with its own config, graph and
  lowered plan), driven concurrently by a worker team under
  energy-fair scheduling (pool energy split by priority, charged at
  the planner's modelled J/frame);
* :class:`ServiceReport` — per-stream :class:`~repro.session.FusionReport`
  plus the aggregate only the service can see: throughput, per-engine
  occupancy, the energy bill split by tenant, the frame ledger;
* :mod:`repro.serve.ops` — live operations: per-stream SLOs
  (:class:`StreamSLO`) driving admission and scheduling, runtime
  attach/detach churn (``live=True``), bounded hysteretic frame
  shedding under overload (:class:`ShedPolicy`), and the export layer
  (:class:`MetricsRegistry` Prometheus text, :class:`EventLog` JSONL).

Determinism contract: with a fixed seed and any worker count, each
stream's output frames are bitwise-identical to running that stream
alone on its leased engines.

Quick start::

    from repro.serve import FusionService
    from repro.session import FusionConfig, SyntheticSource

    service = FusionService(pool={"neon": 1, "fpga": 2})
    service.add_stream("a", config=FusionConfig(engine="fpga", seed=1),
                       source=SyntheticSource(seed=1), frames=32)
    service.add_stream("b", config=FusionConfig(engine="neon", seed=2),
                       source=SyntheticSource(seed=2), frames=32,
                       priority=2.0)
    report = service.serve()
    print(report.describe())
"""

from .admission import AdmissionController
from .ops import (EventLog, MetricsRegistry, ShedPolicy, SLORejection,
                  StreamSLO)
from .pool import EngineLease, EnginePool
from .report import ServiceReport
from .service import FusionService, StreamSpec
from .shard import ShardedFusionService

__all__ = [
    "AdmissionController",
    "EngineLease", "EnginePool",
    "EventLog", "MetricsRegistry",
    "FusionService", "StreamSpec",
    "ServiceReport",
    "ShardedFusionService",
    "ShedPolicy", "SLORejection", "StreamSLO",
]
