"""The multi-stream fusion service: N sessions over one engine pool.

The paper fuses one video pair on a fixed CPU–FPGA team; the serving
question — many independent streams contending for the same silicon —
is where heterogeneous teams actually pay off (Nunez-Yanez et al.,
arXiv:1802.03316) and where per-kernel engine choice shifts with
contention (Qasaimeh et al., arXiv:1906.11879).  :class:`FusionService`
answers it with the pieces the package already has: each stream is a
full :class:`~repro.session.FusionSession` (its own config, graph,
lowered plan, scheduler, calibrator, telemetry), and the service
multiplexes their *plan interpreters* over a shared
:class:`~repro.serve.EnginePool`.

Execution model
---------------
* One **capture thread per stream** pulls pairs from the stream's
  source and runs the plan's ordered head (ingest + registration) in
  frame order — after passing :class:`~repro.serve.AdmissionController`
  (global ``max_in_flight`` cap, bounded per-stream pending queues, so
  backpressure reaches the source instead of growing a buffer).
* A team of **service workers** repeatedly picks the next grant under
  one condition variable: among streams with pending frames whose
  required engine has an idle pool instance, take the stream with the
  lowest ``charged_mj / priority`` — *energy-fair scheduling*: pool
  energy (modelled J/frame from the planner's cost model) is divided
  in proportion to priority, so a cheap low-power stream is not
  starved by an expensive one, and a priority-2 stream earns twice the
  energy share.  The worker leases the engine, drives the stream's
  compute stages (micro-batched through
  :meth:`~repro.exec.FrameProcessor.process_batch` when the plan
  allows it), finalizes in frame order, then releases the lease —
  on success, error and cancellation alike.

Determinism contract
--------------------
Per-stream compute is serialized (one grant at a time per stream) and
every stage's arithmetic is bound to the frame's assigned engine —
leased pool instances come from the same registry factory as a solo
session's engines — so **with a fixed seed and any worker count, each
stream's output frames are bitwise-identical to running that stream
alone on its leased engines**.  Concurrency only changes wall-clock
interleaving across streams, never a single output bit.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple, Union

from ..errors import ConfigurationError, FusionError
from ..exec.base import ensure_source_open
from ..hw.registry import create_engine
from ..session.config import FusionConfig
from ..session.report import FusedFrameResult, FusionReport
from ..session.session import FusionSession
from ..session.sources import FrameSource, as_frame_source
from .admission import AdmissionController
from .pool import EngineLease, EnginePool
from .report import ServiceReport

#: placement label the planner gives host-side stages (no engine cost)
_HOST = "host"


class StreamSpec:
    """One tenant of the service: a named fusion workload.

    Parameters
    ----------
    name:
        Unique stream identity, the key of every per-stream report.
    config:
        The stream's :class:`~repro.session.FusionConfig` — geometry,
        engine/scheduler, features.  ``executor`` is ignored: the
        service *is* the executor (``engine_team`` is rejected, the
        pool owns the hardware).
    source:
        The stream's :class:`~repro.session.FrameSource` (or plain
        iterable of pairs).
    frames:
        Stop after this many fused frames (``None``: run until the
        source is exhausted — never for infinite sources).
    priority:
        Energy-fair weight (> 0): the stream's share of pool energy is
        proportional to it.
    batch_frames:
        Dispatch granularity: how many pending frames one engine
        grant may drain under a single lease — a batchable plan rides
        its stacked micro-batch schedule, a sequential plan runs the
        grant frame-major in frame order.  Default: the config's
        ``batch_size``.  Set 1 to force per-frame cadence (lowest
        latency); granularity never changes output bits, only
        wall-clock.
    on_result:
        Optional callback invoked with each
        :class:`~repro.session.FusedFrameResult` in frame order.
    """

    def __init__(self, name: str, config: FusionConfig,
                 source: FrameSource, frames: Optional[int] = None,
                 priority: float = 1.0,
                 batch_frames: Optional[int] = None,
                 on_result: Optional[Callable[[FusedFrameResult], None]]
                 = None):
        if not name or not isinstance(name, str):
            raise ConfigurationError(
                f"stream name must be a non-empty string, got {name!r}")
        if frames is not None and frames < 1:
            raise ConfigurationError(
                f"stream {name!r}: frames must be >= 1 or None, got "
                f"{frames}")
        if not (priority > 0):
            raise ConfigurationError(
                f"stream {name!r}: priority must be > 0, got {priority}")
        if batch_frames is not None and batch_frames < 1:
            raise ConfigurationError(
                f"stream {name!r}: batch_frames must be >= 1 or None, "
                f"got {batch_frames}")
        if config.engine_team is not None:
            raise ConfigurationError(
                f"stream {name!r}: engine_team is not servable — the "
                f"service leases engines from its shared pool; size "
                f"the pool instead")
        self.name = name
        self.config = config
        self.source = source
        self.frames = frames
        self.priority = float(priority)
        self.batch_frames = batch_frames
        self.on_result = on_result


class _StreamState:
    """Service-side runtime of one stream."""

    def __init__(self, spec: StreamSpec, index: int):
        self.spec = spec
        self.name = spec.name
        self.index = index  # registration order, the scheduling tie-break
        # a private session per tenant: all ordered policies (frame
        # indices, scheduler observations, calibration, telemetry)
        # live here, untouched by other streams
        self.session = FusionSession(spec.config)
        self.processor = self.session._processor
        self.plan = self.session.plan
        self.source = as_frame_source(spec.source)
        self.pending: Deque[object] = deque()
        self.busy = False
        self.capture_done = False
        self.dispatched = 0
        self.finalized = 0
        self.grants = 0
        self.charged_mj = 0.0
        self.started_s: Optional[float] = None
        self.ended_s: Optional[float] = None
        self.mark = self.session._snapshot()
        if spec.config.keep_records:
            self.session._batch_records = []
        #: per-leased-instance worker contexts (id(engine) -> ctx)
        self.contexts: Dict[int, object] = {}
        # sequential plans still take multi-frame grants (the frames
        # run frame-major, in order, under one lease), so a temporal
        # stream does not pay per-frame dispatch overhead either
        self.batch_frames = (spec.batch_frames
                             if spec.batch_frames is not None
                             else spec.config.batch_size)
        self.est_mj_per_frame = self._estimate_mj()

    def required_engines(self) -> Tuple[str, ...]:
        """Engine names frames of this stream may be assigned to."""
        session = self.session
        if session.scheduler is not None:  # online: the whole probe set
            return tuple(e.name for e in session.scheduler.engines)
        return (session._engine.name,)

    def _estimate_mj(self) -> float:
        """Modelled mJ/frame from the planner's cost model — the
        energy-fair scheduler's charge per granted frame."""
        power = self.spec.config.power_model
        engines: Dict[str, object] = {}
        mj = 0.0
        for node in self.plan.nodes.values():
            label = node.engine
            if label == _HOST or label.startswith("team(") \
                    or node.model_seconds <= 0:
                continue
            if label not in engines:
                engines[label] = create_engine(label)
            mj += (node.model_seconds
                   * power.power_w(engines[label].power_mode) * 1e3)
        return mj

    def done(self) -> bool:
        return self.capture_done and not self.pending and not self.busy

    def close(self) -> None:
        """Release the stream's source and session (both idempotent)."""
        self.source.close()
        self.session.close()


class FusionService:
    """Serve many named fusion streams over one shared engine pool.

    Usage::

        service = FusionService(pool={"arm": 1, "neon": 1, "fpga": 2},
                                max_in_flight=8, stream_queue_depth=4)
        service.add_stream("gate-cam", config=FusionConfig(engine="fpga"),
                           source=SyntheticSource(seed=1), frames=64)
        service.add_stream("tower-cam", config=FusionConfig(temporal=True),
                           source=SyntheticSource(seed=2), frames=64,
                           priority=2.0)
        report = service.serve()          # blocking; or start()/wait()
        report.streams["gate-cam"].model_millijoules_total

    A service instance drives exactly one :meth:`serve` (mirroring the
    one-shot executors); it is a context manager, and :meth:`cancel`
    ends a drive early with every lease released and every thread
    joined.
    """

    #: seconds between stop-flag checks while blocked on the condition
    TICK_S = 0.05
    #: seconds to wait for each service thread to join at shutdown
    JOIN_TIMEOUT_S = 10.0

    def __init__(self, pool: Union[EnginePool, Dict[str, int], tuple,
                                   list],
                 max_in_flight: int = 8, stream_queue_depth: int = 4,
                 workers: Optional[int] = None):
        self.pool = pool if isinstance(pool, EnginePool) \
            else EnginePool(pool)
        self._owns_pool = not isinstance(pool, EnginePool)
        if workers is None:
            workers = self.pool.size
        if workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._cond = threading.Condition()
        self.admission = AdmissionController(
            self._cond, max_in_flight=max_in_flight,
            stream_queue_depth=stream_queue_depth)
        self._streams: Dict[str, _StreamState] = {}
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._error: Optional[BaseException] = None
        self._error_lock = threading.Lock()
        self._started = False
        self._finished = False
        self._cancelled = False
        self._t0 = 0.0
        self._t1 = 0.0
        self._report: Optional[ServiceReport] = None

    # -- registration ----------------------------------------------------
    def add_stream(self, name: str, config: Optional[FusionConfig] = None,
                   source: Optional[FrameSource] = None,
                   frames: Optional[int] = None, priority: float = 1.0,
                   batch_frames: Optional[int] = None,
                   on_result: Optional[Callable] = None,
                   **config_overrides) -> StreamSpec:
        """Register one stream; validates it against the pool.

        ``config_overrides`` are convenience field overrides applied on
        top of ``config`` (or a default config), mirroring
        :class:`~repro.session.FusionSession`'s constructor.
        """
        if self._started:
            raise ConfigurationError(
                "cannot add streams to a service that already started")
        if name in self._streams:
            raise ConfigurationError(
                f"duplicate stream name {name!r}")
        if config is None:
            config = FusionConfig(**config_overrides)
        elif config_overrides:
            config = config.with_overrides(**config_overrides)
        if source is None:
            raise ConfigurationError(
                f"stream {name!r} needs a frame source")
        spec = StreamSpec(name=name, config=config, source=source,
                          frames=frames, priority=priority,
                          batch_frames=batch_frames, on_result=on_result)
        state = _StreamState(spec, index=len(self._streams))
        missing = [engine for engine in state.required_engines()
                   if self.pool.count(engine) == 0]
        if missing:
            state.close()
            raise ConfigurationError(
                f"stream {name!r} may select engine(s) {missing} but "
                f"the pool only holds {dict(self.pool.stats()['inventory'])}; "
                f"add instances or pin the stream to a pooled engine")
        # a grant can never need more frames than admission allows to
        # accumulate, or batch-ready dispatch would deadlock against
        # the very bounds that protect the service
        state.batch_frames = min(state.batch_frames,
                                 self.admission.stream_queue_depth,
                                 self.admission.max_in_flight)
        self._streams[name] = state
        self.admission.register(name)
        return spec

    # -- error/stop plumbing ----------------------------------------------
    def _fail(self, exc: BaseException) -> None:
        with self._error_lock:
            if self._error is None:
                self._error = exc
        self._stop.set()
        with self._cond:
            self._cond.notify_all()

    def _stopped(self) -> bool:
        return self._stop.is_set()

    # -- capture (one thread per stream) ----------------------------------
    def _capture(self, st: _StreamState) -> None:
        produced = 0
        limit = st.spec.frames
        try:
            iterator = iter(st.source)
            while not self._stop.is_set() \
                    and (limit is None or produced < limit):
                if not self.admission.admit(st.name, self._stopped):
                    return  # cancelled while backpressured
                try:
                    ensure_source_open(st.source)
                except FusionError as exc:
                    raise FusionError(f"stream {st.name!r}: {exc}") \
                        from None
                try:
                    pair = next(iterator)
                except StopIteration:
                    # the admission ticket was never attached to a frame
                    with self._cond:
                        self.admission.retract(st.name)
                    return
                task = st.processor.ingest(pair, produced)
                now = time.perf_counter()
                with self._cond:
                    if st.started_s is None:
                        st.started_s = now
                    st.pending.append(task)
                    self._cond.notify_all()
                produced += 1
        except BaseException as exc:  # noqa: BLE001 - crosses threads
            self._fail(exc)
        finally:
            with self._cond:
                st.capture_done = True
                self._cond.notify_all()

    # -- dispatch ---------------------------------------------------------
    def _all_done_locked(self) -> bool:
        return all(st.done() for st in self._streams.values())

    def _select_locked(self) -> Optional[Tuple[_StreamState, List[object],
                                               EngineLease]]:
        """The energy-fair pick: among dispatchable streams, the one
        with the lowest charged-energy-per-priority; grants drain up
        to ``batch_frames`` same-engine frames.  Caller holds the
        service condition.

        A batchable stream is preferred once *batch-ready* (a full
        micro-batch pending, or its capture finished), so the stacked
        transforms actually see full stacks; but when the global
        admission budget is saturated the best partial batch runs
        instead — waiting for frames that admission will never admit
        would deadlock the service against its own backpressure.
        """
        best: Optional[_StreamState] = None
        best_key = None
        partial: Optional[_StreamState] = None
        partial_key = None
        for st in self._streams.values():
            if st.busy or not st.pending:
                continue
            engine_name = st.pending[0].engine.name
            if self.pool.idle_count(engine_name) == 0:
                continue  # contended: revisit when a lease returns
            key = (st.charged_mj / st.spec.priority, st.dispatched,
                   st.index)
            if st.capture_done or len(st.pending) >= st.batch_frames:
                if best is None or key < best_key:
                    best, best_key = st, key
            elif partial is None or key < partial_key:
                partial, partial_key = st, key
        if best is None:
            saturated = (self.admission.in_flight
                         >= self.admission.max_in_flight)
            best = partial if saturated else None
        if best is None:
            return None
        engine_name = best.pending[0].engine.name
        take = 1
        while (take < best.batch_frames and take < len(best.pending)
               and best.pending[take].engine.name == engine_name):
            take += 1
        lease = self.pool.try_lease(engine_name)
        if lease is None:  # pragma: no cover - guarded by idle_count
            return None
        tasks = [best.pending.popleft() for _ in range(take)]
        best.busy = True
        best.dispatched += take
        best.grants += 1
        best.charged_mj += take * best.est_mj_per_frame
        self.admission.on_dispatch(best.name, take)
        return best, tasks, lease

    def _compute(self, st: _StreamState, tasks: List[object],
                 lease: EngineLease) -> None:
        """Drive one grant: the stream's compute stages, then ordered
        finalize — the per-stream serial interpretation of its plan,
        under the externally owned engine lease."""
        processor = st.processor
        if len(tasks) > 1:
            # micro-batched interpretation of the plan's batch
            # schedule (bitwise-identical to per-frame, like the
            # batch executor); a sequential plan runs the grant
            # frame-major in frame order, also via process_batch
            processor.process_batch(tasks)
        else:
            task = tasks[0]
            ctx = st.contexts.get(id(lease.engine))
            if ctx is None:
                ctx = processor.context_for(lease.engine)
                st.contexts[id(lease.engine)] = ctx
            for name in st.plan.compute:
                processor.run_stage(name, task, ctx)
        for task in tasks:
            result = processor.finalize(task)
            if st.spec.on_result is not None:
                st.spec.on_result(result)

    def _worker(self, slot: int) -> None:
        try:
            while True:
                grant = None
                with self._cond:
                    while grant is None:
                        if self._stop.is_set() or self._all_done_locked():
                            return
                        grant = self._select_locked()
                        if grant is None:
                            self._cond.wait(timeout=self.TICK_S)
                st, tasks, lease = grant
                try:
                    self._compute(st, tasks, lease)
                finally:
                    lease.release()
                    now = time.perf_counter()
                    with self._cond:
                        st.busy = False
                        st.finalized += len(tasks)
                        st.ended_s = now
                        self.admission.on_done(st.name, len(tasks))
                        self._cond.notify_all()
        except BaseException as exc:  # noqa: BLE001 - crosses threads
            self._fail(exc)

    # -- lifecycle --------------------------------------------------------
    def start(self) -> "FusionService":
        """Launch capture threads and the worker team (non-blocking)."""
        if self._started:
            raise ConfigurationError(
                "FusionService instances drive exactly one serve(); "
                "create a new service for the next drive")
        if not self._streams:
            raise ConfigurationError(
                "service has no streams; add_stream() first")
        self._started = True
        self._t0 = time.perf_counter()
        self._threads = [
            threading.Thread(target=self._capture, args=(st,),
                             name=f"serve-capture-{st.name}", daemon=True)
            for st in self._streams.values()
        ] + [
            threading.Thread(target=self._worker, args=(slot,),
                             name=f"serve-worker-{slot}", daemon=True)
            for slot in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()
        return self

    def cancel(self) -> None:
        """End the drive early; leases are released and threads join
        in :meth:`wait`/:meth:`close`."""
        self._cancelled = True
        self._stop.set()
        with self._cond:
            self._cond.notify_all()

    def wait(self) -> ServiceReport:
        """Block until every stream finishes (or the drive stops),
        then return the :class:`ServiceReport`.  Re-raises the first
        stream/worker error after releasing every resource."""
        if not self._started:
            raise ConfigurationError("service was never started")
        if self._report is not None:
            return self._report
        try:
            # workers exit on their own when all streams are done;
            # nudge them awake in case a notify was missed
            while (any(t.is_alive() for t in self._threads)
                   and not self._stop.is_set()):
                with self._cond:
                    self._cond.notify_all()
                for thread in self._threads:
                    thread.join(timeout=self.TICK_S)
            for thread in self._threads:
                thread.join(timeout=self.JOIN_TIMEOUT_S)
        finally:
            self._t1 = time.perf_counter()
            self._finished = True
            for st in self._streams.values():
                st.close()
            if self._owns_pool:
                self.pool.close()
        if self._error is not None:
            raise self._error
        self._report = self._build_report()
        return self._report

    def serve(self) -> ServiceReport:
        """Run every stream to completion and report (blocking)."""
        return self.start().wait()

    def close(self) -> None:
        """Cancel and join (idempotent; never raises stream errors —
        :meth:`wait` is the raising path).  A service that never
        started still releases every added stream's session and
        source here."""
        if self._started and not self._finished:
            self.cancel()
            try:
                self.wait()
            except BaseException:  # noqa: BLE001 - close() must not raise
                pass
        elif not self._started and not self._finished:
            self._finished = True
            for st in self._streams.values():
                st.close()
            if self._owns_pool:
                self.pool.close()

    def __enter__(self) -> "FusionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reporting --------------------------------------------------------
    def _stream_report(self, st: _StreamState) -> FusionReport:
        report = st.session._report_since(st.mark)
        report.records = st.session._batch_records or []
        wall = ((st.ended_s - st.started_s)
                if st.started_s is not None and st.ended_s is not None
                else 0.0)
        peak_queue = self.admission.snapshot()["peak_queued"].get(
            st.name, 0)
        report.throughput = {
            "executor": "serve",
            "frames": st.finalized,
            "wall_seconds": wall,
            "wall_fps": st.finalized / wall if wall > 0 else 0.0,
            "grants": st.grants,
            "batch_frames": st.batch_frames,
            "queue_peak": {"pending": peak_queue},
            "charged_mj": st.charged_mj,
            "priority": st.spec.priority,
        }
        return report

    def _build_report(self) -> ServiceReport:
        wall = self._t1 - self._t0
        streams = {name: self._stream_report(st)
                   for name, st in self._streams.items()}
        energy = {name: report.model_millijoules_total
                  for name, report in streams.items()}
        return ServiceReport(
            streams=streams,
            wall_seconds=wall,
            frames_total=sum(r.frames for r in streams.values()),
            energy_mj_by_stream=energy,
            energy_mj_total=sum(energy.values()),
            engine_occupancy=self.pool.occupancy(wall),
            pool=self.pool.stats(),
            admission=self.admission.snapshot(),
            scheduler={
                name: {"grants": st.grants,
                       "dispatched": st.dispatched,
                       "charged_mj": st.charged_mj,
                       "est_mj_per_frame": st.est_mj_per_frame,
                       "priority": st.spec.priority}
                for name, st in self._streams.items()
            },
            cancelled=self._cancelled,
        )
