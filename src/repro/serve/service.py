"""The multi-stream fusion service: N sessions over one engine pool.

The paper fuses one video pair on a fixed CPU–FPGA team; the serving
question — many independent streams contending for the same silicon —
is where heterogeneous teams actually pay off (Nunez-Yanez et al.,
arXiv:1802.03316) and where per-kernel engine choice shifts with
contention (Qasaimeh et al., arXiv:1906.11879).  :class:`FusionService`
answers it with the pieces the package already has: each stream is a
full :class:`~repro.session.FusionSession` (its own config, graph,
lowered plan, scheduler, calibrator, telemetry), and the service
multiplexes their *plan interpreters* over a shared
:class:`~repro.serve.EnginePool`.

Execution model
---------------
* One **capture thread per stream** pulls pairs from the stream's
  source and runs the plan's ordered head (ingest + registration) in
  frame order — after passing :class:`~repro.serve.AdmissionController`
  (global ``max_in_flight`` cap, bounded per-stream pending queues, so
  backpressure reaches the source instead of growing a buffer).
* A team of **service workers** repeatedly picks the next grant under
  one condition variable.  Streams that declared a
  :class:`~repro.serve.ops.StreamSLO` are ordered by *normalized SLO
  deficit* — seconds behind their target frame schedule, largest
  first — then by the energy-fair key ``charged_mj / weight`` (pool
  energy, modelled J/frame from the planner's cost model, divided in
  proportion to weight), so a best-effort stream never starves a
  tenant with a rate to keep, and equally-behind tenants split energy
  by class.  The worker leases the engine, drives the stream's compute
  stages (micro-batched through
  :meth:`~repro.exec.FrameProcessor.process_batch` when the plan
  allows it), finalizes in frame order, then releases the lease —
  on success, error and cancellation alike.

Live operations
---------------
Constructed with ``live=True`` the service becomes an always-on
system: :meth:`attach` admits a new stream against the pool's modelled
capacity *while serving* (infeasible SLOs are rejected with
:class:`~repro.serve.ops.SLORejection` before any resource is bound),
:meth:`detach` retires one tenant without disturbing the others, a
finished stream auto-retires (its report parked for :meth:`reap`),
and a failing stream is *isolated* — its error is recorded, its leases
and admission tickets are returned, healthy tenants keep running.
Under overload a :class:`~repro.serve.ops.ShedPolicy` drops whole
frames of the lowest priority class present (bounded, hysteretic,
never a stream).  Everything is accounted in a per-stream ledger
(``offered == admitted + shed``, ``admitted == finalized + errored +
in-flight`` at every instant) and exported through a
:class:`~repro.serve.ops.MetricsRegistry` (Prometheus text via
:meth:`metrics_text`) and a structured :class:`~repro.serve.ops.EventLog`.

Determinism contract
--------------------
Per-stream compute is serialized (one grant at a time per stream) and
every stage's arithmetic is bound to the frame's assigned engine —
leased pool instances come from the same registry factory as a solo
session's engines — so **with a fixed seed and any worker count, each
stream's output frames are bitwise-identical to running that stream
alone on its leased engines**.  Concurrency only changes wall-clock
interleaving across streams, never a single output bit; shedding only
ever removes whole frames before ingest, so the frames that *are*
produced keep the contract and the ledger reconciles exactly.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple, Union

from ..errors import ConfigurationError, FusionError
from ..exec.base import ensure_source_open
from ..hw.registry import create_engine
from ..session.config import FusionConfig
from ..session.report import FusedFrameResult, FusionReport
from ..session.session import FusionSession
from ..session.sources import FrameSource, as_frame_source
from .admission import AdmissionController
from .ops import (BEST_EFFORT, EventLog, MetricsRegistry, ShedPolicy,
                  Shedder, SLORejection, StreamSLO, check_feasible)
from .pool import EngineLease, EnginePool
from .report import ServiceReport

#: placement label the planner gives host-side stages (no engine cost)
_HOST = "host"

#: the empty ledger shape (per stream and for the running totals)
_LEDGER_KEYS = ("offered", "admitted", "shed", "finalized", "errored")


class StreamSpec:
    """One tenant of the service: a named fusion workload.

    Parameters
    ----------
    name:
        Unique stream identity, the key of every per-stream report.
    config:
        The stream's :class:`~repro.session.FusionConfig` — geometry,
        engine/scheduler, features.  ``executor`` is ignored: the
        service *is* the executor (``engine_team`` is rejected, the
        pool owns the hardware).
    source:
        The stream's :class:`~repro.session.FrameSource` (or plain
        iterable of pairs).
    frames:
        Stop after this many source frames (``None``: run until the
        source is exhausted — never for infinite sources unless the
        stream will be detached).  Shed frames count against the
        limit: they were consumed from the source.
    priority:
        Legacy energy-fair weight (> 0) for streams without an SLO.
        Mutually exclusive with ``slo`` — a declared SLO carries its
        own class weight.
    batch_frames:
        Dispatch granularity: how many pending frames one engine
        grant may drain under a single lease — a batchable plan rides
        its stacked micro-batch schedule, a sequential plan runs the
        grant frame-major in frame order.  Default: the config's
        ``batch_size``.  Set 1 to force per-frame cadence (lowest
        latency); granularity never changes output bits, only
        wall-clock.
    on_result:
        Optional callback invoked with each
        :class:`~repro.session.FusedFrameResult` in frame order.
    slo:
        Optional :class:`~repro.serve.ops.StreamSLO`.  Declaring one
        replaces the static priority weight: admission models whether
        the pool can meet it (else :class:`SLORejection`), and the
        scheduler runs the largest normalized SLO deficit first.
    """

    def __init__(self, name: str, config: FusionConfig,
                 source: FrameSource, frames: Optional[int] = None,
                 priority: float = 1.0,
                 batch_frames: Optional[int] = None,
                 on_result: Optional[Callable[[FusedFrameResult], None]]
                 = None,
                 slo: Optional[StreamSLO] = None):
        if not name or not isinstance(name, str):
            raise ConfigurationError(
                f"stream name must be a non-empty string, got {name!r}")
        if frames is not None and frames < 1:
            raise ConfigurationError(
                f"stream {name!r}: frames must be >= 1 or None, got "
                f"{frames}")
        if not (priority > 0):
            raise ConfigurationError(
                f"stream {name!r}: priority must be > 0, got {priority}")
        if batch_frames is not None and batch_frames < 1:
            raise ConfigurationError(
                f"stream {name!r}: batch_frames must be >= 1 or None, "
                f"got {batch_frames}")
        if slo is not None and not isinstance(slo, StreamSLO):
            raise ConfigurationError(
                f"stream {name!r}: slo must be a StreamSLO, got "
                f"{type(slo).__name__}")
        if slo is not None and priority != 1.0:
            raise ConfigurationError(
                f"stream {name!r}: give either a priority weight or an "
                f"SLO, not both — the SLO's priority class carries the "
                f"weight")
        if config.engine_team is not None:
            raise ConfigurationError(
                f"stream {name!r}: engine_team is not servable — the "
                f"service leases engines from its shared pool; size "
                f"the pool instead")
        self.name = name
        self.config = config
        self.source = source
        self.frames = frames
        self.priority = float(priority)
        self.batch_frames = batch_frames
        self.on_result = on_result
        self.slo = slo

    @property
    def weight(self) -> float:
        """Energy-fair weight: the SLO's class weight, else the
        legacy priority knob."""
        return self.slo.weight if self.slo is not None else self.priority


class _StreamState:
    """Service-side runtime of one stream."""

    def __init__(self, spec: StreamSpec, index: int):
        self.spec = spec
        self.name = spec.name
        self.index = index  # attach order, the scheduling tie-break
        # a private session per tenant: all ordered policies (frame
        # indices, scheduler observations, calibration, telemetry)
        # live here, untouched by other streams
        self.session = FusionSession(spec.config)
        self.processor = self.session._processor
        self.plan = self.session.plan
        self.source = as_frame_source(spec.source)
        self.slo = spec.slo if spec.slo is not None else BEST_EFFORT
        self.pending: Deque[object] = deque()
        self.busy = False
        self.capture_done = False
        self.detach_requested = False
        self.error: Optional[str] = None
        self.dispatched = 0
        self.grants = 0
        self.charged_mj = 0.0
        # the stream ledger (offered == admitted + shed at all times;
        # admitted == finalized + errored once drained)
        self.offered = 0
        self.admitted = 0
        self.shed = 0
        self.finalized = 0
        self.errored = 0
        self.started_s: Optional[float] = None
        self.ended_s: Optional[float] = None
        self.t_attach: Optional[float] = None  # monotonic; the SLO clock
        self.slo_demand: Dict[str, float] = {}
        self.mark = self.session._snapshot()
        self.wall_mark = self.processor.stage_wall_snapshot()
        if spec.config.keep_records:
            self.session._batch_records = []
        #: per-leased-instance worker contexts (id(engine) -> ctx)
        self.contexts: Dict[int, object] = {}
        # sequential plans still take multi-frame grants (the frames
        # run frame-major, in order, under one lease), so a temporal
        # stream does not pay per-frame dispatch overhead either
        self.batch_frames = (spec.batch_frames
                             if spec.batch_frames is not None
                             else spec.config.batch_size)
        self.seconds_by_engine, self.est_mj_per_frame = \
            self._estimate_costs()

    def required_engines(self) -> Tuple[str, ...]:
        """Engine names frames of this stream may be assigned to."""
        session = self.session
        if session.scheduler is not None:  # online: the whole probe set
            return tuple(e.name for e in session.scheduler.engines)
        return (session._engine.name,)

    def _estimate_costs(self) -> Tuple[Dict[str, float], float]:
        """Modelled per-frame cost from the planner's cost model:
        compute seconds split by engine (the SLO feasibility input)
        and total mJ (the energy-fair scheduler's charge per granted
        frame)."""
        power = self.spec.config.power_model
        engines: Dict[str, object] = {}
        seconds_by: Dict[str, float] = {}
        mj = 0.0
        for node in self.plan.nodes.values():
            label = node.engine
            if label == _HOST or label.startswith("team(") \
                    or node.model_seconds <= 0:
                continue
            if label not in engines:
                engines[label] = create_engine(label)
            seconds_by[label] = seconds_by.get(label, 0.0) \
                + node.model_seconds
            mj += (node.model_seconds
                   * power.power_w(engines[label].power_mode) * 1e3)
        return seconds_by, mj

    def deficit_s(self, now: float) -> float:
        """Seconds behind the SLO's target frame schedule (0 for
        best-effort streams; negative when ahead of schedule)."""
        fps = self.slo.target_fps
        if fps <= 0 or self.t_attach is None:
            return 0.0
        return (now - self.t_attach) - self.dispatched / fps

    def ledger(self) -> Dict[str, int]:
        return {"offered": self.offered, "admitted": self.admitted,
                "shed": self.shed, "finalized": self.finalized,
                "errored": self.errored}

    def done(self) -> bool:
        return self.capture_done and not self.pending and not self.busy

    def close(self) -> None:
        """Release the stream's source and session (both idempotent)."""
        self.source.close()
        self.session.close()


class FusionService:
    """Serve many named fusion streams over one shared engine pool.

    Usage::

        service = FusionService(pool={"arm": 1, "neon": 1, "fpga": 2},
                                max_in_flight=8, stream_queue_depth=4)
        service.add_stream("gate-cam", config=FusionConfig(engine="fpga"),
                           source=SyntheticSource(seed=1), frames=64)
        service.add_stream("tower-cam", config=FusionConfig(temporal=True),
                           source=SyntheticSource(seed=2), frames=64,
                           slo=StreamSLO(target_fps=10.0,
                                         priority_class="critical"))
        report = service.serve()          # blocking; or start()/wait()
        report.streams["gate-cam"].model_millijoules_total

    With ``live=True`` the service stays up between streams:
    :meth:`attach`/:meth:`detach` churn tenants at runtime, finished
    streams auto-retire (collect them with :meth:`reap`), and
    :meth:`wait` drains whatever is still attached.  A service
    instance drives exactly one serve/start–wait cycle (mirroring the
    one-shot executors); it is a context manager, and :meth:`cancel`
    ends a drive early with every lease released and every thread
    joined.
    """

    #: seconds between stop-flag checks while blocked on the condition
    TICK_S = 0.05
    #: seconds to wait for each service thread to join at shutdown
    JOIN_TIMEOUT_S = 10.0

    def __init__(self, pool: Union[EnginePool, Dict[str, int], tuple,
                                   list],
                 max_in_flight: int = 8, stream_queue_depth: int = 4,
                 workers: Optional[int] = None, live: bool = False,
                 shedding: Optional[ShedPolicy] = None,
                 slo_headroom: float = 1.0,
                 metrics: Optional[MetricsRegistry] = None,
                 events: Optional[EventLog] = None,
                 event_capacity: int = 4096):
        # an EnginePool, anything lease-protocol-compatible (the
        # sharded tier's BrokeredEnginePool duck-types the surface),
        # or a spec to build a pool from
        if isinstance(pool, EnginePool) \
                or callable(getattr(pool, "try_lease", None)):
            self.pool = pool
            self._owns_pool = False
        else:
            self.pool = EnginePool(pool)
            self._owns_pool = True
        if workers is None:
            workers = self.pool.size
        if workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {workers}")
        if not (slo_headroom > 0):
            raise ConfigurationError(
                f"slo_headroom must be > 0, got {slo_headroom}")
        self.workers = workers
        self.live = live
        self.slo_headroom = float(slo_headroom)
        self._cond = threading.Condition()
        self.admission = AdmissionController(
            self._cond, max_in_flight=max_in_flight,
            stream_queue_depth=stream_queue_depth)
        self.shedder = (Shedder(shedding, max_in_flight)
                        if shedding is not None else None)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events if events is not None \
            else EventLog(capacity=event_capacity)
        self._streams: Dict[str, _StreamState] = {}
        self._retired: Dict[str, FusionReport] = {}
        self._retired_scheduler: Dict[str, Dict[str, object]] = {}
        self._retired_ledger: Dict[str, Dict[str, int]] = {}
        self._violations: Dict[str, List[Dict[str, object]]] = {}
        self._errors: Dict[str, str] = {}
        self._totals: Dict[str, int] = {k: 0 for k in _LEDGER_KEYS}
        self._committed: Dict[str, float] = {}
        self._attach_seq = 0
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._error: Optional[BaseException] = None
        self._error_lock = threading.Lock()
        self._started = False
        self._finished = False
        self._cancelled = False
        self._draining = False
        self._t0 = 0.0
        self._t1 = 0.0
        self._report: Optional[ServiceReport] = None
        self._init_metrics()

    def _init_metrics(self) -> None:
        # hot-path series are labelled by engine / priority class only
        # (bounded sets); per-stream series appear exclusively as
        # report-derived gauges, so churn cannot grow the registry
        m = self.metrics
        self._c_frames = m.counter(
            "repro_serve_frames_finalized_total",
            "Fused frames finalized, by priority class")
        self._c_shed = m.counter(
            "repro_serve_frames_shed_total",
            "Frames dropped whole under overload, by priority class")
        self._c_energy = m.counter(
            "repro_serve_energy_millijoules_total",
            "Modelled energy spent, by priority class")
        self._c_leases = m.counter(
            "repro_serve_leases_granted_total",
            "Engine leases granted, by engine")
        self._c_attached = m.counter(
            "repro_serve_streams_attached_total",
            "Streams admitted over the service's life")
        self._c_retired = m.counter(
            "repro_serve_streams_retired_total",
            "Streams retired, by outcome")
        self._c_rejected = m.counter(
            "repro_serve_streams_rejected_total",
            "Streams refused admission (SLO infeasible)")
        self._c_violations = m.counter(
            "repro_serve_slo_violations_total",
            "SLO violations observed at stream retirement, by kind")
        self._g_active = m.gauge(
            "repro_serve_active_streams", "Streams currently attached")
        self._g_inflight = m.gauge(
            "repro_serve_in_flight_frames",
            "Admitted frames not yet finalized")
        self._g_shed_engaged = m.gauge(
            "repro_serve_shedding_engaged",
            "1 while the overload shedder is engaged")
        self._g_committed = m.gauge(
            "repro_serve_slo_committed_utilization",
            "Modelled utilization reserved by admitted SLOs, by engine")
        self._h_latency = m.histogram(
            "repro_serve_frame_seconds",
            "Modelled per-frame compute seconds, by priority class")
        self._h_wall = m.histogram(
            "repro_serve_frame_wall_seconds",
            "Measured per-frame wall latency, by priority class")
        # report-derived (set when a drive's report is built)
        self._g_fps = m.gauge(
            "repro_serve_aggregate_fps",
            "Aggregate finalized frames per wall second (end of drive)")
        self._g_occupancy = m.gauge(
            "repro_serve_engine_occupancy_ratio",
            "Per-instance busy fraction of the drive wall interval")
        self._g_stream_energy = m.gauge(
            "repro_serve_stream_energy_millijoules",
            "Modelled energy by stream (end of drive)")

    def _telemetry_sink(self, priority_class: str):
        frames = self._c_frames.labels(priority_class=priority_class)
        energy = self._c_energy.labels(priority_class=priority_class)
        latency = self._h_latency.labels(priority_class=priority_class)
        wall_h = self._h_wall.labels(priority_class=priority_class)

        def sink(seconds: float, millijoules: float,
                 wall: Optional[float]) -> None:
            frames.inc()
            energy.inc(millijoules)
            latency.observe(seconds)
            if wall is not None:
                wall_h.observe(wall)
        return sink

    # -- registration / churn ---------------------------------------------
    def add_stream(self, name: str, config: Optional[FusionConfig] = None,
                   source: Optional[FrameSource] = None,
                   frames: Optional[int] = None, priority: float = 1.0,
                   batch_frames: Optional[int] = None,
                   on_result: Optional[Callable] = None,
                   slo: Optional[StreamSLO] = None,
                   **config_overrides) -> StreamSpec:
        """Register one stream; validates it against the pool.

        Before :meth:`start` this is plain registration; on a running
        ``live=True`` service it is runtime attach.  A running
        non-live service rejects it — the fixed-workload contract.
        ``config_overrides`` are convenience field overrides applied on
        top of ``config`` (or a default config), mirroring
        :class:`~repro.session.FusionSession`'s constructor.
        """
        if self._started and not self.live:
            raise ConfigurationError(
                "cannot add streams to a service that already started; "
                "construct with live=True for runtime attach")
        return self.attach(name, config=config, source=source,
                           frames=frames, priority=priority,
                           batch_frames=batch_frames, on_result=on_result,
                           slo=slo, **config_overrides)

    def attach(self, name: str, config: Optional[FusionConfig] = None,
               source: Optional[FrameSource] = None,
               frames: Optional[int] = None, priority: float = 1.0,
               batch_frames: Optional[int] = None,
               on_result: Optional[Callable] = None,
               slo: Optional[StreamSLO] = None,
               **config_overrides) -> StreamSpec:
        """Admit one stream, live or pre-start.

        The stream's session is built, validated against the pool's
        inventory, and — when it declares an SLO — checked for
        feasibility against the pool's modelled capacity *after* every
        already-admitted SLO is charged.  On a running live service
        the capture thread starts immediately; other tenants are never
        paused.  Raises :class:`SLORejection` when the SLO cannot be
        met, :class:`FusionError` once the service is draining or
        closed.
        """
        with self._cond:
            self._check_attachable_locked(name)
            index = self._attach_seq
            self._attach_seq += 1
        if config is None:
            config = FusionConfig(**config_overrides)
        elif config_overrides:
            config = config.with_overrides(**config_overrides)
        if source is None:
            raise ConfigurationError(
                f"stream {name!r} needs a frame source")
        spec = StreamSpec(name=name, config=config, source=source,
                          frames=frames, priority=priority,
                          batch_frames=batch_frames, on_result=on_result,
                          slo=slo)
        # session construction is heavy: do it outside the condition,
        # then re-validate registration under it
        state = _StreamState(spec, index=index)
        missing = [engine for engine in state.required_engines()
                   if self.pool.count(engine) == 0]
        if missing:
            state.close()
            raise ConfigurationError(
                f"stream {name!r} may select engine(s) {missing} but "
                f"the pool only holds {dict(self.pool.stats()['inventory'])}; "
                f"add instances or pin the stream to a pooled engine")
        # a grant can never need more frames than admission allows to
        # accumulate, or batch-ready dispatch would deadlock against
        # the very bounds that protect the service
        state.batch_frames = min(state.batch_frames,
                                 self.admission.stream_queue_depth,
                                 self.admission.max_in_flight)
        state.session.telemetry.sink = \
            self._telemetry_sink(state.slo.priority_class)
        with self._cond:
            try:
                self._check_attachable_locked(name)
                pool_counts = {engine: self.pool.count(engine)
                               for engine in state.seconds_by_engine}
                state.slo_demand = check_feasible(
                    name, state.slo, state.seconds_by_engine,
                    state.est_mj_per_frame, pool_counts,
                    self._committed, headroom=self.slo_headroom)
            except (SLORejection, ConfigurationError, FusionError) as exc:
                state.close()
                self._c_rejected.inc()
                self.events.emit("reject", name, reason=str(exc))
                raise
            for engine, demand in state.slo_demand.items():
                self._committed[engine] = \
                    self._committed.get(engine, 0.0) + demand
            self.admission.register(name)
            self._streams[name] = state
            state.t_attach = time.monotonic()
            self._c_attached.inc()
            self._g_active.set(len(self._streams))
            self.events.emit(
                "attach", name, index=index,
                priority_class=state.slo.priority_class,
                target_fps=state.slo.target_fps, weight=spec.weight)
            decision = state.session.autotune_decision
            if decision is not None:
                self.events.emit(
                    "autotune", name, source=decision.source,
                    overrides=dict(decision.overrides), fps=decision.fps)
            if self._started:
                self._threads = [t for t in self._threads if t.is_alive()]
                thread = threading.Thread(
                    target=self._capture, args=(state,),
                    name=f"serve-capture-{name}", daemon=True)
                self._threads.append(thread)
                thread.start()
            self._cond.notify_all()
        return spec

    def _check_attachable_locked(self, name: str) -> None:
        if self._finished:
            raise FusionError(
                "service is closed; create a new FusionService")
        if self._draining:
            raise FusionError(
                "service is draining; no further streams may attach")
        if name in self._streams:
            raise ConfigurationError(f"duplicate stream name {name!r}")

    def detach(self, name: str,
               timeout: Optional[float] = None) -> FusionReport:
        """Retire one stream from a running live service and return
        its :class:`~repro.session.FusionReport`.

        Frames already admitted drain first (nothing is torn down
        mid-flight); the stream's capture stops, its leases return,
        its SLO reservation is released, and every other tenant keeps
        running undisturbed.  Blocks until the stream retired (or
        ``timeout`` seconds elapsed — then :class:`FusionError`).
        """
        deadline = (time.monotonic() + timeout) if timeout is not None \
            else None
        with self._cond:
            if name in self._retired and name not in self._streams:
                return self._retired[name]
            st = self._streams.get(name)
            if st is None:
                raise ConfigurationError(
                    f"no stream named {name!r} is attached")
            if self._started and not self.live:
                raise ConfigurationError(
                    "detach requires a live service (live=True); a "
                    "fixed-workload drive runs its streams to "
                    "completion")
            st.detach_requested = True
            self._cond.notify_all()
            if not self._started:
                # never ran: retire synchronously, report is empty
                self._retire_locked(st, outcome="detached")
                return self._retired[name]
            while name in self._streams:
                if self._error is not None:
                    raise self._error
                self._cond.wait(timeout=self.TICK_S)
                if deadline is not None and time.monotonic() > deadline:
                    raise FusionError(
                        f"stream {name!r} did not retire within "
                        f"{timeout:g}s")
            return self._retired[name]

    def reap(self) -> Dict[str, FusionReport]:
        """Collect and forget retired streams' reports.

        The live-churn memory contract: everything per-stream —
        report, ledger entry, scheduler entry, SLO violations, kept
        queue peaks — is handed to the caller and dropped from the
        service, so a service churning thousands of streams stays
        flat.  Aggregate totals (ledger, counters, event counts)
        survive.
        """
        with self._cond:
            reports = self._retired
            self._retired = {}
            for name in reports:
                self._retired_scheduler.pop(name, None)
                self._retired_ledger.pop(name, None)
                self._violations.pop(name, None)
                self._errors.pop(name, None)
                self.admission.forget(name)
            return reports

    def stream_names(self) -> List[str]:
        """Names of currently attached (not yet retired) streams."""
        with self._cond:
            return list(self._streams)

    # -- error/stop plumbing ----------------------------------------------
    def _fail(self, exc: BaseException) -> None:
        with self._error_lock:
            if self._error is None:
                self._error = exc
        self._stop.set()
        with self._cond:
            self._cond.notify_all()

    def _stream_failed_locked(self, st: _StreamState, exc: BaseException,
                              where: str) -> None:
        """Live-mode isolation: record the stream's error, stop its
        capture, discard its undispatched frames (tickets returned),
        and let it retire — without touching any other tenant."""
        if st.error is None:
            st.error = f"{type(exc).__name__}: {exc}"
            self._errors[st.name] = st.error
            self.events.emit("error", st.name, where=where,
                             error=st.error)
        st.detach_requested = True
        discarded = len(st.pending)
        if discarded:
            st.pending.clear()
            st.errored += discarded
            self.admission.on_dispatch(st.name, discarded)
            self.admission.on_done(st.name, discarded)
        self._cond.notify_all()

    def _stopped(self) -> bool:
        return self._stop.is_set()

    # -- capture (one thread per stream) ----------------------------------
    def _capture(self, st: _StreamState) -> None:
        produced = 0
        limit = st.spec.frames

        def stop() -> bool:
            return self._stop.is_set() or st.detach_requested

        try:
            iterator = iter(st.source)
            while not stop() and (limit is None or produced < limit):
                if self.shedder is not None:
                    with self._cond:
                        shed_now = self.shedder.should_shed(
                            st.name, st.slo.rank,
                            self._lowest_rank_locked(),
                            st.offered, st.shed,
                            self.admission.in_flight)
                        self._g_shed_engaged.set(
                            1.0 if self.shedder.engaged else 0.0)
                else:
                    shed_now = False
                if shed_now:
                    # drop the next frame whole, before ingest: it is
                    # simply absent from the output, never partial
                    try:
                        ensure_source_open(st.source)
                    except FusionError as exc:
                        raise FusionError(
                            f"stream {st.name!r}: {exc}") from None
                    try:
                        next(iterator)
                    except StopIteration:
                        return
                    with self._cond:
                        st.offered += 1
                        st.shed += 1
                        self.shedder.record(st.name)
                    self._c_shed.labels(
                        priority_class=st.slo.priority_class).inc()
                    self.events.emit("shed", st.name, index=produced)
                    produced += 1
                    continue
                if not self.admission.admit(st.name, stop):
                    return  # cancelled/detached while backpressured
                try:
                    try:
                        ensure_source_open(st.source)
                    except FusionError as exc:
                        raise FusionError(
                            f"stream {st.name!r}: {exc}") from None
                    pair = next(iterator)
                    task = st.processor.ingest(pair, produced)
                except StopIteration:
                    # the admission ticket was never attached to a frame
                    with self._cond:
                        self.admission.retract(st.name)
                    return
                except BaseException:
                    # a failing source/ingest must return its ticket
                    # too, or the budget leaks one admission forever
                    with self._cond:
                        self.admission.retract(st.name)
                    raise
                now = time.perf_counter()
                with self._cond:
                    if stop():
                        # detached/cancelled between admit and append:
                        # the ticket never becomes a frame
                        self.admission.retract(st.name)
                        return
                    if st.started_s is None:
                        st.started_s = now
                    st.offered += 1
                    st.admitted += 1
                    st.pending.append(task)
                    self._cond.notify_all()
                produced += 1
        except BaseException as exc:  # noqa: BLE001 - crosses threads
            if self.live:
                with self._cond:
                    self._stream_failed_locked(st, exc, where="capture")
            else:
                self._fail(exc)
        finally:
            with self._cond:
                st.capture_done = True
                self._cond.notify_all()

    # -- dispatch ---------------------------------------------------------
    def _all_done_locked(self) -> bool:
        return all(st.done() for st in self._streams.values())

    def _lowest_rank_locked(self) -> int:
        """Rank of the least important priority class attached
        (larger = less important) — only that class may shed."""
        return max((st.slo.rank for st in self._streams.values()),
                   default=0)

    def _select_locked(self) -> Optional[Tuple[_StreamState, List[object],
                                               EngineLease]]:
        """The SLO-deficit pick: among dispatchable streams, the one
        furthest behind its target frame schedule; ties (and all
        best-effort streams, whose deficit is zero) fall back to the
        energy-fair key — lowest charged-energy-per-weight, charged
        at the planner's modelled cost.  Grants drain up to
        ``batch_frames`` same-engine frames.  Caller holds the
        service condition.

        A batchable stream is preferred once *batch-ready* (a full
        micro-batch pending, or its capture finished), so the stacked
        transforms actually see full stacks; but when the global
        admission budget is saturated the best partial batch runs
        instead — waiting for frames that admission will never admit
        would deadlock the service against its own backpressure.
        """
        now = time.monotonic()
        best: Optional[_StreamState] = None
        best_key = None
        partial: Optional[_StreamState] = None
        partial_key = None
        for st in self._streams.values():
            if st.busy or not st.pending:
                continue
            engine_name = st.pending[0].engine.name
            if self.pool.idle_count(engine_name) == 0:
                continue  # contended: revisit when a lease returns
            key = (-st.deficit_s(now),
                   st.charged_mj / st.spec.weight, st.dispatched,
                   st.index)
            if st.capture_done or len(st.pending) >= st.batch_frames:
                if best is None or key < best_key:
                    best, best_key = st, key
            elif partial is None or key < partial_key:
                partial, partial_key = st, key
        if best is None:
            saturated = (self.admission.in_flight
                         >= self.admission.max_in_flight)
            best = partial if saturated else None
        if best is None:
            return None
        engine_name = best.pending[0].engine.name
        take = 1
        while (take < best.batch_frames and take < len(best.pending)
               and best.pending[take].engine.name == engine_name):
            take += 1
        lease = self.pool.try_lease(engine_name)
        if lease is None:  # pragma: no cover - guarded by idle_count
            return None
        tasks = [best.pending.popleft() for _ in range(take)]
        best.busy = True
        best.dispatched += take
        best.grants += 1
        best.charged_mj += take * best.est_mj_per_frame
        self.admission.on_dispatch(best.name, take)
        self._c_leases.labels(engine=engine_name).inc()
        self.events.emit("lease", best.name, engine=engine_name,
                         frames=take)
        return best, tasks, lease

    def _compute(self, st: _StreamState, tasks: List[object],
                 lease: EngineLease, progress: List[int]) -> None:
        """Drive one grant: the stream's compute stages, then ordered
        finalize — the per-stream serial interpretation of its plan,
        under the externally owned engine lease.  ``progress[0]``
        counts frames actually finalized, so an error mid-grant is
        charged to exactly the frames it lost."""
        processor = st.processor
        if len(tasks) > 1:
            # micro-batched interpretation of the plan's batch
            # schedule (bitwise-identical to per-frame, like the
            # batch executor); a sequential plan runs the grant
            # frame-major in frame order, also via process_batch
            processor.process_batch(tasks)
        else:
            task = tasks[0]
            ctx = st.contexts.get(id(lease.engine))
            if ctx is None:
                ctx = processor.context_for(lease.engine)
                st.contexts[id(lease.engine)] = ctx
            for name in st.plan.compute:
                processor.run_stage(name, task, ctx)
        for task in tasks:
            result = processor.finalize(task)
            progress[0] += 1
            if st.spec.on_result is not None:
                st.spec.on_result(result)

    def _worker(self, slot: int) -> None:
        try:
            while True:
                grant = None
                with self._cond:
                    while grant is None:
                        if self._stop.is_set():
                            return
                        self._reap_done_locked()
                        if self._drained_locked():
                            return
                        grant = self._select_locked()
                        if grant is None:
                            self._cond.wait(timeout=self.TICK_S)
                st, tasks, lease = grant
                progress = [0]
                error: Optional[BaseException] = None
                try:
                    self._compute(st, tasks, lease, progress)
                except BaseException as exc:  # noqa: BLE001
                    if not self.live:
                        raise
                    error = exc
                finally:
                    lease.release()
                    now = time.perf_counter()
                    with self._cond:
                        st.busy = False
                        st.finalized += progress[0]
                        st.errored += len(tasks) - progress[0]
                        st.ended_s = now
                        self.admission.on_done(st.name, len(tasks))
                        if error is not None:
                            self._stream_failed_locked(st, error,
                                                       where="compute")
                        self._reap_done_locked()
                        self._cond.notify_all()
        except BaseException as exc:  # noqa: BLE001 - crosses threads
            self._fail(exc)

    def _drained_locked(self) -> bool:
        """May a worker exit?  A live service idles between streams
        until :meth:`wait` starts the drain; a fixed drive exits when
        every stream retired."""
        if self.live and not self._draining:
            return False
        return self._all_done_locked()

    # -- retirement -------------------------------------------------------
    def _reap_done_locked(self) -> None:
        if self._error is not None:
            return  # the failing drive tears down in wait()
        for name in [n for n, s in self._streams.items() if s.done()]:
            st = self._streams[name]
            if st.error is not None:
                outcome = "errored"
            elif st.detach_requested:
                outcome = "detached"
            else:
                outcome = "completed"
            self._retire_locked(st, outcome)

    def _retire_locked(self, st: _StreamState, outcome: str) -> None:
        """Move one stream from active to retired: fold its ledger
        into the totals, release its SLO reservation, deregister it
        from admission, close its session/source, park its report.
        Caller holds the service condition."""
        peak_queue = self.admission.deregister(st.name)
        for engine, demand in st.slo_demand.items():
            left = self._committed.get(engine, 0.0) - demand
            if left > 1e-12:
                self._committed[engine] = left
            else:
                self._committed.pop(engine, None)
        if self.shedder is not None:
            self.shedder.forget(st.name)
        entry = st.ledger()
        self._retired_ledger[st.name] = entry
        for key in _LEDGER_KEYS:
            self._totals[key] += entry[key]
        violations = self._check_slo_locked(st)
        report = self._stream_report(st, peak_queue)
        self._retired[st.name] = report
        self._retired_scheduler[st.name] = {
            "grants": st.grants,
            "dispatched": st.dispatched,
            "charged_mj": st.charged_mj,
            "est_mj_per_frame": st.est_mj_per_frame,
            "priority": st.spec.priority,
            "weight": st.spec.weight,
            "priority_class": st.slo.priority_class,
            "target_fps": st.slo.target_fps,
            "outcome": outcome,
        }
        del self._streams[st.name]
        st.close()
        self._c_retired.labels(outcome=outcome).inc()
        self._g_active.set(len(self._streams))
        self.events.emit("detach", st.name, outcome=outcome,
                         finalized=entry["finalized"],
                         shed=entry["shed"], errored=entry["errored"],
                         violations=len(violations))
        self._cond.notify_all()

    def _check_slo_locked(self, st: _StreamState) \
            -> List[Dict[str, object]]:
        """Judge a retiring stream against its declared SLO; records
        and returns any violations (informational — the stream still
        retires normally)."""
        violations: List[Dict[str, object]] = []
        slo = st.slo
        wall = ((st.ended_s - st.started_s)
                if st.started_s is not None and st.ended_s is not None
                else 0.0)
        if slo.target_fps > 0 and wall > 0 and st.finalized > 0:
            achieved = st.finalized / wall
            if achieved + 1e-9 < slo.target_fps:
                violations.append({"kind": "fps",
                                   "target": slo.target_fps,
                                   "achieved": achieved})
        if slo.latency_budget_s is not None \
                and st.session.telemetry._wall:
            p95 = st.session.telemetry._percentile(
                st.session.telemetry._wall, 0.95)
            if p95 > slo.latency_budget_s:
                violations.append({"kind": "latency",
                                   "budget_s": slo.latency_budget_s,
                                   "wall_p95_s": p95})
        if violations:
            self._violations[st.name] = violations
            for violation in violations:
                self._c_violations.labels(kind=violation["kind"]).inc()
                payload = {("violation" if key == "kind" else key): v
                           for key, v in violation.items()}
                self.events.emit("slo_violation", st.name, **payload)
        return violations

    def _return_pending_locked(self, st: _StreamState) -> None:
        """Give a cancelled stream's undispatched frames back to the
        admission budget; they retire as errored (never finalized)."""
        discarded = len(st.pending)
        if discarded:
            st.pending.clear()
            st.errored += discarded
            self.admission.on_dispatch(st.name, discarded)
            self.admission.on_done(st.name, discarded)

    # -- lifecycle --------------------------------------------------------
    def start(self) -> "FusionService":
        """Launch capture threads and the worker team (non-blocking)."""
        if self._finished:
            raise FusionError(
                "service is closed; FusionService instances drive "
                "exactly one serve() — create a new service")
        if self._started:
            raise FusionError(
                "service already started; FusionService instances "
                "drive exactly one serve() — create a new service for "
                "the next drive")
        if not self._streams and not self.live:
            raise ConfigurationError(
                "service has no streams; add_stream() first (or "
                "construct with live=True to attach at runtime)")
        self._started = True
        self._t0 = time.perf_counter()
        with self._cond:
            now = time.monotonic()
            for st in self._streams.values():
                st.t_attach = now  # the SLO clock starts at serve time
            self._threads = [
                threading.Thread(target=self._capture, args=(st,),
                                 name=f"serve-capture-{st.name}",
                                 daemon=True)
                for st in self._streams.values()
            ] + [
                threading.Thread(target=self._worker, args=(slot,),
                                 name=f"serve-worker-{slot}", daemon=True)
                for slot in range(self.workers)
            ]
            for thread in self._threads:
                thread.start()
        self.events.emit("service", phase="start", live=self.live,
                         workers=self.workers)
        return self

    def cancel(self) -> None:
        """End the drive early; leases are released and threads join
        in :meth:`wait`/:meth:`close`."""
        self._cancelled = True
        self._stop.set()
        self.events.emit("service", phase="cancel")
        with self._cond:
            self._cond.notify_all()

    def wait(self) -> ServiceReport:
        """Block until every stream finishes (or the drive stops),
        then return the :class:`ServiceReport`.

        On a live service this *drains*: no further attach is
        admitted, currently attached streams run to completion (an
        endless stream must be detached or the service cancelled
        first).  Re-raises the first service error after releasing
        every resource; live-mode per-stream errors do not raise —
        they are isolated in the report's ``errors``.
        """
        if not self._started:
            raise ConfigurationError("service was never started")
        if self._report is not None:
            return self._report
        with self._cond:
            if not self._draining:
                self._draining = True
                self.events.emit("service", phase="drain")
            self._cond.notify_all()
        try:
            # workers exit on their own when all streams are done;
            # nudge them awake in case a notify was missed
            while (any(t.is_alive() for t in self._threads)
                   and not self._stop.is_set()):
                with self._cond:
                    self._cond.notify_all()
                for thread in self._threads:
                    thread.join(timeout=self.TICK_S)
            for thread in self._threads:
                thread.join(timeout=self.JOIN_TIMEOUT_S)
        finally:
            self._t1 = time.perf_counter()
            self._finished = True
            with self._cond:
                if self._error is None:
                    # cancelled drives retire leftovers here, with
                    # their undispatched tickets returned, so the
                    # ledger and admission balance exactly
                    for st in list(self._streams.values()):
                        self._return_pending_locked(st)
                        outcome = ("cancelled" if self._cancelled
                                   else "completed")
                        self._retire_locked(st, outcome)
                else:
                    for st in self._streams.values():
                        st.close()
            if self._owns_pool:
                self.pool.close()
        if self._error is not None:
            raise self._error
        self._report = self._build_report()
        self.events.emit("service", phase="finish",
                         cancelled=self._cancelled)
        return self._report

    def serve(self) -> ServiceReport:
        """Run every stream to completion and report (blocking)."""
        return self.start().wait()

    def close(self) -> None:
        """Cancel and join (idempotent; never raises stream errors —
        :meth:`wait` is the raising path).  A service that never
        started still releases every added stream's session and
        source here."""
        if self._started and not self._finished:
            self.cancel()
            try:
                self.wait()
            except BaseException:  # noqa: BLE001 - close() must not raise
                pass
        elif not self._started and not self._finished:
            self._finished = True
            for st in self._streams.values():
                st.close()
            if self._owns_pool:
                self.pool.close()
            self.events.emit("service", phase="close")

    def __enter__(self) -> "FusionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- observability ----------------------------------------------------
    def ledger(self) -> Dict[str, object]:
        """The frame-accounting ledger, live at any instant.

        ``totals`` spans the service's whole life (retired streams
        included, reaped ones too); ``balanced`` asserts the
        conservation laws: every offered frame was admitted or shed,
        and every admitted frame is finalized, errored, or still in
        flight.
        """
        with self._cond:
            return self._ledger_locked()

    def _ledger_locked(self) -> Dict[str, object]:
        totals = dict(self._totals)
        for st in self._streams.values():
            entry = st.ledger()
            for key in _LEDGER_KEYS:
                totals[key] += entry[key]
        in_flight = self.admission.in_flight
        balanced = (
            totals["offered"] == totals["admitted"] + totals["shed"]
            and totals["admitted"] == (totals["finalized"]
                                       + totals["errored"] + in_flight))
        streams = {name: dict(entry)
                   for name, entry in self._retired_ledger.items()}
        for name, st in self._streams.items():
            streams[name] = st.ledger()
        return {"totals": totals, "in_flight": in_flight,
                "balanced": balanced, "streams": streams}

    def metrics_text(self) -> str:
        """The registry as Prometheus text exposition, with the
        point-in-time gauges refreshed first — the scrape endpoint's
        body (and ``repro serve --metrics-out``)."""
        with self._cond:
            self._g_active.set(len(self._streams))
            self._g_inflight.set(self.admission.in_flight)
            if self.shedder is not None:
                self._g_shed_engaged.set(
                    1.0 if self.shedder.engaged else 0.0)
            for engine, demand in self._committed.items():
                self._g_committed.labels(engine=engine).set(demand)
        return self.metrics.render_prometheus()

    # -- reporting --------------------------------------------------------
    def _stream_report(self, st: _StreamState,
                       peak_queue: int) -> FusionReport:
        report = st.session._report_since(st.mark)
        report.records = st.session._batch_records or []
        wall = ((st.ended_s - st.started_s)
                if st.started_s is not None and st.ended_s is not None
                else 0.0)
        report.throughput = {
            "executor": "serve",
            "frames": st.finalized,
            "wall_seconds": wall,
            "wall_fps": st.finalized / wall if wall > 0 else 0.0,
            "grants": st.grants,
            "batch_frames": st.batch_frames,
            "queue_peak": {"pending": peak_queue},
            "charged_mj": st.charged_mj,
            "priority": st.spec.priority,
            "priority_class": st.slo.priority_class,
            "shed": st.shed,
            "errored": st.errored,
            "stage_wall_s": st.processor.stage_wall_since(st.wall_mark),
        }
        return report

    def _build_report(self) -> ServiceReport:
        wall = self._t1 - self._t0
        streams = dict(self._retired)
        energy = {name: report.model_millijoules_total
                  for name, report in streams.items()}
        occupancy = self.pool.occupancy(wall)
        report = ServiceReport(
            streams=streams,
            wall_seconds=wall,
            frames_total=sum(r.frames for r in streams.values()),
            energy_mj_by_stream=energy,
            energy_mj_total=sum(energy.values()),
            engine_occupancy=occupancy,
            pool=self.pool.stats(),
            admission=self.admission.snapshot(),
            scheduler=dict(self._retired_scheduler),
            cancelled=self._cancelled,
            ledger=self._ledger_locked(),
            slo={
                "headroom": self.slo_headroom,
                "committed": dict(self._committed),
                "violations": {name: list(v) for name, v
                               in self._violations.items()},
            },
            shedding=(self.shedder.snapshot()
                      if self.shedder is not None else {}),
            metrics=self.metrics.snapshot(),
            events=self.events.snapshot(),
            errors=dict(self._errors),
        )
        # report-derived gauges: the scrape numerically agrees with
        # the report's aggregates by construction
        self._g_fps.set(report.aggregate_fps)
        for label, frac in occupancy.items():
            self._g_occupancy.labels(instance=label).set(frac)
        for name, millijoules in energy.items():
            self._g_stream_energy.labels(stream=name).set(millijoules)
        return report
