"""Aggregate reporting for a multi-stream service run.

Each stream keeps its own :class:`~repro.session.FusionReport` — the
same shape a solo :meth:`FusionSession.run` produces, so per-stream
numbers are directly comparable to single-tenant runs.  The
:class:`ServiceReport` adds what only the service can see: aggregate
throughput over the shared wall interval, how the pool's engines were
occupied, how the energy bill splits across tenants, and whether the
admission bounds and lease accounting held.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..session.report import FusionReport


@dataclass
class ServiceReport:
    """Outcome of one :meth:`FusionService.serve` drive."""

    #: per-stream reports, in stream registration order
    streams: Dict[str, FusionReport] = field(default_factory=dict)
    wall_seconds: float = 0.0
    frames_total: int = 0
    #: modelled energy split by tenant (mJ); sums to ``energy_mj_total``
    energy_mj_by_stream: Dict[str, float] = field(default_factory=dict)
    energy_mj_total: float = 0.0
    #: per-instance busy fraction of the service wall interval
    engine_occupancy: Dict[str, float] = field(default_factory=dict)
    #: :meth:`EnginePool.stats` at the end of the drive
    pool: Dict[str, object] = field(default_factory=dict)
    #: :meth:`AdmissionController.snapshot` at the end of the drive
    admission: Dict[str, object] = field(default_factory=dict)
    #: scheduling outcome: per-stream grants, charged mJ, priority
    scheduler: Dict[str, object] = field(default_factory=dict)
    #: True when :meth:`FusionService.cancel` ended the drive early
    cancelled: bool = False
    #: frame-accounting ledger: totals + per-stream
    #: offered/admitted/shed/finalized/errored, and whether the
    #: conservation laws balanced
    ledger: Dict[str, object] = field(default_factory=dict)
    #: SLO admission state: headroom, committed utilization per
    #: engine, violations observed at retirement
    slo: Dict[str, object] = field(default_factory=dict)
    #: :meth:`Shedder.snapshot` (empty when no shed policy was set)
    shedding: Dict[str, object] = field(default_factory=dict)
    #: :meth:`MetricsRegistry.snapshot` at the end of the drive
    metrics: Dict[str, object] = field(default_factory=dict)
    #: :meth:`EventLog.snapshot` at the end of the drive
    events: Dict[str, object] = field(default_factory=dict)
    #: live-mode isolated per-stream errors (stream -> message)
    errors: Dict[str, str] = field(default_factory=dict)

    @property
    def aggregate_fps(self) -> float:
        """Frames finalized per wall-clock second, all streams."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.frames_total / self.wall_seconds

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly summary (per-frame records omitted)."""
        return {
            "frames_total": self.frames_total,
            "wall_seconds": self.wall_seconds,
            "aggregate_fps": self.aggregate_fps,
            "energy_mj_total": self.energy_mj_total,
            "energy_mj_by_stream": dict(self.energy_mj_by_stream),
            "engine_occupancy": dict(self.engine_occupancy),
            "pool": dict(self.pool),
            "admission": dict(self.admission),
            "scheduler": dict(self.scheduler),
            "cancelled": self.cancelled,
            "ledger": dict(self.ledger),
            "slo": dict(self.slo),
            "shedding": dict(self.shedding),
            "metrics": dict(self.metrics),
            "events": dict(self.events),
            "errors": dict(self.errors),
            "streams": {name: report.as_dict()
                        for name, report in self.streams.items()},
        }

    def describe(self) -> str:
        """Human-readable service summary."""
        lines = [
            f"ServiceReport: {len(self.streams)} stream(s), "
            f"{self.frames_total} frames in {self.wall_seconds:.2f}s "
            f"({self.aggregate_fps:.1f} fps aggregate)"
            + (" [cancelled]" if self.cancelled else ""),
            f"  {'stream':<16} {'frames':>6} {'fps':>8} {'mJ':>10} "
            f"{'engines'}",
        ]
        for name, report in self.streams.items():
            fps = report.throughput.get("wall_fps", 0.0)
            engines = ",".join(sorted(report.engine_usage)) or "-"
            lines.append(
                f"  {name:<16} {report.frames:>6} {fps:>8.1f} "
                f"{report.model_millijoules_total:>10.2f} {engines}")
        occupancy = ", ".join(f"{label} {frac:.0%}" for label, frac
                              in self.engine_occupancy.items())
        lines.append(f"  engine occupancy: {occupancy or 'none'}")
        lines.append(f"  pool leases     : "
                     f"{self.pool.get('granted', 0)} granted / "
                     f"{self.pool.get('released', 0)} released / "
                     f"{self.pool.get('outstanding', 0)} outstanding")
        lines.append(f"  peak in flight  : "
                     f"{self.admission.get('peak_in_flight', 0)} of "
                     f"{self.admission.get('max_in_flight', 0)} "
                     f"(per-stream queue bound "
                     f"{self.admission.get('stream_queue_depth', 0)})")
        totals = self.ledger.get("totals")
        if totals:
            lines.append(
                f"  frame ledger    : {totals.get('offered', 0)} offered "
                f"= {totals.get('finalized', 0)} finalized "
                f"+ {totals.get('shed', 0)} shed "
                f"+ {totals.get('errored', 0)} errored "
                f"[{'balanced' if self.ledger.get('balanced') else 'UNBALANCED'}]")
        if self.shedding.get("shed_total"):
            lines.append(
                f"  overload sheds  : {self.shedding['shed_total']} "
                f"frame(s) over "
                f"{self.shedding.get('engagements', 0)} engagement(s)")
        if self.errors:
            for name, message in self.errors.items():
                lines.append(f"  stream error    : {name}: {message}")
        return "\n".join(lines)
