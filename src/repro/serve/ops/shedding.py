"""Graceful degradation: bounded, hysteretic frame shedding.

A service at its admission ceiling has two bad options: block every
capture (latency balloons for all tenants) or buffer (memory grows
without bound).  The live-ops answer is a third: under overload, drop
*frames* of the lowest priority class present — never streams, and
always whole frames before ingest, so a shed frame is simply absent
from the output (tolerance-free by construction: nothing is ever
partially fused).

:class:`ShedPolicy` declares the thresholds; the service owns a
:class:`Shedder` instance and consults it from each capture thread:

* **engage/disengage with hysteresis** — shedding engages when global
  in-flight frames reach ``high_watermark`` of ``max_in_flight`` and
  stays engaged until load falls to ``low_watermark``; the gap makes
  recovery stable (no flapping at the boundary, the classic
  high/low-watermark discipline of the paper's capture FIFO);
* **lowest class only** — a capture may shed only while its stream's
  priority class is the *lowest-ranked among active streams*, so a
  critical tenant never loses a frame while background tenants ride;
* **bounded per tenant** — at most ``max_shed_fraction`` of a
  stream's offered frames may be shed (checked against the ledger, so
  the bound holds over the stream's whole life); past the bound the
  stream falls back to blocking admission (backpressure, not loss).

Every shed is recorded per tenant; the ledger reconciles exactly:
``offered == admitted + shed`` at every instant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ...errors import ConfigurationError


@dataclass(frozen=True)
class ShedPolicy:
    """Thresholds for overload shedding.

    Parameters
    ----------
    high_watermark:
        Fraction of ``max_in_flight`` at which shedding engages
        (1.0 = only at a completely full admission budget).
    low_watermark:
        Fraction at which an engaged shedder disengages; must be
        strictly below ``high_watermark`` — the hysteresis band.
    max_shed_fraction:
        Per-tenant bound: never shed more than this fraction of a
        stream's offered frames.
    """

    high_watermark: float = 1.0
    low_watermark: float = 0.5
    max_shed_fraction: float = 0.5

    def __post_init__(self):
        if not 0.0 < self.high_watermark <= 1.0:
            raise ConfigurationError(
                f"high_watermark must be in (0, 1], got "
                f"{self.high_watermark}")
        if not 0.0 <= self.low_watermark < self.high_watermark:
            raise ConfigurationError(
                f"low_watermark must be in [0, high_watermark), got "
                f"{self.low_watermark} (high {self.high_watermark})")
        if not 0.0 < self.max_shed_fraction <= 1.0:
            raise ConfigurationError(
                f"max_shed_fraction must be in (0, 1], got "
                f"{self.max_shed_fraction}")

    def as_dict(self) -> Dict[str, float]:
        return {
            "high_watermark": self.high_watermark,
            "low_watermark": self.low_watermark,
            "max_shed_fraction": self.max_shed_fraction,
        }


class Shedder:
    """The service's shedding state machine.

    All methods are called under the service condition variable (the
    same discipline as :class:`~repro.serve.AdmissionController`), so
    the engage/disengage transitions and the per-tenant bounds are
    race-free without any lock of their own.
    """

    def __init__(self, policy: ShedPolicy, max_in_flight: int):
        self.policy = policy
        self._high = max(1, int(round(policy.high_watermark
                                      * max_in_flight)))
        self._low = int(policy.low_watermark * max_in_flight)
        self.engaged = False
        self.engagements = 0
        self.shed_total = 0
        self.shed_by_stream: Dict[str, int] = {}

    # -- the state machine ---------------------------------------------
    def update(self, in_flight: int) -> bool:
        """Advance the hysteresis against current load; returns the
        (possibly new) engaged state."""
        if not self.engaged and in_flight >= self._high:
            self.engaged = True
            self.engagements += 1
        elif self.engaged and in_flight <= self._low:
            self.engaged = False
        return self.engaged

    def should_shed(self, stream: str, rank: int, lowest_rank: int,
                    offered: int, shed: int, in_flight: int) -> bool:
        """May ``stream`` shed its next frame right now?

        ``rank`` is the stream's priority-class rank, ``lowest_rank``
        the lowest rank among active streams (larger = less
        important); ``offered``/``shed`` are the stream's ledger
        counts *before* this frame.
        """
        if not self.update(in_flight):
            return False
        if rank < lowest_rank:
            return False  # a higher class never sheds below it
        # bound over the stream's life, counting the frame at hand
        if (shed + 1) > self.policy.max_shed_fraction * (offered + 1):
            return False
        return True

    def record(self, stream: str) -> None:
        self.shed_total += 1
        self.shed_by_stream[stream] = \
            self.shed_by_stream.get(stream, 0) + 1

    def forget(self, stream: str) -> int:
        """Fold a retiring stream's count out of the per-stream map
        (the total keeps it); returns what it shed."""
        return self.shed_by_stream.pop(stream, 0)

    def snapshot(self) -> Dict[str, object]:
        return {
            "policy": self.policy.as_dict(),
            "engaged": self.engaged,
            "engagements": self.engagements,
            "shed_total": self.shed_total,
            "shed_by_stream": dict(self.shed_by_stream),
        }
