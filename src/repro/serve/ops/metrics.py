"""Fleet observability: a minimal metrics registry with Prometheus
text exposition.

A long-lived :class:`~repro.serve.FusionService` is scraped, not
printed: operators want counters (frames finalized, frames shed,
leases granted), gauges (active streams, in-flight frames, engine
occupancy) and latency histograms, all exportable in the Prometheus
text format without taking a dependency on a metrics client library.
:class:`MetricsRegistry` is that layer — deliberately small, fully
thread-safe (one lock per registry; every instrument mutation takes
it), and bounded: label cardinality is whatever the caller creates, so
the service labels hot-path series by *engine* and *priority class*
(bounded sets), never by stream name — per-stream series appear only
in report-derived gauges.

The exposition follows the Prometheus conventions the real exposition
format specifies: ``# HELP``/``# TYPE`` headers, ``name{label="v"}
value`` samples, histograms as cumulative ``_bucket{le="..."}`` series
plus ``_sum``/``_count``.  :func:`parse_prometheus` is the inverse for
tests and for the acceptance gate that the rendered text numerically
agrees with the :class:`~repro.serve.ServiceReport` aggregates.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ...errors import ConfigurationError

#: default histogram buckets (seconds): spans sub-ms modelled stage
#: times up to multi-second stalls
DEFAULT_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                   0.1, 0.25, 0.5, 1.0, 2.5, 5.0)

#: label-set key: sorted (name, value) pairs
_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(key: _LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{_escape(value)}"' for name, value in key)
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r"\"")
            .replace("\n", r"\n"))


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


_NAME_OK = ("abcdefghijklmnopqrstuvwxyz"
            "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() \
            or any(ch not in _NAME_OK for ch in name):
        raise ConfigurationError(
            f"invalid metric name {name!r}: use [a-zA-Z_:][a-zA-Z0-9_:]*")
    return name


class _Child:
    """One labelled time series of a family (or the unlabelled one)."""

    __slots__ = ("_family", "_key")

    def __init__(self, family: "_Family", key: _LabelKey):
        self._family = family
        self._key = key

    @property
    def value(self) -> float:
        with self._family._lock:
            return self._family._values.get(self._key, 0.0)


class Counter(_Child):
    """Monotonically increasing count."""

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counters only go up; inc({amount}) is not allowed")
        with self._family._lock:
            values = self._family._values
            values[self._key] = values.get(self._key, 0.0) + amount


class Gauge(_Child):
    """A value that can go up and down."""

    def set(self, value: float) -> None:
        with self._family._lock:
            self._family._values[self._key] = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._family._lock:
            values = self._family._values
            values[self._key] = values.get(self._key, 0.0) + amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram(_Child):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    def observe(self, value: float) -> None:
        family = self._family
        with family._lock:
            state = family._values.get(self._key)
            if state is None:
                state = {"buckets": [0] * len(family.buckets),
                         "sum": 0.0, "count": 0}
                family._values[self._key] = state
            slot = bisect_left(family.buckets, value)
            if slot < len(family.buckets):
                state["buckets"][slot] += 1
            state["sum"] += float(value)
            state["count"] += 1

    @property
    def count(self) -> int:
        with self._family._lock:
            state = self._family._values.get(self._key)
            return state["count"] if state else 0

    @property
    def sum(self) -> float:
        with self._family._lock:
            state = self._family._values.get(self._key)
            return state["sum"] if state else 0.0


class _Family:
    """One named metric family: HELP/TYPE plus its labelled children."""

    _child_cls = _Child

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 kind: str, buckets: Optional[Sequence[float]] = None):
        self.name = _check_name(name)
        self.help = help
        self.kind = kind
        self._lock = registry._lock
        self._values: Dict[_LabelKey, object] = {}
        self._children: Dict[_LabelKey, _Child] = {}
        if kind == "histogram":
            if buckets is None:
                buckets = DEFAULT_BUCKETS
            buckets = tuple(sorted(float(b) for b in buckets))
            if not buckets or len(set(buckets)) != len(buckets):
                raise ConfigurationError(
                    f"histogram {name!r} needs distinct finite buckets")
            self.buckets: Tuple[float, ...] = buckets

    def labels(self, **labels: str) -> _Child:
        key = _label_key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._child_cls(self, key)
                self._children[key] = child
            return child

    # the unlabelled series, for families used without labels
    def __getattr__(self, item):
        return getattr(self.labels(), item)

    # -- exposition -----------------------------------------------------
    def _render(self, lines: List[str]) -> None:
        lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for key in sorted(self._values):
            if self.kind == "histogram":
                self._render_histogram(lines, key)
            else:
                lines.append(f"{self.name}{_format_labels(key)} "
                             f"{_format_value(self._values[key])}")

    def _render_histogram(self, lines: List[str], key: _LabelKey) -> None:
        state = self._values[key]
        cumulative = 0
        for bound, count in zip(self.buckets, state["buckets"]):
            cumulative += count
            bucket_key = key + (("le", _format_value(bound)),)
            lines.append(f"{self.name}_bucket{_format_labels(bucket_key)} "
                         f"{cumulative}")
        inf_key = key + (("le", "+Inf"),)
        lines.append(f"{self.name}_bucket{_format_labels(inf_key)} "
                     f"{state['count']}")
        lines.append(f"{self.name}_sum{_format_labels(key)} "
                     f"{_format_value(state['sum'])}")
        lines.append(f"{self.name}_count{_format_labels(key)} "
                     f"{state['count']}")

    def _snapshot(self) -> Dict[str, object]:
        series = {}
        for key, value in self._values.items():
            label = _format_labels(key) or "{}"
            if self.kind == "histogram":
                series[label] = {"count": value["count"],
                                 "sum": value["sum"],
                                 "buckets": list(value["buckets"])}
            else:
                series[label] = value
        snap = {"kind": self.kind, "help": self.help, "series": series}
        if self.kind == "histogram":
            # bucket bounds travel with the snapshot so histograms from
            # different processes can be merged bucket-wise (and the
            # merge can refuse mismatched bounds loudly)
            snap["le"] = list(self.buckets)
        return snap


class _CounterFamily(_Family):
    _child_cls = Counter


class _GaugeFamily(_Family):
    _child_cls = Gauge


class _HistogramFamily(_Family):
    _child_cls = Histogram


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Families are created once (re-registering the same name returns the
    existing family; a kind mismatch raises) and render in registration
    order, each family's series in sorted label order — so the
    exposition is deterministic for a given set of observations.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    def _register(self, cls, name: str, help: str, kind: str,
                  buckets=None) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind:
                    raise ConfigurationError(
                        f"metric {name!r} already registered as "
                        f"{family.kind}, not {kind}")
                return family
        family = cls(self, name, help, kind, buckets)
        with self._lock:
            return self._families.setdefault(name, family)

    def counter(self, name: str, help: str = "") -> _CounterFamily:
        return self._register(_CounterFamily, name, help, "counter")

    def gauge(self, name: str, help: str = "") -> _GaugeFamily:
        return self._register(_GaugeFamily, name, help, "gauge")

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None
                  ) -> _HistogramFamily:
        return self._register(_HistogramFamily, name, help, "histogram",
                              buckets)

    # -- export ---------------------------------------------------------
    def render_prometheus(self) -> str:
        """The registry as Prometheus text exposition (format 0.0.4)."""
        lines: List[str] = []
        with self._lock:
            families = list(self._families.values())
        for family in families:
            with self._lock:
                family._render(lines)
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly dump of every family and series."""
        with self._lock:
            return {name: family._snapshot()
                    for name, family in self._families.items()}


def merge_snapshots(snapshots: Sequence[Dict[str, object]]
                    ) -> Dict[str, object]:
    """Merge :meth:`MetricsRegistry.snapshot` dumps from N processes.

    The sharded service's observability story: each shard owns a
    private registry (cross-process mutation of one registry is not a
    thing), so the fleet-wide view is a *merge of snapshots* — counters
    and gauges sum per series, histograms sum bucket-wise (mismatched
    bucket bounds for the same family raise — that is a deployment
    bug, not data), and family kind/help must agree.  Series present
    in only some shards pass through unchanged, so heterogeneous label
    sets (different engines per shard) merge naturally.
    """
    merged: Dict[str, Dict[str, object]] = {}
    for snapshot in snapshots:
        for name, family in snapshot.items():
            into = merged.get(name)
            if into is None:
                merged[name] = {
                    "kind": family["kind"], "help": family["help"],
                    "series": {label: (dict(value)
                                       if isinstance(value, dict)
                                       else value)
                               for label, value
                               in family["series"].items()},
                }
                if "le" in family:
                    merged[name]["le"] = list(family["le"])
                continue
            if into["kind"] != family["kind"]:
                raise ConfigurationError(
                    f"cannot merge metric {name!r}: kind "
                    f"{family['kind']!r} vs {into['kind']!r}")
            if family["kind"] == "histogram" \
                    and list(family.get("le", ())) != list(
                        into.get("le", ())):
                raise ConfigurationError(
                    f"cannot merge histogram {name!r}: bucket bounds "
                    f"differ across snapshots")
            series = into["series"]
            for label, value in family["series"].items():
                have = series.get(label)
                if have is None:
                    series[label] = (dict(value)
                                     if isinstance(value, dict) else value)
                elif isinstance(value, dict):
                    have["count"] += value["count"]
                    have["sum"] += value["sum"]
                    have["buckets"] = [a + b for a, b
                                       in zip(have["buckets"],
                                              value["buckets"])]
                else:
                    series[label] = have + value
    return merged


def render_snapshot(snapshot: Dict[str, object]) -> str:
    """Render a (possibly merged) snapshot as Prometheus exposition.

    The inverse direction of :meth:`MetricsRegistry.snapshot` for the
    sharded service: merged snapshots are plain data, not a live
    registry, so exposition is rebuilt from the data directly.
    """
    lines: List[str] = []
    for name, family in snapshot.items():
        lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {family['kind']}")
        for label in sorted(family["series"]):
            value = family["series"][label]
            label_str = "" if label == "{}" else label
            if family["kind"] == "histogram":
                bounds = family.get("le", ())
                cumulative = 0
                for bound, count in zip(bounds, value["buckets"]):
                    cumulative += count
                    bucket_label = _merge_label(
                        label_str, f'le="{_format_value(float(bound))}"')
                    lines.append(f"{name}_bucket{bucket_label} "
                                 f"{cumulative}")
                inf_label = _merge_label(label_str, 'le="+Inf"')
                lines.append(f"{name}_bucket{inf_label} "
                             f"{value['count']}")
                lines.append(f"{name}_sum{label_str} "
                             f"{_format_value(value['sum'])}")
                lines.append(f"{name}_count{label_str} "
                             f"{value['count']}")
            else:
                lines.append(f"{name}{label_str} "
                             f"{_format_value(float(value))}")
    return "\n".join(lines) + ("\n" if lines else "")


def _merge_label(label_str: str, extra: str) -> str:
    if not label_str:
        return "{" + extra + "}"
    return label_str[:-1] + "," + extra + "}"


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse exposition text back into ``{'name{labels}': value}``.

    The test-side inverse of :meth:`MetricsRegistry.render_prometheus`
    (and of any real exporter's scrape): comments are skipped, sample
    lines split on the last space.
    """
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        samples[series] = float(value)
    return samples


def iter_samples(text: str) -> Iterable[Tuple[str, float]]:
    """Yield (series, value) pairs from exposition text."""
    return parse_prometheus(text).items()
