"""Live operations for the serving layer: SLOs, churn, shedding,
observability.

PR 5 made :class:`~repro.serve.FusionService` drive a *fixed* stream
set to completion; this package is what turns it into an always-on
system (ROADMAP item 4):

* :class:`StreamSLO` — a declarative per-stream objective (target
  FPS, latency budget, priority class) that drives admission
  (:func:`check_feasible` models capacity before a stream attaches;
  infeasible SLOs raise :class:`SLORejection`) and scheduling (the
  picker runs the largest normalized SLO deficit first);
* :class:`ShedPolicy` / :class:`Shedder` — graceful degradation under
  overload: whole frames of the lowest priority class are dropped
  before ingest, bounded per tenant, with watermark hysteresis so
  recovery is stable;
* :class:`MetricsRegistry` — counters/gauges/histograms fed by the
  pool, admission, scheduler and per-stream telemetry, exported as
  Prometheus text exposition (:meth:`MetricsRegistry.render_prometheus`,
  ``repro serve --metrics-out``);
* :class:`EventLog` — a bounded structured event ring
  (attach/detach/shed/SLO-violation/lease events with monotonic
  timestamps) exported as JSONL.

The runtime churn surface itself — ``attach()`` / ``detach()`` on a
running service — lives on :class:`~repro.serve.FusionService`
(``live=True``); this package holds the policies and the export layer
it runs on.
"""

from .events import EVENT_KINDS, Event, EventLog
from .metrics import (DEFAULT_BUCKETS, Counter, Gauge, Histogram,
                      MetricsRegistry, merge_snapshots, parse_prometheus,
                      render_snapshot)
from .shedding import ShedPolicy, Shedder
from .slo import (BEST_EFFORT, CLASS_WEIGHTS, PRIORITY_CLASSES,
                  SLORejection, StreamSLO, check_feasible)

__all__ = [
    "BEST_EFFORT", "CLASS_WEIGHTS", "PRIORITY_CLASSES",
    "Counter", "DEFAULT_BUCKETS", "EVENT_KINDS", "Event", "EventLog",
    "Gauge", "Histogram", "MetricsRegistry",
    "SLORejection", "ShedPolicy", "Shedder", "StreamSLO",
    "check_feasible", "merge_snapshots", "parse_prometheus",
    "render_snapshot",
]
