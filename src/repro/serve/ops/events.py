"""Structured service events as a bounded JSONL log.

Metrics answer *how much*; events answer *what happened when*: a
stream attached, a tenant was rejected at admission, frames were shed
under overload, an SLO was violated, a lease was granted.  Each
:class:`Event` carries a monotonic timestamp (``time.monotonic()`` —
immune to wall-clock steps, so event deltas are trustworthy), a
monotonically increasing sequence number, a kind from
:data:`EVENT_KINDS`, the stream it concerns (when any) and a flat
JSON-friendly payload.

The log is a *ring*: ``capacity`` bounds retained events (the soak
bar demands flat memory across thousands of churned streams), while
``total`` and per-kind counters keep the full history countable after
old events age out.  :meth:`to_jsonl` renders the retained window in
JSON-Lines, one event per line — the format log shippers ingest.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional

from ...errors import ConfigurationError

#: the event vocabulary; emit() rejects kinds outside it so consumers
#: can switch on the field without defending against typos
EVENT_KINDS = (
    "attach",           # stream admitted and registered
    "reject",           # admission refused a stream (SLO infeasible)
    "detach",           # stream retired (completed, detached, errored)
    "shed",             # frames dropped whole under overload
    "slo_violation",    # a retiring stream missed its SLO
    "lease",            # an engine lease granted to a stream
    "error",            # a stream failed (isolated in live mode)
    "service",          # service lifecycle (start, drain, close)
    "shard_start",      # a shard process came up (sharded serving)
    "shard_exit",       # a shard process exited (clean or crashed)
    "lease_reclaim",    # broker reclaimed leases from a dead shard
)


class Event:
    """One structured log record."""

    __slots__ = ("seq", "monotonic_s", "kind", "stream", "data")

    def __init__(self, seq: int, monotonic_s: float, kind: str,
                 stream: Optional[str], data: Dict[str, object]):
        self.seq = seq
        self.monotonic_s = monotonic_s
        self.kind = kind
        self.stream = stream
        self.data = data

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "seq": self.seq,
            "monotonic_s": self.monotonic_s,
            "kind": self.kind,
        }
        if self.stream is not None:
            record["stream"] = self.stream
        if self.data:
            record.update(self.data)
        return record


class EventLog:
    """Thread-safe bounded event ring with JSONL export.

    Parameters
    ----------
    capacity:
        Retained-event bound (older events age out of the ring but
        stay counted in ``total`` and the per-kind counters).
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ConfigurationError(
                f"event log capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: Deque[Event] = deque(maxlen=capacity)
        self._seq = 0
        self._counts: Dict[str, int] = {}

    def emit(self, kind: str, stream: Optional[str] = None,
             **data: object) -> Event:
        if kind not in EVENT_KINDS:
            raise ConfigurationError(
                f"unknown event kind {kind!r}; expected one of "
                f"{EVENT_KINDS}")
        with self._lock:
            self._seq += 1
            event = Event(self._seq, time.monotonic(), kind, stream, data)
            self._ring.append(event)
            self._counts[kind] = self._counts.get(kind, 0) + 1
            return event

    # -- reading --------------------------------------------------------
    @property
    def total(self) -> int:
        """Events ever emitted (aged-out ones included)."""
        with self._lock:
            return self._seq

    def counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def events(self, kind: Optional[str] = None) -> List[Event]:
        """Retained events, oldest first (optionally one kind)."""
        with self._lock:
            retained = list(self._ring)
        if kind is None:
            return retained
        return [event for event in retained if event.kind == kind]

    def to_jsonl(self) -> str:
        """The retained window as JSON Lines (one event per line)."""
        return "".join(json.dumps(event.as_dict(), sort_keys=True) + "\n"
                       for event in self.events())

    def dump(self, path) -> int:
        """Write :meth:`to_jsonl` to ``path``; returns events written."""
        events = self.events()
        with open(path, "w") as fh:
            for event in events:
                fh.write(json.dumps(event.as_dict(), sort_keys=True) + "\n")
        return len(events)

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly summary for the :class:`ServiceReport`."""
        with self._lock:
            return {
                "total": self._seq,
                "retained": len(self._ring),
                "capacity": self.capacity,
                "counts": dict(self._counts),
            }
