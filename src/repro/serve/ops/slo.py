"""Per-stream service-level objectives and SLO-driven admission.

PR 5's scheduler split pool energy by a static priority *weight* — a
knob, not a goal.  A live service states goals instead:
:class:`StreamSLO` declares what a tenant needs (target FPS, a
per-frame latency budget, a priority class), and two mechanisms
enforce it:

* **admission** — :func:`check_feasible` models whether the pool can
  meet the SLO *before* the stream attaches: the plan's modelled
  seconds-per-frame on each engine it will lease, against that
  engine's remaining capacity after every already-admitted SLO is
  charged (goal-driven work distribution in the sense of
  Nunez-Yanez et al., arXiv:1802.03316 — admit against modelled
  capacity, not hope).  Infeasible streams are rejected with
  :class:`SLORejection` naming the overloaded engine and the numbers;
* **scheduling** — the service's picker orders dispatchable streams by
  *normalized SLO deficit* (seconds behind the target frame schedule,
  largest first) instead of charged-energy-per-weight; energy is still
  charged at the planner's modelled cost, and best-effort streams
  (no ``target_fps``) fall back to the energy-fair key among
  themselves.

Priority classes are ordinal, not numeric: ``critical`` outranks
``standard`` outranks ``background``.  Under overload the shedding
policy (:mod:`repro.serve.ops.shedding`) only drops frames of the
lowest class present — class is about *who degrades first*, the SLO
deficit is about *who runs next*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ...errors import ConfigurationError, FusionError

#: ordinal priority classes, highest first; shedding starts from the
#: back of this tuple, energy weights fall with rank
PRIORITY_CLASSES = ("critical", "standard", "background")

#: energy-fair weight of each class when no explicit weight is given:
#: one step of class outranks any deficit tie
CLASS_WEIGHTS = {"critical": 4.0, "standard": 2.0, "background": 1.0}


class SLORejection(FusionError):
    """Admission refused a stream: its SLO is not feasible on the
    pool's modelled capacity (or violates its own latency budget)."""


@dataclass(frozen=True)
class StreamSLO:
    """What one stream needs from the service.

    Parameters
    ----------
    target_fps:
        Sustained fused frames per second the tenant expects; ``0.0``
        declares a best-effort stream (no deficit, no capacity
        reservation).
    latency_budget_s:
        Optional per-frame budget: admission rejects a stream whose
        *modelled* frame time already exceeds it, and a retiring
        stream whose measured wall p95 exceeded it logs an
        ``slo_violation`` event.
    priority_class:
        ``"critical"`` / ``"standard"`` / ``"background"``: who sheds
        first under overload, and the energy-fair weight among streams
        with equal deficit.
    """

    target_fps: float = 0.0
    latency_budget_s: Optional[float] = None
    priority_class: str = "standard"

    def __post_init__(self):
        if self.target_fps < 0:
            raise ConfigurationError(
                f"target_fps must be >= 0 (0 = best effort), got "
                f"{self.target_fps}")
        if self.latency_budget_s is not None and self.latency_budget_s <= 0:
            raise ConfigurationError(
                f"latency_budget_s must be positive or None, got "
                f"{self.latency_budget_s}")
        if self.priority_class not in PRIORITY_CLASSES:
            raise ConfigurationError(
                f"priority_class must be one of {PRIORITY_CLASSES}, got "
                f"{self.priority_class!r}")

    @property
    def weight(self) -> float:
        """Energy-fair weight derived from the priority class."""
        return CLASS_WEIGHTS[self.priority_class]

    @property
    def rank(self) -> int:
        """Ordinal rank (0 = most important)."""
        return PRIORITY_CLASSES.index(self.priority_class)

    def as_dict(self) -> Dict[str, object]:
        return {
            "target_fps": self.target_fps,
            "latency_budget_s": self.latency_budget_s,
            "priority_class": self.priority_class,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "StreamSLO":
        """Build from a spec block (the CLI's ``"slo"`` key)."""
        known = {"target_fps", "latency_budget_s", "priority_class"}
        bad = set(data) - known
        if bad:
            raise ConfigurationError(
                f"unknown SLO key(s) {sorted(bad)}; expected a subset "
                f"of {sorted(known)}")
        return cls(**dict(data))


#: a best-effort standard-class SLO: the default when a stream gives
#: none — scheduling degenerates to the energy-fair pick
BEST_EFFORT = StreamSLO()


def check_feasible(name: str, slo: StreamSLO,
                   seconds_by_engine: Mapping[str, float],
                   model_mj_per_frame: float,
                   pool_counts: Mapping[str, int],
                   committed: Mapping[str, float],
                   headroom: float = 1.0) -> Dict[str, float]:
    """Admission gate: can the pool still meet ``slo``?

    Parameters
    ----------
    seconds_by_engine:
        The stream's modelled compute seconds per frame on each engine
        it will lease (from the lowered plan's cost model).
    model_mj_per_frame:
        The planner's modelled energy per frame — reported in the
        rejection so operators see what the J/frame bill would have
        been.
    pool_counts:
        Instances per engine name in the pool.
    committed:
        Engine -> already-reserved utilization fraction (sum over
        admitted SLO streams of ``target_fps * seconds_per_frame``,
        divided by instance count).
    headroom:
        Fraction of each engine the admission controller may promise
        (1.0 = the whole modelled capacity).

    Returns the stream's own utilization demand per engine (what to
    add to ``committed`` on admit).  Raises :class:`SLORejection` when
    any engine would be oversubscribed, or when the latency budget is
    below the modelled frame time.
    """
    total_s = sum(seconds_by_engine.values())
    if slo.latency_budget_s is not None and total_s > slo.latency_budget_s:
        raise SLORejection(
            f"stream {name!r}: latency budget "
            f"{slo.latency_budget_s * 1e3:.2f} ms is below the plan's "
            f"modelled frame time {total_s * 1e3:.2f} ms "
            f"({model_mj_per_frame:.2f} mJ/frame) — the SLO cannot be "
            f"met even on an idle pool")
    demand: Dict[str, float] = {}
    if slo.target_fps <= 0:
        return demand  # best effort reserves nothing
    for engine, seconds in seconds_by_engine.items():
        instances = pool_counts.get(engine, 0)
        if instances == 0:
            continue  # inventory membership is validated elsewhere
        demand[engine] = slo.target_fps * seconds / instances
        load = committed.get(engine, 0.0) + demand[engine]
        if load > headroom + 1e-9:
            raise SLORejection(
                f"stream {name!r}: admitting {slo.target_fps:g} fps "
                f"would load engine {engine!r} to {load:.2f}x of its "
                f"modelled capacity ({instances} instance(s), "
                f"{committed.get(engine, 0.0):.2f}x already committed, "
                f"headroom {headroom:g}); the SLO cannot be met — "
                f"modelled cost {seconds * 1e3:.3f} ms/frame, "
                f"{model_mj_per_frame:.2f} mJ/frame")
    return demand
