"""The shared engine pool: a lease/release protocol over real instances.

A serving deployment owns a fixed hardware inventory — the paper's
board has one ARM core, its NEON unit and one FPGA fabric; a bigger
box has several of each.  :class:`EnginePool` models that inventory as
instantiated :class:`~repro.hw.engine.Engine` objects (built through
the single registry, so every instance of a name computes identical
arithmetic) and hands them out under an explicit *lease*: a stream may
only compute on an engine while it holds an :class:`EngineLease` for
it, and must release the lease whether the frame succeeded, raised or
was cancelled.

The protocol is deliberately small:

* :meth:`EnginePool.lease` — block until an instance of the named
  engine is idle (optionally bounded by ``timeout``), then take it;
* :meth:`EnginePool.try_lease` — non-blocking variant for schedulers
  that already know the instance is idle;
* :meth:`EngineLease.release` — return the instance (idempotent, and
  what the lease's context manager does);
* :meth:`EnginePool.stats` — accounting: leases granted/released,
  instances outstanding, how often a lease had to wait, and per-
  instance busy time, from which a service derives engine occupancy.

Accounting is an invariant, not a convenience: ``granted`` equals
``released`` plus ``outstanding`` at every instant, which is what the
serve test-suite asserts across success, error and cancellation paths.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Union

from ..errors import ConfigurationError, FusionError
from ..hw.engine import Engine
from ..hw.registry import create_engines

#: seconds between stop/timeout checks while blocked on a full pool
TICK_S = 0.05


class EngineLease:
    """Temporary ownership of one pool instance.

    The lease is a context manager (``with pool.lease("fpga"):``) and
    :meth:`release` is idempotent, so ``finally`` blocks and explicit
    releases compose without double-release accounting bugs.
    """

    __slots__ = ("engine", "name", "label", "_pool", "_acquired_s",
                 "_released")

    def __init__(self, pool: "EnginePool", engine: Engine, label: str):
        self._pool = pool
        self.engine = engine
        self.name = engine.name
        #: stable instance label (``fpga[1]``), the occupancy key
        self.label = label
        self._acquired_s = time.perf_counter()
        self._released = False

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> bool:
        """Return the instance to the pool; True if this call did it."""
        if self._released:
            return False
        self._released = True
        self._pool._return(self, time.perf_counter() - self._acquired_s)
        return True

    def __enter__(self) -> "EngineLease":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class EnginePool:
    """A fixed inventory of engine instances shared by many streams."""

    def __init__(self, spec: Union[Mapping[str, int], Sequence[str],
                                   Sequence[Engine]]):
        if (isinstance(spec, (list, tuple)) and spec
                and all(isinstance(e, Engine) for e in spec)):
            engines = tuple(spec)
        else:
            engines = create_engines(spec)
        self._cond = threading.Condition()
        self._idle: Dict[str, Deque[EngineLease]] = {}
        self._labels: List[str] = []
        per_name: Dict[str, int] = {}
        for engine in engines:
            slot = per_name.get(engine.name, 0)
            per_name[engine.name] = slot + 1
            label = f"{engine.name}[{slot}]"
            self._labels.append(label)
            lease = EngineLease(self, engine, label)
            lease._released = True  # starts idle; not an outstanding lease
            self._idle.setdefault(engine.name, deque()).append(lease)
        self._counts = dict(per_name)
        self._closed = False
        # -- accounting ------------------------------------------------
        self._granted = 0
        self._released_n = 0
        self._waits = 0
        self._peak_outstanding = 0
        self._busy_s: Dict[str, float] = {label: 0.0
                                          for label in self._labels}
        self._frames: Dict[str, int] = {label: 0 for label in self._labels}

    # -- inventory ------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._labels)

    def names(self) -> Sequence[str]:
        """Engine names present in the pool (registration order)."""
        return tuple(self._counts)

    def count(self, name: str) -> int:
        return self._counts.get(name, 0)

    def idle_count(self, name: str) -> int:
        with self._cond:
            return len(self._idle.get(name, ()))

    @property
    def outstanding(self) -> int:
        with self._cond:
            return self._granted - self._released_n

    # -- the lease protocol ---------------------------------------------
    def _check_name(self, name: str) -> None:
        if name not in self._counts:
            raise ConfigurationError(
                f"pool has no {name!r} engines; inventory is "
                f"{dict(self._counts)}")

    def _take_locked(self, name: str) -> EngineLease:
        idle = self._idle[name].popleft()
        lease = EngineLease(self, idle.engine, idle.label)
        self._granted += 1
        self._peak_outstanding = max(self._peak_outstanding,
                                     self._granted - self._released_n)
        return lease

    def try_lease(self, name: str) -> Optional[EngineLease]:
        """An idle instance of ``name`` right now, or ``None``."""
        self._check_name(name)
        with self._cond:
            if self._closed:
                raise FusionError("engine pool is closed")
            if not self._idle[name]:
                return None
            return self._take_locked(name)

    def lease(self, name: str,
              timeout: Optional[float] = None) -> EngineLease:
        """Block until an instance of ``name`` is idle, then take it.

        Raises :class:`FusionError` when ``timeout`` elapses first or
        the pool is closed while waiting — never returns a lease the
        caller does not hold.
        """
        self._check_name(name)
        deadline = (time.perf_counter() + timeout
                    if timeout is not None else None)
        waited = False
        with self._cond:
            while True:
                if self._closed:
                    raise FusionError("engine pool is closed")
                if self._idle[name]:
                    if waited:
                        self._waits += 1
                    return self._take_locked(name)
                if deadline is not None \
                        and time.perf_counter() >= deadline:
                    self._waits += 1
                    raise FusionError(
                        f"timed out waiting {timeout:.3f}s for an idle "
                        f"{name!r} engine ({self._counts[name]} "
                        f"instance(s), all leased)")
                waited = True
                self._cond.wait(timeout=TICK_S)

    def _return(self, lease: EngineLease, held_s: float) -> None:
        with self._cond:
            self._released_n += 1
            self._busy_s[lease.label] += held_s
            self._frames[lease.label] += 1
            # a closed pool still accepts returns so accounting always
            # balances; it only refuses *new* leases
            self._idle[lease.name].append(lease)
            self._cond.notify_all()

    def close(self) -> None:
        """Refuse new leases (outstanding ones may still release)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # -- accounting ------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        with self._cond:
            return {
                "size": self.size,
                "inventory": dict(self._counts),
                "granted": self._granted,
                "released": self._released_n,
                "outstanding": self._granted - self._released_n,
                "peak_outstanding": self._peak_outstanding,
                "waits": self._waits,
                "busy_s": dict(self._busy_s),
                "leases": dict(self._frames),
            }

    def occupancy(self, wall_seconds: float) -> Dict[str, float]:
        """Busy fraction of ``wall_seconds`` per instance label."""
        if wall_seconds <= 0:
            return {label: 0.0 for label in self._labels}
        with self._cond:
            return {label: busy / wall_seconds
                    for label, busy in self._busy_s.items()}

    def __enter__(self) -> "EnginePool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
