"""Zero-copy frame transport between processes: shared-memory rings.

Pickling pixel arrays over a pipe costs a serialize + two copies per
frame and caps sharded throughput well below what the GIL escape buys.
:class:`FrameRing` moves frames through one
:class:`multiprocessing.shared_memory.SharedMemory` segment instead:
a fixed number of equally sized *slots*, leased to the producer by a
counting semaphore of free slots and to the consumer by a semaphore of
filled slots.  Pixel data is written with a single ``memcpy`` into the
slot (a flat ``memoryview`` assignment — never pickled) and read back
with one copy out; only the small metadata dict (stream name, frame
index, dtype/shape descriptors, scalar provenance) is pickled, and it
is bounded per message.

Each slot carries a **generation counter**: the producer stamps the
absolute message sequence number into the slot header, the consumer
asserts the stamp matches the sequence it is about to consume.  A
mismatch means slot reuse raced ahead of the lease protocol (or a
foreign writer scribbled on the segment) and raises immediately
instead of silently delivering another stream's pixels.

Lifecycle contract: the *creating* process (the parent service) owns
the segment — it unlinks on close, registers an :mod:`atexit` fallback
and is the only side the OS resource tracker watches.  Attaching
processes (shards) explicitly unregister from their tracker, so a
shard's death — including SIGKILL — never double-unlinks or leaks a
segment: the parent's unlink is the single point of truth.
"""

from __future__ import annotations

import atexit
import pickle
import secrets
import struct
import time
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...errors import ConfigurationError, FusionError

#: slot header: generation (u64), meta length (u32), payload length (u32)
_HEADER = struct.Struct("<QII")

#: seconds between stop-flag checks while blocked on a slot semaphore
TICK_S = 0.05

#: every segment this module creates carries this prefix, so leak
#: checks can enumerate exactly the segments the sharded service owns
SEGMENT_PREFIX = "repro-shard"


def segment_name(tag: str) -> str:
    """A collision-resistant shared-memory name for one ring."""
    return f"{SEGMENT_PREFIX}-{tag}-{secrets.token_hex(4)}"


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without tracker ownership.

    The parent created the segment and is responsible for unlinking
    it; a shard that merely attaches must not enroll it with its own
    resource tracker, or the first shard to exit would tear the
    segment down under every other process (and SIGKILLed shards
    would trip the tracker's leak warnings).  Python 3.13 spells this
    ``track=False``; older versions need the documented unregister
    workaround.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        segment = shared_memory.SharedMemory(name=name)
        try:
            from multiprocessing import resource_tracker
            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:
            pass
        return segment


class RingClosed(FusionError):
    """The ring was closed while a put/get was blocked on it."""


class FrameRing:
    """A bounded SPSC message ring over one shared-memory segment.

    One process produces (any number of its threads, serialized by the
    producer lock), one process consumes.  Construct in the owning
    process, pass the instance to the peer as a ``Process`` argument
    (the semaphores only travel at process creation), then call
    :meth:`attach` on the peer side before first use.

    Parameters
    ----------
    ctx:
        The :mod:`multiprocessing` context the semaphores come from
        (must match the context the shard processes are spawned with).
    tag:
        Human-readable segment-name component (``in-0``, ``out-2``).
    slots / slot_bytes:
        Ring geometry.  A message (header + pickled meta + raw array
        payload) must fit one slot; oversized frames raise with the
        knob to raise (``ring_slot_bytes``) named in the error.
    """

    def __init__(self, ctx, tag: str, slots: int, slot_bytes: int):
        if slots < 2:
            raise ConfigurationError(
                f"ring needs >= 2 slots, got {slots}")
        if slot_bytes < _HEADER.size + 64:
            raise ConfigurationError(
                f"ring slot_bytes {slot_bytes} is too small to hold a "
                f"message header")
        self.name = segment_name(tag)
        self.slots = slots
        self.slot_bytes = slot_bytes
        self._free = ctx.Semaphore(slots)
        self._filled = ctx.Semaphore(0)
        self._write_lock = ctx.Lock()
        self._shm: Optional[shared_memory.SharedMemory] = \
            shared_memory.SharedMemory(name=self.name, create=True,
                                       size=slots * slot_bytes)
        self._owner = True
        self._wseq = 0
        self._rseq = 0
        self._closed = False

    # -- cross-process plumbing -----------------------------------------
    def __getstate__(self):
        if self._owner and self._shm is None:
            raise FusionError(f"ring {self.name} is closed")
        state = self.__dict__.copy()
        # the segment handle never crosses the process boundary; the
        # peer re-attaches by name (untracked) in attach()
        state["_shm"] = None
        state["_owner"] = False
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    def attach(self) -> "FrameRing":
        """Map the segment in an attaching (non-owner) process."""
        if self._shm is None:
            self._shm = attach_segment(self.name)
        return self

    # -- producing -------------------------------------------------------
    def put(self, meta: Dict[str, object],
            arrays: Sequence[np.ndarray] = (),
            should_stop: Optional[Callable[[], bool]] = None) -> bool:
        """Write one message; blocks while the ring is full.

        Returns False (without writing) when ``should_stop`` turns
        true while blocked — the cancellation path out of a full ring.
        Raises :class:`RingClosed` when the ring closes mid-wait.
        """
        if self._shm is None:
            raise RingClosed(f"ring {self.name} is not attached")
        descriptors = [(str(a.dtype), tuple(a.shape)) for a in arrays]
        meta_blob = pickle.dumps(
            {"meta": meta, "arrays": descriptors},
            protocol=pickle.HIGHEST_PROTOCOL)
        payload = [memoryview(np.ascontiguousarray(a)).cast("B")
                   for a in arrays]
        payload_len = sum(len(view) for view in payload)
        need = _HEADER.size + len(meta_blob) + payload_len
        if need > self.slot_bytes:
            raise ConfigurationError(
                f"message of {need} bytes exceeds the ring slot size "
                f"{self.slot_bytes}; raise ring_slot_bytes on the "
                f"sharded service to fit the stream's frame geometry")
        while not self._free.acquire(timeout=TICK_S):
            if self._closed:
                raise RingClosed(f"ring {self.name} closed during put")
            if should_stop is not None and should_stop():
                return False
        try:
            with self._write_lock:
                base = (self._wseq % self.slots) * self.slot_bytes
                buf = self._shm.buf
                _HEADER.pack_into(buf, base, self._wseq, len(meta_blob),
                                  payload_len)
                offset = base + _HEADER.size
                buf[offset:offset + len(meta_blob)] = meta_blob
                offset += len(meta_blob)
                for view in payload:
                    buf[offset:offset + len(view)] = view
                    offset += len(view)
                self._wseq += 1
        except BaseException:
            self._free.release()  # the slot never became a message
            raise
        self._filled.release()
        return True

    # -- consuming -------------------------------------------------------
    def get(self, should_stop: Optional[Callable[[], bool]] = None
            ) -> Optional[Tuple[Dict[str, object], List[np.ndarray]]]:
        """Read the next message; blocks while the ring is empty.

        Returns ``None`` when ``should_stop`` turns true while blocked.
        The returned arrays are fresh copies — the slot is released
        for reuse before this method returns.
        """
        if self._shm is None:
            raise RingClosed(f"ring {self.name} is not attached")
        while not self._filled.acquire(timeout=TICK_S):
            if self._closed:
                raise RingClosed(f"ring {self.name} closed during get")
            if should_stop is not None and should_stop():
                return None
        base = (self._rseq % self.slots) * self.slot_bytes
        buf = self._shm.buf
        generation, meta_len, payload_len = _HEADER.unpack_from(buf, base)
        if generation != self._rseq:
            raise FusionError(
                f"ring {self.name}: generation mismatch at slot "
                f"{self._rseq % self.slots} (slot stamped {generation}, "
                f"consumer expected {self._rseq}) — the slot lease "
                f"protocol was violated")
        offset = base + _HEADER.size
        wire = pickle.loads(bytes(buf[offset:offset + meta_len]))
        offset += meta_len
        arrays: List[np.ndarray] = []
        for dtype, shape in wire["arrays"]:
            nbytes = int(np.dtype(dtype).itemsize * int(np.prod(shape,
                                                                dtype=np.int64)))
            flat = np.frombuffer(buf, dtype=np.uint8, count=nbytes,
                                 offset=offset)
            arrays.append(flat.copy().view(dtype).reshape(shape))
            offset += nbytes
        self._rseq += 1
        self._free.release()
        return wire["meta"], arrays

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Release this process's mapping (and, in the owner, unlink
        the segment).  Idempotent; safe from atexit."""
        self._closed = True
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
        except (OSError, BufferError):  # pragma: no cover - teardown
            pass
        if self._owner:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "FrameRing":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class RingCleanup:
    """Process-wide atexit fallback: unlink rings the parent created.

    Normal shutdown unlinks in :meth:`ShardedFusionService.close`; this
    guard covers the paths that never get there (an exception between
    ring creation and service start, a ``kill``ed test runner) so the
    host is never left with orphaned ``/dev/shm`` segments.
    """

    def __init__(self):
        self._rings: List[FrameRing] = []
        self._registered = False

    def track(self, ring: FrameRing) -> FrameRing:
        if not self._registered:
            atexit.register(self.run)
            self._registered = True
        self._rings.append(ring)
        return ring

    def untrack(self, ring: FrameRing) -> None:
        try:
            self._rings.remove(ring)
        except ValueError:
            pass

    def run(self) -> None:
        rings, self._rings = self._rings, []
        for ring in rings:
            ring.close()


#: the module-level cleanup registrar every service instance uses
CLEANUP = RingCleanup()


def wait_until(predicate: Callable[[], bool], timeout_s: float,
               tick_s: float = TICK_S) -> bool:
    """Poll ``predicate`` until true or ``timeout_s`` elapses."""
    deadline = time.monotonic() + timeout_s
    while True:
        if predicate():
            return True
        if time.monotonic() >= deadline:
            return False
        time.sleep(tick_s)
