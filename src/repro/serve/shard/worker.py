"""The shard process: one full :class:`FusionService` behind two rings.

``shard_main`` is the ``Process`` target.  Inside the shard everything
is the battle-tested single-process service — capture threads, the
SLO/energy-fair scheduler, admission, the ledger — with exactly two
substitutions at the edges:

* **frames in**: streams read from :class:`_RingStreamSource` objects
  fed by a dispatcher thread draining the inbound
  :class:`~repro.serve.shard.ring.FrameRing` (the parent owns the real
  sources and pushes pairs as raw bytes);
* **engines**: the pool is a
  :class:`~repro.serve.shard.broker.BrokeredEnginePool`, so every
  lease is granted by the parent's broker and fleet accounting stays
  exact.

Results (when the parent wants them — ``keep_records`` or an
``on_result`` callback) leave through the outbound ring as pixels +
provenance, never pickled frame objects.  Per-stream retirement
reports, heartbeats and the final drain summary travel over the
control pipe; all shard->parent pipe traffic funnels through one
sender thread because ``Connection.send`` is not safe for concurrent
writers.

Determinism: the shard's service serializes per-stream compute and its
engines come from the same registry as a solo run's, so each stream's
output is bitwise-identical to its solo run — sharding relocates the
interpreter, not the arithmetic.
"""

from __future__ import annotations

import os
import queue
import threading
import time
import traceback
from typing import Callable, Dict, Iterator, Optional

from ...errors import ConfigurationError, FusionError
from ...session.report import FusedFrameResult
from ...session.sources import FrameGroup, FrameSource
from ..ops import SLORejection
from ..service import FusionService, _StreamState
from .broker import BrokeredEnginePool
from .ring import FrameRing, RingClosed

#: seconds between heartbeats on the control pipe
HEARTBEAT_S = 0.25

#: seconds between stop checks while blocked on a stream queue
TICK_S = 0.05


class _RingStreamSource(FrameSource):
    """A stream's frame source inside the shard: a bounded queue fed
    by the ring dispatcher.

    ``interrupt()`` makes the iterator end (cleanly, as if the source
    were exhausted) — the detach/cancel path out of a capture thread
    blocked waiting for frames the parent will never send.
    """

    def __init__(self, depth: int):
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=depth)
        self._interrupted = threading.Event()

    def push(self, pair: FrameGroup,
             should_stop: Callable[[], bool]) -> bool:
        """Dispatcher-side: enqueue one group (blocking, stop-aware)."""
        while True:
            if self._interrupted.is_set() or should_stop():
                return False
            try:
                self._queue.put(pair, timeout=TICK_S)
                return True
            except queue.Full:
                continue

    def finish(self) -> None:
        """Dispatcher-side: no more frames will arrive (END marker)."""
        self._interrupted.set()

    def interrupt(self) -> None:
        self._interrupted.set()

    def frames(self) -> Iterator[FrameGroup]:
        while True:
            try:
                item = self._queue.get(timeout=TICK_S)
            except queue.Empty:
                if self._interrupted.is_set():
                    return
                continue
            yield item


class _ShardService(FusionService):
    """The in-shard service; retirements are exported to the parent."""

    def __init__(self, *args, retired_sink: Callable[[Dict], None],
                 **kwargs):
        self._retired_sink = retired_sink
        super().__init__(*args, **kwargs)

    def _retire_locked(self, st: _StreamState, outcome: str) -> None:
        name = st.name
        super()._retire_locked(st, outcome)
        report = self._retired[name]
        records, report.records = report.records, []
        payload = {
            "name": name,
            "outcome": outcome,
            "report": report,
            "scheduler": dict(self._retired_scheduler[name]),
            "ledger": dict(self._retired_ledger[name]),
            "violations": list(self._violations.get(name, ())),
            "error": self._errors.get(name),
        }
        report.records = records
        # never send under the service condition: hand to the sender
        self._retired_sink(payload)


def _result_writer(out_ring: FrameRing, stream: str,
                   stopped: threading.Event):
    """on_result callback shipping each fused frame over the ring."""

    def send(result: FusedFrameResult) -> None:
        frame = result.frame
        meta = {
            "kind": "result",
            "stream": stream,
            "index": result.index,
            "engine": result.engine,
            "action": result.action,
            "model_seconds": result.model_seconds,
            "model_millijoules": result.model_millijoules,
            "timestamp_s": result.timestamp_s,
            "applied_shift": result.applied_shift,
            "quality": dict(result.quality),
            "frame": {
                "timestamp_s": frame.timestamp_s,
                "frame_id": frame.frame_id,
                "source": frame.source,
                "metadata": dict(frame.metadata),
            },
        }
        out_ring.put(meta, [result.pixels, *result.sources],
                     should_stop=stopped.is_set)
    return send


def shard_main(shard_id: int, control, in_ring: FrameRing,
               out_ring: FrameRing, pool_conn,
               inventory: Dict[str, int],
               options: Dict[str, object]) -> None:
    """Run one shard until the parent drains or cancels it."""
    stopped = threading.Event()
    sends: "queue.Queue[tuple]" = queue.Queue()

    def sender() -> None:
        while True:
            message = sends.get()
            if message is None:
                return
            try:
                control.send(message)
            except (BrokenPipeError, OSError):
                return  # parent gone; nothing left to tell

    send_thread = threading.Thread(target=sender, name="shard-sender",
                                   daemon=True)
    send_thread.start()

    def heartbeat() -> None:
        while not stopped.wait(HEARTBEAT_S):
            sends.put(("heartbeat", {"pid": os.getpid(),
                                     "monotonic_s": time.monotonic()}))

    heart_thread = threading.Thread(target=heartbeat,
                                    name="shard-heartbeat", daemon=True)

    sources: Dict[str, _RingStreamSource] = {}
    sources_lock = threading.Lock()

    def dispatch() -> None:
        """Drain the inbound ring into the per-stream sources."""
        while True:
            try:
                message = in_ring.get(should_stop=stopped.is_set)
            except (RingClosed, FusionError):
                return
            if message is None:
                return
            meta, arrays = message
            with sources_lock:
                source = sources.get(meta["stream"])
            if source is None:
                continue  # stream already gone (detach raced the feed)
            if meta["kind"] == "end":
                source.finish()
                continue
            source.push(
                FrameGroup(frames=tuple(arrays),
                           timestamp_s=meta["timestamp_s"],
                           index=meta["index"]),
                should_stop=stopped.is_set)

    dispatch_thread = threading.Thread(target=dispatch,
                                       name="shard-dispatch", daemon=True)

    try:
        in_ring.attach()
        out_ring.attach()
        pool = BrokeredEnginePool(pool_conn, inventory)
        service = _ShardService(
            pool=pool,
            max_in_flight=options["max_in_flight"],
            stream_queue_depth=options["stream_queue_depth"],
            workers=options.get("workers"),
            live=True,
            shedding=options.get("shedding"),
            slo_headroom=options.get("slo_headroom", 1.0),
            event_capacity=options.get("event_capacity", 4096),
            retired_sink=lambda payload: sends.put(("retired", payload)),
        )
        service.start()
        dispatch_thread.start()
        heart_thread.start()
        sends.put(("hello", {"pid": os.getpid()}))

        detachers = []
        while True:
            try:
                message = control.recv()
            except (EOFError, OSError):
                # parent died: tear down, never hang as an orphan
                service.cancel()
                break
            op = message[0]
            if op == "attach":
                spec = message[1]
                name = spec["name"]
                source = _RingStreamSource(
                    depth=options["stream_queue_depth"])
                with sources_lock:
                    sources[name] = source
                on_result = None
                if spec["want_results"]:
                    on_result = _result_writer(out_ring, name, stopped)
                try:
                    service.attach(
                        name, config=spec["config"], source=source,
                        frames=spec["frames"],
                        priority=spec["priority"],
                        batch_frames=spec["batch_frames"],
                        on_result=on_result, slo=spec["slo"])
                except (SLORejection, ConfigurationError,
                        FusionError) as exc:
                    with sources_lock:
                        sources.pop(name, None)
                    sends.put(("attach_error", name,
                               type(exc).__name__, str(exc)))
                else:
                    sends.put(("attached", name))
            elif op == "detach":
                name = message[1]
                with sources_lock:
                    source = sources.get(name)
                if source is not None:
                    source.interrupt()
                # detach blocks until the stream retires; keep the
                # control loop responsive by running it off-thread
                # (the retirement itself flows through retired_sink)
                worker = threading.Thread(
                    target=_quiet_detach, args=(service, name),
                    name=f"shard-detach-{name}", daemon=True)
                worker.start()
                detachers.append(worker)
            elif op == "reap":
                # the parent holds every retired payload already; drop
                # the shard-side copies so churned streams leave no
                # per-stream residue in the shard process
                service.reap()
            elif op == "cancel":
                with sources_lock:
                    for source in sources.values():
                        source.interrupt()
                service.cancel()
                break
            elif op == "drain":
                break
            else:
                raise FusionError(f"unknown shard control op {op!r}")

        for worker in detachers:
            worker.join(timeout=FusionService.JOIN_TIMEOUT_S)
        report = service.wait()
        sends.put(("drained", {
            "wall_seconds": report.wall_seconds,
            "admission": report.admission,
            "ledger": report.ledger,
            "pool": report.pool,
            "scheduler": report.scheduler,
            "slo": report.slo,
            "shedding": report.shedding,
            "metrics": report.metrics,
            "events": report.events,
            "errors": report.errors,
            "cancelled": report.cancelled,
        }))
    except BaseException:  # noqa: BLE001 - report, then die visibly
        sends.put(("fatal", traceback.format_exc()))
    finally:
        stopped.set()
        sends.put(None)
        send_thread.join(timeout=FusionService.JOIN_TIMEOUT_S)
        in_ring.close()
        out_ring.close()


def _quiet_detach(service: FusionService, name: str) -> None:
    try:
        service.detach(name)
    except (ConfigurationError, FusionError):
        pass  # already retired (or the drive ended first)
