"""Deterministic stream -> shard partitioning.

The sharded tier's contract starts here: which shard serves a stream
must be a pure function of the stream set and the shard count — never
of timing, hashing salts or attach interleaving — so a fixed seed and
any shard count reproduce the same placement, and the parity suite can
compare a sharded drive against solo runs without chasing placement
noise.  :func:`partition_streams` is that function; its three
properties (deterministic, total, balanced to ``max - min <= 1``) are
asserted by a hypothesis property test over random stream sets.

Live churn cannot use a closed-form partition (the stream set mutates
while serving), so :class:`ShardAssigner` extends the same idea
incrementally: each attach goes to the shard with the fewest live
streams, ties broken by lowest shard index.  Given the same
attach/detach sequence the assignment is identical — determinism over
the *history* instead of the set.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ...errors import ConfigurationError


def partition_streams(names: Iterable[str], shards: int) -> Dict[str, int]:
    """Assign every stream name a shard index in ``[0, shards)``.

    Deterministic (depends only on the name set and ``shards``), total
    (every name appears exactly once) and balanced (shard populations
    differ by at most one): names are sorted, then dealt round-robin.
    Duplicate names are a caller bug and rejected loudly.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    ordered: List[str] = sorted(names)
    for left, right in zip(ordered, ordered[1:]):
        if left == right:
            raise ConfigurationError(
                f"duplicate stream name {left!r} in partition input")
    return {name: index % shards for index, name in enumerate(ordered)}


class ShardAssigner:
    """Incremental least-loaded assignment for live attach/detach.

    Deterministic for a given attach/detach history: the next stream
    always lands on the shard currently serving the fewest streams,
    lowest shard index on ties.  A full pre-start stream set assigned
    through :meth:`assign` one name at a time (sorted) produces the
    same balanced shape :func:`partition_streams` would.
    """

    def __init__(self, shards: int):
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self._live: List[int] = [0] * shards
        self._where: Dict[str, int] = {}

    def assign(self, name: str) -> int:
        if name in self._where:
            raise ConfigurationError(
                f"stream {name!r} is already assigned to shard "
                f"{self._where[name]}")
        shard = min(range(self.shards), key=lambda i: (self._live[i], i))
        self._live[shard] += 1
        self._where[name] = shard
        return shard

    def release(self, name: str) -> int:
        """Forget a retired stream; returns the shard it lived on."""
        shard = self._where.pop(name)
        self._live[shard] -= 1
        return shard

    def shard_of(self, name: str) -> int:
        return self._where[name]

    def live_counts(self) -> List[int]:
        return list(self._live)


__all__ = ["ShardAssigner", "partition_streams"]
