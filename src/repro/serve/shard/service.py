"""`ShardedFusionService`: the process-backed sharding tier.

One interpreter caps aggregate FPS no matter how many worker threads
the single-process :class:`~repro.serve.FusionService` runs — the GIL
serializes the Python half of every stage.  This tier escapes it by
partitioning streams across N *shard processes*, each running a full
``FusionService`` of its own, while keeping the three things that must
stay global in the parent:

* **sources and results** — the parent owns every stream's
  :class:`~repro.session.FrameSource` and feeds pixel data through
  per-shard shared-memory rings (:mod:`~repro.serve.shard.ring`), so
  frames are memcpy'd, never pickled;
* **the engine inventory** — one parent
  :class:`~repro.serve.EnginePool` behind a lease broker
  (:mod:`~repro.serve.shard.broker`), so ``granted == released +
  outstanding`` holds fleet-wide at every instant;
* **the report** — per-stream retirements, admission/ledger/metrics
  snapshots and events merge into one
  :class:`~repro.serve.ServiceReport` with the same shape a
  single-process drive produces.

Determinism contract (inherited, not re-proven): each shard serializes
per-stream compute and leases registry-built engines, so **fixed seed
x any shard count x any worker count ⇒ each stream bitwise-identical
to its solo run**.  Sharding moves interpreters, never arithmetic.

Failure semantics: shards heartbeat over their control pipes; a dead
shard (detected by pipe EOF, a stale heartbeat, or process exit) has
its leases reclaimed by the broker (``lease_reclaim`` event), its
unretired streams reported as errored — never hung — and the drive
completes on the survivors.  The parent owns every shared-memory
segment and unlinks them all at close (plus an :mod:`atexit`
fallback), so even a SIGKILLed shard leaks nothing.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Union

from ...errors import ConfigurationError, FusionError
from ...session.config import FusionConfig
from ...session.report import FusedFrameResult, FusionReport
from ...session.sources import FrameSource, as_frame_source
from ...video.frames import VideoFrame
from ..ops import (EventLog, MetricsRegistry, ShedPolicy, SLORejection,
                   StreamSLO, merge_snapshots, render_snapshot)
from ..pool import EnginePool
from ..report import ServiceReport
from ..service import _LEDGER_KEYS
from .broker import LeaseBroker
from .partition import ShardAssigner, partition_streams
from .ring import CLEANUP, FrameRing
from .worker import HEARTBEAT_S, shard_main

#: ring geometry defaults: 8 slots x 2 MiB holds a 352x288 float64
#: pair (the synthetic default) with headroom; raise ring_slot_bytes
#: for larger frame geometries or wider frame groups (an N-way stream
#: ships N source frames plus the fused result per slot)
DEFAULT_RING_SLOTS = 8
DEFAULT_RING_SLOT_BYTES = 2 * 1024 * 1024

#: exception classes a shard may report back from attach
_ATTACH_ERRORS = {
    "SLORejection": SLORejection,
    "ConfigurationError": ConfigurationError,
    "FusionError": FusionError,
}


class _ShardHandle:
    """Parent-side state of one shard process."""

    def __init__(self, index: int):
        self.index = index
        self.process: Optional[mp.process.BaseProcess] = None
        self.control = None          # parent end of the control pipe
        self.in_ring: Optional[FrameRing] = None
        self.out_ring: Optional[FrameRing] = None
        self.hello = threading.Event()
        self.drained = threading.Event()
        self.final: Optional[Dict[str, object]] = None
        self.fatal: Optional[str] = None
        self.dead = False
        self.death_reason: Optional[str] = None
        self.last_seen = time.monotonic()
        self.pid: Optional[int] = None

    def send(self, message) -> bool:
        try:
            self.control.send(message)
            return True
        except (BrokenPipeError, OSError):
            return False


class _StreamEntry:
    """Parent-side state of one stream (the shard runs the session)."""

    def __init__(self, name: str, config: FusionConfig,
                 source: FrameSource, frames: Optional[int],
                 priority: float, batch_frames: Optional[int],
                 on_result: Optional[Callable[[FusedFrameResult], None]],
                 slo: Optional[StreamSLO]):
        self.name = name
        self.config = config
        self.keep_records = config.keep_records
        self.source = source
        self.frames = frames
        self.priority = priority
        self.batch_frames = batch_frames
        self.on_result = on_result
        self.slo = slo
        self.want_results = self.keep_records or on_result is not None
        self.shard: Optional[int] = None
        self.stop = threading.Event()
        self.feeder: Optional[threading.Thread] = None
        self.records: List[FusedFrameResult] = []
        self.result_count = 0
        self.retired = threading.Event()
        self.payload: Optional[Dict[str, object]] = None

    def ship_config(self) -> FusionConfig:
        """The config the shard builds its session from: records are
        reconstructed parent-side from the results ring, so the shard
        never accumulates them."""
        if self.keep_records:
            return self.config.with_overrides(keep_records=False)
        return self.config


class ShardedFusionService:
    """Serve streams across N shard processes over one engine pool.

    Mirrors the :class:`~repro.serve.FusionService` surface —
    ``add_stream``/``attach``/``detach``/``reap``, ``start``/``wait``/
    ``serve``/``cancel``/``close``, ``ledger``/``metrics_text``, the
    context manager — with identical per-stream semantics.  Admission
    bounds (``max_in_flight``, ``stream_queue_depth``) and the worker
    count apply *per shard*; the merged report's admission block sums
    the per-shard caps into the global budget it actually enforced.

    ``pool`` must be an inventory spec (``{"fpga": 2, ...}`` or a name
    sequence), not a live :class:`EnginePool` — the parent builds the
    authoritative pool so it can broker it across processes.
    """

    TICK_S = 0.05
    JOIN_TIMEOUT_S = 10.0
    #: seconds without any control-pipe message before a shard with a
    #: live process is declared dead anyway
    HEARTBEAT_TIMEOUT_S = 30.0
    #: seconds to wait for a shard to come up
    START_TIMEOUT_S = 120.0

    def __init__(self, pool: Union[Dict[str, int], Sequence[str]],
                 shards: int = 2, max_in_flight: int = 8,
                 stream_queue_depth: int = 4,
                 workers: Optional[int] = None, live: bool = False,
                 shedding: Optional[ShedPolicy] = None,
                 slo_headroom: float = 1.0,
                 metrics: Optional[MetricsRegistry] = None,
                 events: Optional[EventLog] = None,
                 event_capacity: int = 4096,
                 start_method: Optional[str] = None,
                 ring_slots: int = DEFAULT_RING_SLOTS,
                 ring_slot_bytes: int = DEFAULT_RING_SLOT_BYTES):
        if isinstance(pool, EnginePool):
            raise ConfigurationError(
                "ShardedFusionService needs the pool *spec* (e.g. "
                "{'fpga': 2}), not a live EnginePool — the parent "
                "builds the pool so it can broker it across processes")
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        self.pool = EnginePool(pool)
        self.shards = shards
        self.live = live
        self._options = {
            "max_in_flight": max_in_flight,
            "stream_queue_depth": stream_queue_depth,
            "workers": workers,
            "shedding": shedding,
            "slo_headroom": slo_headroom,
            "event_capacity": event_capacity,
        }
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events if events is not None \
            else EventLog(capacity=event_capacity)
        if start_method is None:
            start_method = ("fork" if "fork" in mp.get_all_start_methods()
                            else "spawn")
        self._ctx = mp.get_context(start_method)
        self._ring_slots = ring_slots
        self._ring_slot_bytes = ring_slot_bytes
        self._lock = threading.Lock()
        self._entries: Dict[str, _StreamEntry] = {}
        self._reaped_from: Dict[str, int] = {}  # name -> shard (history)
        self._assigner = ShardAssigner(shards)
        self._handles: List[_ShardHandle] = []
        self._threads: List[threading.Thread] = []
        self._pending_acks: Dict[str, Dict[str, object]] = {}
        self._totals: Dict[str, int] = {k: 0 for k in _LEDGER_KEYS}
        self._errors: Dict[str, str] = {}
        self._broker: Optional[LeaseBroker] = None
        self._started = False
        self._finished = False
        self._draining = False
        self._cancelled = False
        self._closing = threading.Event()
        self._t0 = 0.0
        self._t1 = 0.0
        self._report: Optional[ServiceReport] = None
        self._g_fps = self.metrics.gauge(
            "repro_serve_aggregate_fps",
            "Aggregate finalized frames per wall second (end of drive)")
        self._g_occupancy = self.metrics.gauge(
            "repro_serve_engine_occupancy_ratio",
            "Per-instance busy fraction of the drive wall interval")
        self._g_stream_energy = self.metrics.gauge(
            "repro_serve_stream_energy_millijoules",
            "Modelled energy by stream (end of drive)")
        self._g_shards = self.metrics.gauge(
            "repro_serve_live_shards", "Shard processes currently up")
        self._c_reclaims = self.metrics.counter(
            "repro_serve_lease_reclaims_total",
            "Engine leases reclaimed from dead shards")

    # -- registration / churn ---------------------------------------------
    def add_stream(self, name: str, config: Optional[FusionConfig] = None,
                   source: Optional[FrameSource] = None,
                   frames: Optional[int] = None, priority: float = 1.0,
                   batch_frames: Optional[int] = None,
                   on_result: Optional[Callable] = None,
                   slo: Optional[StreamSLO] = None,
                   **config_overrides) -> _StreamEntry:
        if self._started and not self.live:
            raise ConfigurationError(
                "cannot add streams to a service that already started; "
                "construct with live=True for runtime attach")
        return self.attach(name, config=config, source=source,
                           frames=frames, priority=priority,
                           batch_frames=batch_frames, on_result=on_result,
                           slo=slo, **config_overrides)

    def attach(self, name: str, config: Optional[FusionConfig] = None,
               source: Optional[FrameSource] = None,
               frames: Optional[int] = None, priority: float = 1.0,
               batch_frames: Optional[int] = None,
               on_result: Optional[Callable] = None,
               slo: Optional[StreamSLO] = None,
               **config_overrides) -> _StreamEntry:
        """Admit one stream (pre-start registration or live attach).

        Pre-start, validation that needs a running shard — SLO
        feasibility, engine availability — surfaces at :meth:`start`;
        on a live service this blocks until the stream's shard
        acknowledged the attach (re-raising its rejection here)."""
        if self._finished:
            raise FusionError(
                "service is closed; create a new ShardedFusionService")
        if self._draining:
            raise FusionError(
                "service is draining; no further streams may attach")
        if self._started and not self.live:
            raise ConfigurationError(
                "cannot attach to a fixed-workload drive that already "
                "started; construct with live=True for runtime churn")
        if config is None:
            config = FusionConfig(**config_overrides)
        elif config_overrides:
            config = config.with_overrides(**config_overrides)
        if source is None:
            raise ConfigurationError(
                f"stream {name!r} needs a frame source")
        entry = _StreamEntry(name, config, as_frame_source(source),
                             frames, priority, batch_frames, on_result,
                             slo)
        with self._lock:
            if name in self._entries:
                raise ConfigurationError(f"duplicate stream name {name!r}")
            self._entries[name] = entry
            if self._started:
                entry.shard = self._assigner.assign(name)
        if self._started:
            try:
                self._attach_on_shard(entry)
            except BaseException:
                with self._lock:
                    self._entries.pop(name, None)
                    self._assigner.release(name)
                raise
        return entry

    def _attach_on_shard(self, entry: _StreamEntry) -> None:
        handle = self._handles[entry.shard]
        if handle.dead:
            raise FusionError(
                f"shard {entry.shard} is down ({handle.death_reason}); "
                f"stream {entry.name!r} cannot attach")
        ack = {"event": threading.Event(), "error": None}
        with self._lock:
            self._pending_acks[entry.name] = ack
        message = ("attach", {
            "name": entry.name,
            "config": entry.ship_config(),
            "frames": entry.frames,
            "priority": entry.priority,
            "batch_frames": entry.batch_frames,
            "slo": entry.slo,
            "want_results": entry.want_results,
        })
        if not handle.send(message):
            self._on_shard_death(handle, "control pipe broken")
            raise FusionError(
                f"shard {entry.shard} died before stream "
                f"{entry.name!r} could attach")
        while not ack["event"].wait(timeout=self.TICK_S):
            if handle.dead:
                raise FusionError(
                    f"shard {entry.shard} died while stream "
                    f"{entry.name!r} was attaching")
        error = ack["error"]
        if error is not None:
            cls_name, text = error
            raise _ATTACH_ERRORS.get(cls_name, FusionError)(text)
        self._start_feeder(entry)

    def _start_feeder(self, entry: _StreamEntry) -> None:
        entry.feeder = threading.Thread(
            target=self._feed, args=(entry,),
            name=f"shard-feed-{entry.name}", daemon=True)
        entry.feeder.start()

    def _feed(self, entry: _StreamEntry) -> None:
        """Pump one stream's source into its shard's inbound ring."""
        ring = self._handles[entry.shard].in_ring
        stop = entry.stop

        def stopping() -> bool:
            return stop.is_set() or self._closing.is_set()

        sent = 0
        try:
            iterator = iter(entry.source)
            while entry.frames is None or sent < entry.frames:
                if stopping():
                    return
                try:
                    pair = next(iterator)
                except StopIteration:
                    break
                delivered = ring.put(
                    {"kind": "frame", "stream": entry.name,
                     "index": pair.index,
                     "timestamp_s": pair.timestamp_s},
                    list(pair.frames), should_stop=stopping)
                if not delivered:
                    return
                sent += 1
        except BaseException as exc:  # noqa: BLE001 - crosses threads
            # a failing parent-side source: the stream's shard sees a
            # clean end-of-stream; the failure is reported parent-side
            with self._lock:
                self._errors.setdefault(
                    entry.name, f"{type(exc).__name__}: {exc}")
            self.events.emit("error", entry.name, where="feed",
                             error=f"{type(exc).__name__}: {exc}")
        finally:
            try:
                ring.put({"kind": "end", "stream": entry.name}, [],
                         should_stop=stopping)
            except FusionError:
                pass
            entry.source.close()

    def detach(self, name: str,
               timeout: Optional[float] = None) -> FusionReport:
        """Retire one stream from a running live service (blocking)."""
        deadline = (time.monotonic() + timeout) if timeout is not None \
            else None
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise ConfigurationError(
                f"no stream named {name!r} is attached")
        if entry.payload is None:
            if self._started and not self.live:
                raise ConfigurationError(
                    "detach requires a live service (live=True); a "
                    "fixed-workload drive runs its streams to "
                    "completion")
            if not self._started:
                self._settle_unstarted(entry)
            else:
                entry.stop.set()
                handle = self._handles[entry.shard]
                if not handle.send(("detach", name)) \
                        and not handle.dead:
                    self._on_shard_death(handle, "control pipe broken")
        while not entry.retired.wait(timeout=self.TICK_S):
            if deadline is not None and time.monotonic() > deadline:
                raise FusionError(
                    f"stream {name!r} did not retire within "
                    f"{timeout:g}s")
        return self._finish_entry(entry, deadline)

    def _settle_unstarted(self, entry: _StreamEntry) -> None:
        """Retire a stream from a never-started service: empty report."""
        entry.source.close()
        self._record_retirement(entry, {
            "name": entry.name, "outcome": "detached",
            "report": FusionReport(),
            "scheduler": {}, "ledger": {k: 0 for k in _LEDGER_KEYS},
            "violations": [], "error": None,
        })

    def _finish_entry(self, entry: _StreamEntry,
                      deadline: Optional[float]) -> FusionReport:
        """Wait for the stream's ring results to drain, then hand the
        report (records reattached) to the caller."""
        report: FusionReport = entry.payload["report"]
        if entry.want_results and entry.payload["error"] is None \
                and not self._handles_dead(entry):
            while entry.result_count < report.frames:
                if self._closing.is_set():
                    # teardown already drained the rings; whatever was
                    # collected is all there will ever be
                    break
                if deadline is not None \
                        and time.monotonic() > deadline:
                    raise FusionError(
                        f"stream {entry.name!r}: results did not drain "
                        f"in time ({entry.result_count} of "
                        f"{report.frames})")
                time.sleep(self.TICK_S / 5)
        if entry.keep_records:
            report.records = list(entry.records)
        return report

    def _handles_dead(self, entry: _StreamEntry) -> bool:
        return (entry.shard is not None and self._handles
                and self._handles[entry.shard].dead)

    def reap(self) -> Dict[str, FusionReport]:
        """Collect and forget retired streams' reports (totals survive)."""
        out: Dict[str, FusionReport] = {}
        with self._lock:
            done = [entry for entry in self._entries.values()
                    if entry.payload is not None]
            for entry in done:
                del self._entries[entry.name]
                self._reaped_from[entry.name] = entry.shard
        for entry in done:
            out[entry.name] = self._finish_entry(entry, deadline=None)
        if out and self._started and not self._finished:
            # mirror the forget shard-side so churned streams leave no
            # residue in the shard processes either
            for handle in self._handles:
                if not handle.dead:
                    handle.send(("reap",))
        return out

    def stream_names(self) -> List[str]:
        with self._lock:
            return [name for name, entry in self._entries.items()
                    if entry.payload is None]

    # -- shard lifecycle --------------------------------------------------
    def start(self) -> "ShardedFusionService":
        if self._finished:
            raise FusionError(
                "service is closed; ShardedFusionService instances "
                "drive exactly one serve() — create a new service")
        if self._started:
            raise FusionError("service already started")
        with self._lock:
            pre = [e for e in self._entries.values()
                   if e.shard is None and e.payload is None]
        if not pre and not self.live:
            raise ConfigurationError(
                "service has no streams; add_stream() first (or "
                "construct with live=True to attach at runtime)")
        inventory = {name: self.pool.count(name)
                     for name in self.pool.names()}
        placement = partition_streams([e.name for e in pre], self.shards)
        # seed the live assigner with the closed-form partition so
        # later live attaches balance against the pre-start load
        for name in sorted(placement):
            shard = self._assigner.assign(name)
            assert shard == placement[name]
        for entry in pre:
            entry.shard = placement[entry.name]

        pool_child_ends = []
        control_child_ends = []
        try:
            for index in range(self.shards):
                handle = _ShardHandle(index)
                handle.control, control_child = self._ctx.Pipe(duplex=True)
                pool_parent, pool_child = self._ctx.Pipe(duplex=True)
                handle.pool_parent = pool_parent
                pool_child_ends.append(pool_child)
                control_child_ends.append(control_child)
                handle.in_ring = CLEANUP.track(FrameRing(
                    self._ctx, f"in-{index}", self._ring_slots,
                    self._ring_slot_bytes))
                handle.out_ring = CLEANUP.track(FrameRing(
                    self._ctx, f"out-{index}", self._ring_slots,
                    self._ring_slot_bytes))
                handle.process = self._ctx.Process(
                    target=shard_main,
                    args=(index, control_child, handle.in_ring,
                          handle.out_ring, pool_child, inventory,
                          self._options),
                    name=f"repro-shard-{index}", daemon=True)
                self._handles.append(handle)
            # spawn all children before any parent service thread
            # exists: forking a multithreaded parent risks cloning a
            # held lock into the child
            for handle in self._handles:
                handle.process.start()
            for conn in control_child_ends + pool_child_ends:
                conn.close()
            self._broker = LeaseBroker(
                self.pool,
                [handle.pool_parent for handle in self._handles]).start()
            for handle in self._handles:
                receiver = threading.Thread(
                    target=self._receive, args=(handle,),
                    name=f"shard-recv-{handle.index}", daemon=True)
                collector = threading.Thread(
                    target=self._collect, args=(handle,),
                    name=f"shard-collect-{handle.index}", daemon=True)
                self._threads += [receiver, collector]
                receiver.start()
                collector.start()
            monitor = threading.Thread(target=self._monitor,
                                       name="shard-monitor", daemon=True)
            self._threads.append(monitor)
            monitor.start()
            deadline = time.monotonic() + self.START_TIMEOUT_S
            for handle in self._handles:
                while not handle.hello.wait(timeout=self.TICK_S):
                    if handle.dead or time.monotonic() > deadline:
                        raise FusionError(
                            f"shard {handle.index} failed to start"
                            + (f": {handle.fatal}" if handle.fatal
                               else ""))
                self.events.emit("shard_start", shard=handle.index,
                                 pid=handle.pid)
            self._g_shards.set(self.shards)
            self._started = True
            self._t0 = time.perf_counter()
            for entry in pre:
                self._attach_on_shard(entry)
        except BaseException:
            self._closing.set()
            self._teardown()
            self._finished = True
            raise
        self.events.emit("service", phase="start", live=self.live,
                         shards=self.shards,
                         workers=self._options["workers"] or 0)
        return self

    # -- parent-side shard I/O threads ------------------------------------
    def _receive(self, handle: _ShardHandle) -> None:
        """Demultiplex one shard's control pipe."""
        while True:
            try:
                message = handle.control.recv()
            except (EOFError, OSError):
                if not handle.drained.is_set() \
                        and not self._closing.is_set():
                    self._on_shard_death(handle, "control pipe closed")
                return
            except Exception:
                if self._closing.is_set():
                    return  # teardown closed the pipe mid-recv
                raise
            handle.last_seen = time.monotonic()
            kind = message[0]
            if kind == "hello":
                handle.pid = message[1]["pid"]
                handle.hello.set()
            elif kind == "heartbeat":
                pass  # last_seen already refreshed
            elif kind == "attached":
                self._resolve_ack(message[1], None)
            elif kind == "attach_error":
                self._resolve_ack(message[1], (message[2], message[3]))
            elif kind == "retired":
                payload = message[1]
                with self._lock:
                    entry = self._entries.get(payload["name"])
                if entry is not None:
                    self._record_retirement(entry, payload)
            elif kind == "drained":
                handle.final = message[1]
                handle.drained.set()
            elif kind == "fatal":
                handle.fatal = message[1]
                self._on_shard_death(handle, "shard reported a fatal "
                                             "error")

    def _resolve_ack(self, name: str, error) -> None:
        with self._lock:
            ack = self._pending_acks.pop(name, None)
        if ack is not None:
            ack["error"] = error
            ack["event"].set()

    def _record_retirement(self, entry: _StreamEntry,
                           payload: Dict[str, object]) -> None:
        entry.stop.set()
        with self._lock:
            entry.payload = payload
            for key in _LEDGER_KEYS:
                self._totals[key] += payload["ledger"][key]
            if payload["error"] is not None:
                self._errors[entry.name] = payload["error"]
            if entry.shard is not None:
                try:
                    self._assigner.release(entry.name)
                except KeyError:
                    pass
        entry.retired.set()

    def _collect(self, handle: _ShardHandle) -> None:
        """Drain one shard's results ring back into parent objects."""
        ring = handle.out_ring
        while True:
            try:
                message = ring.get(
                    should_stop=lambda: self._closing.is_set())
            except FusionError:
                return  # ring closed or a dead shard tore a slot
            if message is None:
                return
            meta, arrays = message
            with self._lock:
                entry = self._entries.get(meta["stream"])
            if entry is None:
                continue  # reaped before its last results landed
            frame_meta = meta["frame"]
            result = FusedFrameResult(
                frame=VideoFrame(
                    pixels=arrays[0],
                    timestamp_s=frame_meta["timestamp_s"],
                    frame_id=frame_meta["frame_id"],
                    source=frame_meta["source"],
                    metadata=dict(frame_meta["metadata"])),
                visible=arrays[1], thermal=arrays[2],
                extra_sources=tuple(arrays[3:]),
                engine=meta["engine"], action=meta["action"],
                model_seconds=meta["model_seconds"],
                model_millijoules=meta["model_millijoules"],
                index=meta["index"], timestamp_s=meta["timestamp_s"],
                applied_shift=meta["applied_shift"],
                quality=dict(meta["quality"]))
            if entry.keep_records:
                entry.records.append(result)
            if entry.on_result is not None:
                try:
                    entry.on_result(result)
                except BaseException as exc:  # noqa: BLE001
                    with self._lock:
                        self._errors.setdefault(
                            entry.name,
                            f"on_result: {type(exc).__name__}: {exc}")
            entry.result_count += 1

    def _monitor(self) -> None:
        """Watch shard liveness: process exit and heartbeat staleness."""
        while not self._closing.wait(timeout=HEARTBEAT_S):
            for handle in self._handles:
                if handle.dead or handle.drained.is_set():
                    continue
                if handle.process is not None \
                        and handle.process.exitcode is not None:
                    self._on_shard_death(
                        handle,
                        f"process exited with code "
                        f"{handle.process.exitcode}")
                elif handle.hello.is_set() and \
                        time.monotonic() - handle.last_seen \
                        > self.HEARTBEAT_TIMEOUT_S:
                    self._on_shard_death(handle, "heartbeat timed out")

    def _on_shard_death(self, handle: _ShardHandle, reason: str) -> None:
        """Contain one shard's death: reclaim leases, fail its
        streams, keep the survivors running.  Idempotent."""
        with self._lock:
            if handle.dead:
                return
            handle.dead = True
            handle.death_reason = reason
            orphans = [entry for entry in self._entries.values()
                       if entry.shard == handle.index
                       and entry.payload is None]
        labels = self._broker.reclaim(handle.index) if self._broker \
            else []
        if labels:
            self._c_reclaims.inc(len(labels))
            self.events.emit("lease_reclaim", shard=handle.index,
                             labels=labels, count=len(labels))
        self.events.emit("shard_exit", shard=handle.index, crashed=True,
                         reason=reason)
        self._g_shards.dec()
        error = f"shard {handle.index} died: {reason}"
        with self._lock:
            self._errors[f"shard[{handle.index}]"] = reason
        for entry in orphans:
            self.events.emit("error", entry.name, where="shard",
                             error=error)
            self._record_retirement(entry, {
                "name": entry.name, "outcome": "errored",
                "report": FusionReport(),
                "scheduler": {"outcome": "errored"},
                "ledger": {k: 0 for k in _LEDGER_KEYS},
                "violations": [], "error": error,
            })
        handle.drained.set()  # wait() must not block on the dead

    # -- lifecycle --------------------------------------------------------
    def cancel(self) -> None:
        self._cancelled = True
        self.events.emit("service", phase="cancel")
        for handle in self._handles:
            if not handle.dead:
                handle.send(("cancel",))
        with self._lock:
            entries = list(self._entries.values())
        for entry in entries:
            entry.stop.set()

    def wait(self) -> ServiceReport:
        """Drain every shard, join everything, merge the report."""
        if not self._started:
            raise ConfigurationError("service was never started")
        if self._report is not None:
            return self._report
        if not self._draining:
            self._draining = True
            self.events.emit("service", phase="drain")
            for handle in self._handles:
                if not handle.dead and not handle.send(("drain",)):
                    self._on_shard_death(handle, "control pipe broken")
        for handle in self._handles:
            while not handle.drained.wait(timeout=self.TICK_S):
                pass
        self._t1 = time.perf_counter()
        with self._lock:
            entries = list(self._entries.values())
        for entry in entries:
            entry.stop.set()
        for entry in entries:
            if entry.feeder is not None:
                entry.feeder.join(timeout=self.JOIN_TIMEOUT_S)
        for handle in self._handles:
            if not handle.dead:
                self.events.emit("shard_exit", shard=handle.index,
                                 crashed=False)
                self._g_shards.dec()
        self._teardown()
        self._finished = True
        self._report = self._build_report()
        self.events.emit("service", phase="finish",
                         cancelled=self._cancelled)
        return self._report

    def serve(self) -> ServiceReport:
        return self.start().wait()

    def close(self) -> None:
        """Cancel, join and release everything (idempotent)."""
        if self._started and not self._finished:
            self.cancel()
            try:
                self.wait()
            except BaseException:  # noqa: BLE001 - close() must not raise
                pass
        elif not self._started and not self._finished:
            self._finished = True
            with self._lock:
                entries = list(self._entries.values())
            for entry in entries:
                entry.source.close()
            self.pool.close()
            self.events.emit("service", phase="close")

    def _teardown(self) -> None:
        """Join shard processes (escalating to kill), stop parent
        threads, unlink every shared-memory segment."""
        self._closing.set()
        # close the parent pipe ends first: a shard still blocked in
        # recv sees EOF and exits instead of riding out a join timeout
        for handle in self._handles:
            for conn in (handle.control,
                         getattr(handle, "pool_parent", None)):
                if conn is not None:
                    try:
                        conn.close()
                    except OSError:  # pragma: no cover - already closed
                        pass
        for handle in self._handles:
            process = handle.process
            if process is None:
                continue
            process.join(timeout=self.JOIN_TIMEOUT_S)
            if process.is_alive():  # pragma: no cover - stuck shard
                process.terminate()
                process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - very stuck
                process.kill()
                process.join(timeout=2.0)
        if self._broker is not None:
            self._broker.stop()
        for thread in self._threads:
            thread.join(timeout=self.JOIN_TIMEOUT_S)
        for handle in self._handles:
            for ring in (handle.in_ring, handle.out_ring):
                if ring is not None:
                    ring.close()
                    CLEANUP.untrack(ring)
        self.pool.close()

    def __enter__(self) -> "ShardedFusionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- observability ----------------------------------------------------
    def ledger(self) -> Dict[str, object]:
        """The merged frame ledger over retired streams (totals
        accumulate for the service's whole life; a live drive's
        in-flight frames live inside the shards until retirement)."""
        with self._lock:
            streams = {name: dict(entry.payload["ledger"])
                       for name, entry in self._entries.items()
                       if entry.payload is not None}
            totals = dict(self._totals)
        balanced = (
            totals["offered"] == totals["admitted"] + totals["shed"]
            and totals["admitted"] == totals["finalized"]
            + totals["errored"])
        return {"totals": totals, "in_flight": 0, "balanced": balanced,
                "streams": streams}

    def metrics_text(self) -> str:
        """Prometheus exposition of the merged fleet metrics (after
        :meth:`wait`) or the parent registry (before)."""
        if self._report is not None:
            return render_snapshot(self._report.metrics)
        return self.metrics.render_prometheus()

    # -- report merge -----------------------------------------------------
    def _build_report(self) -> ServiceReport:
        wall = self._t1 - self._t0
        with self._lock:
            done = {name: entry for name, entry in self._entries.items()
                    if entry.payload is not None}
        streams: Dict[str, FusionReport] = {}
        scheduler: Dict[str, object] = {}
        violations: Dict[str, List] = {}
        ledger_streams: Dict[str, Dict[str, int]] = {}
        peak_queued: Dict[str, int] = {}
        for name, entry in done.items():
            report = self._finish_entry(entry, deadline=None)
            streams[name] = report
            scheduler[name] = dict(entry.payload["scheduler"])
            if entry.payload["violations"]:
                violations[name] = list(entry.payload["violations"])
            ledger_streams[name] = dict(entry.payload["ledger"])
            peak = report.throughput.get("queue_peak", {})
            peak_queued[name] = int(peak.get("pending", 0))
        finals = [handle.final for handle in self._handles
                  if handle.final is not None]
        energy = {name: report.model_millijoules_total
                  for name, report in streams.items()}
        occupancy = self.pool.occupancy(wall)
        admission = self._merge_admission(finals, peak_queued)
        ledger = {
            "totals": dict(self._totals),
            "in_flight": sum(f["ledger"].get("in_flight", 0)
                             for f in finals),
            "balanced": all(f["ledger"].get("balanced", False)
                            for f in finals) if finals else False,
            "streams": ledger_streams,
        }
        committed: Dict[str, float] = {}
        for final in finals:
            for engine, demand in final["slo"].get("committed",
                                                   {}).items():
                committed[engine] = committed.get(engine, 0.0) + demand
        shedding = _merge_numeric([f["shedding"] for f in finals
                                   if f["shedding"]])
        errors: Dict[str, str] = {}
        for final in finals:
            errors.update(final["errors"])
        with self._lock:
            errors.update(self._errors)
        report = ServiceReport(
            streams=streams,
            wall_seconds=wall,
            frames_total=sum(r.frames for r in streams.values()),
            energy_mj_by_stream=energy,
            energy_mj_total=sum(energy.values()),
            engine_occupancy=occupancy,
            pool=self.pool.stats(),
            admission=admission,
            scheduler=scheduler,
            cancelled=self._cancelled,
            ledger=ledger,
            slo={"headroom": self._options["slo_headroom"],
                 "committed": committed,
                 "violations": violations},
            shedding=shedding,
            metrics={},
            events={},
            errors=errors,
        )
        self._g_fps.set(report.aggregate_fps)
        for label, frac in occupancy.items():
            self._g_occupancy.labels(instance=label).set(frac)
        for name, millijoules in energy.items():
            self._g_stream_energy.labels(stream=name).set(millijoules)
        report.metrics = self._merge_metrics(finals)
        report.events = self._merge_events(finals)
        return report

    def _merge_admission(self, finals: List[Dict],
                         peak_queued: Dict[str, int]) -> Dict[str, object]:
        merged = {
            "max_in_flight": self._options["max_in_flight"]
            * len(self._handles),
            "stream_queue_depth": self._options["stream_queue_depth"],
            "in_flight": 0, "peak_in_flight": 0,
            "queued": {}, "peak_queued": dict(peak_queued),
            "admitted": {}, "admitted_total": 0, "retired_streams": 0,
            "per_shard_max_in_flight": self._options["max_in_flight"],
            "shards": len(self._handles),
        }
        for final in finals:
            snap = final["admission"]
            merged["in_flight"] += snap["in_flight"]
            # per-shard peaks never coincide by construction proof, so
            # the sum is reported as the (conservative) fleet peak
            merged["peak_in_flight"] += snap["peak_in_flight"]
            merged["queued"].update(snap["queued"])
            merged["admitted"].update(snap["admitted"])
            merged["admitted_total"] += snap["admitted_total"]
            merged["retired_streams"] += snap["retired_streams"]
        return merged

    def _merge_metrics(self, finals: List[Dict]) -> Dict[str, object]:
        #: families the parent computes authoritatively from the
        #: merged report; the shard-local values would double count
        parent_owned = ("repro_serve_aggregate_fps",
                        "repro_serve_engine_occupancy_ratio",
                        "repro_serve_stream_energy_millijoules")
        shard_snapshots = []
        for final in finals:
            snapshot = {name: family for name, family
                        in final["metrics"].items()
                        if name not in parent_owned}
            shard_snapshots.append(snapshot)
        return merge_snapshots(shard_snapshots + [self.metrics.snapshot()])

    def _merge_events(self, finals: List[Dict]) -> Dict[str, object]:
        merged = self.events.snapshot()
        counts = dict(merged["counts"])
        total = merged["total"]
        for final in finals:
            snap = final["events"]
            total += snap["total"]
            for kind, count in snap["counts"].items():
                counts[kind] = counts.get(kind, 0) + count
        merged["counts"] = counts
        merged["total"] = total
        return merged


def _merge_numeric(dicts: List[Dict[str, object]]) -> Dict[str, object]:
    """Sum-merge numeric snapshot dicts (recursing into sub-dicts)."""
    merged: Dict[str, object] = {}
    for data in dicts:
        for key, value in data.items():
            if isinstance(value, dict):
                merged[key] = _merge_numeric(
                    [merged.get(key, {}), value])
            elif isinstance(value, bool) or not isinstance(value,
                                                           (int, float)):
                merged[key] = value
            else:
                base = merged.get(key, 0)
                merged[key] = (base if isinstance(base, (int, float))
                               else 0) + value
    return merged
