"""The cross-process engine lease protocol.

The whole point of sharding is more interpreters, but the *hardware
inventory stays one inventory*: two shards must never both believe
they hold ``fpga[1]``.  The broker keeps the authoritative
:class:`~repro.serve.EnginePool` in the parent process and exposes the
lease protocol to shards as a tiny RPC over one duplex pipe per shard:

``("try_lease", name)`` -> instance label or ``None``
``("release", label)``  -> ack
``("idle", name)``      -> idle instance count
``("stats",)``          -> this shard's lease accounting

so fleet-wide ``granted == released + outstanding`` holds *exactly* —
it is the parent pool's own invariant, observed through one brain.

Engines themselves never cross the process boundary.  A granted label
is materialized shard-side as a registry-built engine instance
(:func:`~repro.hw.registry.create_engine`), which computes identical
arithmetic to the parent's instance by the registry's determinism
contract — so brokering changes who *accounts* for the silicon, never
what the silicon computes.

Crash containment: each shard's outstanding labels are tracked by
shard id; :meth:`LeaseBroker.reclaim` releases a dead shard's leases
back to the pool so surviving shards can still make progress, and
reports the labels for the ``lease_reclaim`` event.
"""

from __future__ import annotations

import threading
import time
from multiprocessing.connection import Connection, wait as conn_wait
from typing import Dict, List, Optional, Sequence, Tuple

from ...errors import ConfigurationError, FusionError
from ...hw.registry import create_engine
from ..pool import EnginePool

#: seconds the broker thread blocks in connection.wait per iteration
_POLL_S = 0.05


class LeaseBroker:
    """Parent-side lease server multiplexing shards onto one pool."""

    def __init__(self, pool: EnginePool,
                 conns: Sequence[Connection]):
        self.pool = pool
        self._conns = list(conns)
        self._alive = {i: True for i in range(len(conns))}
        self._by_conn = {id(conn): i for i, conn in enumerate(conns)}
        #: shard id -> {label: live EngineLease}
        self._outstanding: Dict[int, Dict[str, object]] = \
            {i: {} for i in range(len(conns))}
        self._reclaimed: Dict[int, List[str]] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve,
                                        name="shard-lease-broker",
                                        daemon=True)

    def start(self) -> "LeaseBroker":
        self._thread.start()
        return self

    def _serve(self) -> None:
        while not self._stop.is_set():
            with self._lock:
                live = [conn for conn in self._conns
                        if self._alive[self._by_conn[id(conn)]]]
            if not live:
                return
            for conn in conn_wait(live, timeout=_POLL_S):
                shard = self._by_conn[id(conn)]
                try:
                    request = conn.recv()
                except (EOFError, OSError):
                    # shard gone: the service's monitor owns reclaim
                    # (it also handles streams/events); just stop
                    # serving this connection
                    with self._lock:
                        self._alive[shard] = False
                    continue
                try:
                    conn.send(self._handle(shard, request))
                except (BrokenPipeError, OSError):
                    with self._lock:
                        self._alive[shard] = False

    def _handle(self, shard: int, request: Tuple) -> object:
        op = request[0]
        if op == "try_lease":
            lease = self.pool.try_lease(request[1])
            if lease is None:
                return None
            with self._lock:
                self._outstanding[shard][lease.label] = lease
            return lease.label
        if op == "release":
            label = request[1]
            with self._lock:
                lease = self._outstanding[shard].pop(label, None)
            if lease is None:
                return False  # reclaimed already (or double release)
            lease.release()
            return True
        if op == "idle":
            return self.pool.idle_count(request[1])
        if op == "stats":
            with self._lock:
                held = sorted(self._outstanding[shard])
            return {"outstanding": held}
        raise FusionError(f"unknown lease-broker op {op!r}")

    # -- crash path ------------------------------------------------------
    def reclaim(self, shard: int) -> List[str]:
        """Release every lease a dead shard still held; returns the
        reclaimed instance labels (idempotent — second call is [])."""
        with self._lock:
            if not self._alive.get(shard, False) \
                    and shard in self._reclaimed:
                return []
            self._alive[shard] = False
            held = self._outstanding.get(shard, {})
            leases = list(held.items())
            held.clear()
            labels = sorted(label for label, _ in leases)
            self._reclaimed[shard] = labels
        for _, lease in leases:
            lease.release()
        return labels

    def outstanding_by_shard(self) -> Dict[int, List[str]]:
        with self._lock:
            return {shard: sorted(held)
                    for shard, held in self._outstanding.items()}

    def stop(self) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)


class _BrokeredLease:
    """Shard-side view of one granted lease (EngineLease-compatible)."""

    __slots__ = ("engine", "name", "label", "_pool", "_released",
                 "_acquired_s")

    def __init__(self, pool: "BrokeredEnginePool", engine, label: str):
        self._pool = pool
        self.engine = engine
        self.name = engine.name
        self.label = label
        self._acquired_s = time.perf_counter()
        self._released = False

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> bool:
        if self._released:
            return False
        self._released = True
        self._pool._release(self, time.perf_counter() - self._acquired_s)
        return True

    def __enter__(self) -> "_BrokeredLease":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class BrokeredEnginePool:
    """Shard-side :class:`~repro.serve.EnginePool` stand-in.

    Duck-types the pool surface :class:`~repro.serve.FusionService`
    uses — ``count``/``idle_count``/``try_lease``/``lease``/``stats``/
    ``occupancy``/``close``/``size``/``names`` — but every grant and
    release is an RPC to the parent broker, so the fleet-wide
    accounting lives in exactly one place.  Engine instances are
    created locally (lazily, one per granted label) through the same
    registry the parent pool used; ``id(lease.engine)`` is stable per
    label, so the service's per-engine worker-context cache works
    unchanged.
    """

    def __init__(self, conn: Connection, inventory: Dict[str, int]):
        if not inventory:
            raise ConfigurationError("brokered pool needs an inventory")
        self._conn = conn
        self._rpc_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._counts = dict(inventory)
        self._engines: Dict[str, object] = {}  # label -> local instance
        self._closed = False
        # shard-local accounting (the parent pool holds the global
        # truth; this is the shard's own view for its report)
        self._granted = 0
        self._released_n = 0
        self._busy_s: Dict[str, float] = {}
        self._frames: Dict[str, int] = {}

    def _rpc(self, *request) -> object:
        with self._rpc_lock:
            if self._closed:
                raise FusionError("engine pool is closed")
            try:
                self._conn.send(request)
                return self._conn.recv()
            except (EOFError, BrokenPipeError, OSError) as exc:
                raise FusionError(
                    f"lease broker unreachable ({exc}); the parent "
                    f"service is gone") from exc

    # -- inventory -------------------------------------------------------
    @property
    def size(self) -> int:
        return sum(self._counts.values())

    def names(self) -> Tuple[str, ...]:
        return tuple(self._counts)

    def count(self, name: str) -> int:
        return self._counts.get(name, 0)

    def idle_count(self, name: str) -> int:
        self._check_name(name)
        return int(self._rpc("idle", name))

    def _check_name(self, name: str) -> None:
        if name not in self._counts:
            raise ConfigurationError(
                f"pool has no {name!r} engines; inventory is "
                f"{dict(self._counts)}")

    # -- lease protocol --------------------------------------------------
    def try_lease(self, name: str) -> Optional[_BrokeredLease]:
        self._check_name(name)
        label = self._rpc("try_lease", name)
        if label is None:
            return None
        with self._stats_lock:
            engine = self._engines.get(label)
            if engine is None:
                engine = create_engine(name)
                self._engines[label] = engine
            self._granted += 1
        return _BrokeredLease(self, engine, label)

    def lease(self, name: str,
              timeout: Optional[float] = None) -> _BrokeredLease:
        deadline = (time.perf_counter() + timeout
                    if timeout is not None else None)
        while True:
            lease = self.try_lease(name)
            if lease is not None:
                return lease
            if deadline is not None and time.perf_counter() >= deadline:
                raise FusionError(
                    f"timed out waiting {timeout:.3f}s for an idle "
                    f"{name!r} engine via the lease broker")
            time.sleep(0.002)

    def _release(self, lease: _BrokeredLease, held_s: float) -> None:
        with self._stats_lock:
            self._released_n += 1
            self._busy_s[lease.label] = \
                self._busy_s.get(lease.label, 0.0) + held_s
            self._frames[lease.label] = \
                self._frames.get(lease.label, 0) + 1
        try:
            self._rpc("release", lease.label)
        except FusionError:
            pass  # parent gone: nothing left to account to

    # -- accounting ------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        with self._stats_lock:
            return {
                "size": self.size,
                "inventory": dict(self._counts),
                "granted": self._granted,
                "released": self._released_n,
                "outstanding": self._granted - self._released_n,
                "waits": 0,
                "busy_s": dict(self._busy_s),
                "leases": dict(self._frames),
                "brokered": True,
            }

    def occupancy(self, wall_seconds: float) -> Dict[str, float]:
        with self._stats_lock:
            if wall_seconds <= 0:
                return {label: 0.0 for label in self._busy_s}
            return {label: busy / wall_seconds
                    for label, busy in self._busy_s.items()}

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "BrokeredEnginePool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
