"""Process-backed sharding for the serving tier.

The single-process :class:`~repro.serve.FusionService` is thread-
parallel but GIL-bound: one interpreter executes every Python stage of
every stream.  This package multiplies interpreters without touching
the service's semantics:

* :mod:`~repro.serve.shard.partition` — deterministic stream->shard
  placement (closed-form for a fixed roster, least-loaded for churn);
* :mod:`~repro.serve.shard.ring` — zero-copy shared-memory frame
  transport with slot leasing and generation counters;
* :mod:`~repro.serve.shard.broker` — the cross-process engine lease
  protocol keeping fleet-wide pool accounting exact;
* :mod:`~repro.serve.shard.worker` — the shard process: one full
  ``FusionService`` fed by the rings, leasing through the broker;
* :mod:`~repro.serve.shard.service` — :class:`ShardedFusionService`,
  the parent orchestrator merging everything back into one report.
"""

from .broker import BrokeredEnginePool, LeaseBroker
from .partition import ShardAssigner, partition_streams
from .ring import SEGMENT_PREFIX, FrameRing, RingClosed
from .service import ShardedFusionService

__all__ = [
    "BrokeredEnginePool",
    "FrameRing",
    "LeaseBroker",
    "RingClosed",
    "SEGMENT_PREFIX",
    "ShardAssigner",
    "ShardedFusionService",
    "partition_streams",
]
