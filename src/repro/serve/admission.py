"""Admission control: bounded work-in-progress for a multi-stream service.

A service that ingests as fast as sources produce would buffer without
bound the moment demand exceeds the engine pool — exactly the failure
mode the paper's handshaked capture FIFO guards against in hardware.
:class:`AdmissionController` is the software analogue, enforcing two
bounds *before* a frame is ingested:

* ``max_in_flight`` — total frames admitted (ingested but not yet
  finalized) across every stream, the service-wide work-in-progress
  cap;
* ``stream_queue_depth`` — per-stream bound on frames sitting in the
  stream's pending queue awaiting dispatch, so one stalled stream
  cannot monopolise the global budget.

The controller shares the service's condition variable: admission
blocks the stream's capture thread (backpressure propagates to the
source, like a camera FIFO asserting not-ready) until a worker
finalizes a frame or drains the stream's queue.  Peaks are recorded so
tests — and the :class:`~repro.serve.ServiceReport` — can prove the
bounds held rather than trust that they did.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

from ..errors import ConfigurationError

#: seconds between stop-flag checks while blocked on a full budget
TICK_S = 0.05


class AdmissionController:
    """Frame-admission bookkeeping under a shared condition variable.

    All mutating methods must be called either under ``cond`` already
    (``on_dispatch``/``on_done`` from the scheduler's critical section)
    or acquire it themselves (``admit``); the controller never takes
    any other lock, so it cannot participate in lock-order cycles.
    """

    def __init__(self, cond: threading.Condition, max_in_flight: int,
                 stream_queue_depth: int):
        if max_in_flight < 1:
            raise ConfigurationError(
                f"max_in_flight must be >= 1, got {max_in_flight}")
        if stream_queue_depth < 1:
            raise ConfigurationError(
                f"stream_queue_depth must be >= 1, got "
                f"{stream_queue_depth}")
        self._cond = cond
        self.max_in_flight = max_in_flight
        self.stream_queue_depth = stream_queue_depth
        self._in_flight = 0
        self._peak_in_flight = 0
        self._queued: Dict[str, int] = {}
        self._peak_queued: Dict[str, int] = {}
        self._admitted: Dict[str, int] = {}
        # retired-stream bookkeeping: per-stream counters fold into
        # these on deregister so churned streams cost one int each
        # (and reap() can drop even that), while the totals keep the
        # accounting provable across the service's whole life
        self._retired_peak_queued: Dict[str, int] = {}
        self._retired_admitted = 0
        self._retired_streams = 0

    def register(self, stream: str) -> None:
        if stream in self._queued:
            raise ConfigurationError(
                f"stream {stream!r} already registered for admission")
        self._queued[stream] = 0
        self._peak_queued[stream] = 0
        self._admitted[stream] = 0

    def deregister(self, stream: str) -> int:
        """Retire ``stream``'s per-stream accounting (caller holds the
        shared condition): its admitted count folds into the retired
        total, its queue peak is kept for the report, and the name
        becomes reusable.  Returns the stream's queue peak."""
        if stream not in self._queued:
            raise ConfigurationError(
                f"stream {stream!r} is not registered for admission")
        if self._queued[stream]:
            raise ConfigurationError(
                f"stream {stream!r} still has {self._queued[stream]} "
                f"queued frame(s); drain or discard before deregister")
        del self._queued[stream]
        self._retired_admitted += self._admitted.pop(stream)
        self._retired_streams += 1
        peak = self._peak_queued.pop(stream)
        self._retired_peak_queued[stream] = peak
        return peak

    def forget(self, stream: str) -> None:
        """Drop a retired stream's kept queue peak (reap path: the
        aggregate totals remain; caller holds the shared condition)."""
        self._retired_peak_queued.pop(stream, None)

    # -- the admission gate ----------------------------------------------
    def admit(self, stream: str, should_stop: Callable[[], bool]) -> bool:
        """Block until ``stream`` may ingest one more frame.

        Returns False (without admitting) when ``should_stop`` turns
        true while waiting — the cancellation path out of the
        backpressure wait.
        """
        with self._cond:
            while True:
                if should_stop():
                    return False
                if (self._in_flight < self.max_in_flight
                        and self._queued[stream]
                        < self.stream_queue_depth):
                    self._in_flight += 1
                    self._peak_in_flight = max(self._peak_in_flight,
                                               self._in_flight)
                    self._queued[stream] += 1
                    self._peak_queued[stream] = max(
                        self._peak_queued[stream], self._queued[stream])
                    self._admitted[stream] += 1
                    return True
                self._cond.wait(timeout=TICK_S)

    def retract(self, stream: str) -> None:
        """Undo one :meth:`admit` ticket that never became a frame
        (the source ended between admission and the pull).  Caller
        holds the shared condition."""
        self._queued[stream] -= 1
        self._in_flight -= 1
        self._admitted[stream] -= 1
        self._cond.notify_all()

    def on_dispatch(self, stream: str, frames: int) -> None:
        """``frames`` left the stream's pending queue (caller holds
        the shared condition)."""
        self._queued[stream] -= frames

    def on_done(self, stream: str, frames: int) -> None:
        """``frames`` finalized (caller holds the shared condition);
        wakes capture threads blocked on the global budget."""
        self._in_flight -= frames
        self._cond.notify_all()

    # -- observability ----------------------------------------------------
    @property
    def in_flight(self) -> int:
        return self._in_flight

    def snapshot(self) -> Dict[str, object]:
        peaks = dict(self._retired_peak_queued)
        peaks.update(self._peak_queued)
        return {
            "max_in_flight": self.max_in_flight,
            "stream_queue_depth": self.stream_queue_depth,
            "in_flight": self._in_flight,
            "peak_in_flight": self._peak_in_flight,
            "queued": dict(self._queued),
            "peak_queued": peaks,
            "admitted": dict(self._admitted),
            "admitted_total": (self._retired_admitted
                               + sum(self._admitted.values())),
            "retired_streams": self._retired_streams,
        }
