"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single except clause while still
being able to distinguish configuration problems from hardware-model
protocol violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class TransformError(ReproError):
    """A wavelet transform was asked to do something unsupported."""


class FusionError(ReproError):
    """Image/video fusion failed (shape mismatch, bad rule, ...)."""


class HardwareModelError(ReproError):
    """Base class for errors in the ZYNQ hardware model."""


class DriverError(HardwareModelError):
    """Kernel-driver model protocol violation (bad ioctl, unmapped buffer...)."""


class AxiError(HardwareModelError):
    """AXI transaction model misuse (bad address, oversized burst, ...)."""


class EngineError(HardwareModelError):
    """A compute engine was used incorrectly (mode, coefficients, sizing)."""


class VideoError(ReproError):
    """Video substrate failure (decode error, FIFO misuse, bad stream)."""


class DecodeError(VideoError):
    """BT.656 stream could not be decoded."""


class CalibrationError(ReproError):
    """Calibration data is missing or inconsistent."""
