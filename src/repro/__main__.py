"""``python -m repro`` — the CLI without the console-script install.

Delegates straight to :func:`repro.cli.main`, so every subcommand and
flag documented there works identically::

    PYTHONPATH=src python -m repro demo --frames 10 --executor batch
"""

from __future__ import annotations

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
