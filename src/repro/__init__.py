"""repro — reproduction of "Energy Efficient Video Fusion with
Heterogeneous CPU-FPGA Devices" (Nunez-Yanez & Sun, DATE 2016).

The package implements the paper's complete system in simulation:

* :mod:`repro.dtcwt` — the Dual-Tree Complex Wavelet Transform substrate
  (filters designed from first principles, perfect reconstruction);
* :mod:`repro.core` — DT-CWT image/video fusion, fusion-quality metrics
  and the adaptive NEON/FPGA scheduler (the paper's key finding);
* :mod:`repro.hw` — the modelled ZYNQ platform: ARM, NEON and FPGA
  engines, AXI interconnect, HLS wavelet datapath, kernel driver,
  power rails, energy accounting and resource estimation;
* :mod:`repro.baselines` — related-work fusion algorithms;
* :mod:`repro.video` — cameras, BT.656 decode, scaler, FIFO, pipeline;
* :mod:`repro.system` — the assembled Section VI system and sweeps.

Quick start::

    from repro import fuse_images, VideoFusionSystem
    fused = fuse_images(visible, thermal)            # one frame pair
    VideoFusionSystem(engine="adaptive").run(10)     # whole system
"""

from .core.adaptive import CostModelScheduler, OnlineScheduler, PerLevelScheduler
from .core.fusion import FusionResult, ImageFusion, fuse_images
from .core.fusion_rules import MaxMagnitudeRule, WeightedRule, WindowActivityRule
from .core.metrics import fusion_report
from .dtcwt import Dtcwt2D, DtcwtPyramid, Dwt2D, dtcwt_banks
from .errors import ReproError
from .hw import ArmEngine, FpgaEngine, NeonEngine, ZynqPlatform
from .system import VideoFusionSystem
from .types import FULL_FRAME, PAPER_FRAME_SIZES, FrameShape
from .video import FusionPipeline, SyntheticScene

__version__ = "1.0.0"

__all__ = [
    "CostModelScheduler", "OnlineScheduler", "PerLevelScheduler",
    "FusionResult", "ImageFusion", "fuse_images",
    "MaxMagnitudeRule", "WeightedRule", "WindowActivityRule",
    "fusion_report",
    "Dtcwt2D", "DtcwtPyramid", "Dwt2D", "dtcwt_banks",
    "ReproError",
    "ArmEngine", "FpgaEngine", "NeonEngine", "ZynqPlatform",
    "VideoFusionSystem",
    "FULL_FRAME", "PAPER_FRAME_SIZES", "FrameShape",
    "FusionPipeline", "SyntheticScene",
    "__version__",
]
