"""repro — reproduction of "Energy Efficient Video Fusion with
Heterogeneous CPU-FPGA Devices" (Nunez-Yanez & Sun, DATE 2016).

The package implements the paper's complete system in simulation:

* :mod:`repro.dtcwt` — the Dual-Tree Complex Wavelet Transform substrate
  (filters designed from first principles, perfect reconstruction);
* :mod:`repro.core` — DT-CWT image/video fusion, fusion-quality metrics
  and the adaptive NEON/FPGA scheduler (the paper's key finding);
* :mod:`repro.hw` — the modelled ZYNQ platform: ARM, NEON and FPGA
  engines (a shared registry makes them selectable by name), AXI
  interconnect, HLS wavelet datapath, kernel driver, power rails,
  energy accounting and resource estimation;
* :mod:`repro.baselines` — related-work fusion algorithms;
* :mod:`repro.graph` — the declarative plan API: frame processing as
  a dataflow IR (:class:`Stage`/:class:`FusionGraph`) lowered by a
  :class:`Planner` into the :class:`FusionPlan` every executor
  interprets;
* :mod:`repro.exec` — the pluggable execution layer: serial, pipelined
  (double-buffered), heterogeneous co-scheduled and micro-batched
  frame executors — all interpreters of the lowered plan, selectable
  via ``FusionConfig(executor=...)``;
* :mod:`repro.video` — cameras, BT.656 decode, scaler, FIFO, pipeline;
* :mod:`repro.serve` — multi-stream serving: N concurrent sessions
  multiplexed over a shared, leasable :class:`EnginePool` with
  admission control and energy-fair scheduling
  (:class:`FusionService`);
* :mod:`repro.session` — the public API: one :class:`FusionConfig`,
  one :class:`FusionSession` facade, pluggable :class:`FrameSource`
  streams (synthetic worlds, in-memory arrays, camera simulators, the
  full modelled capture chain);
* :mod:`repro.system` — parameter sweeps plus deprecated shims for the
  pre-session entry points.

Quick start::

    from repro import FusionConfig, FusionSession, SyntheticSource

    session = FusionSession(FusionConfig(engine="adaptive", seed=7))
    report = session.run(10)                    # batch over capture chain
    for result in session.stream(SyntheticSource(seed=7), limit=5):
        ...                                     # continuous streaming

    from repro import fuse_images
    fused = fuse_images(visible, thermal)       # one frame pair
"""

from .core.adaptive import CostModelScheduler, OnlineScheduler, PerLevelScheduler
from .core.fusion import FusionResult, ImageFusion, fuse_images
from .exec import (
    BatchExecutor,
    ExecStats,
    HeterogeneousExecutor,
    PipelineExecutor,
    SerialExecutor,
    executor_names,
    register_executor,
)
from .core.fusion_rules import MaxMagnitudeRule, WeightedRule, WindowActivityRule
from .core.metrics import fusion_report
from .dtcwt import Dtcwt2D, DtcwtPyramid, Dwt2D, dtcwt_banks
from .errors import ReproError
from .hw import (
    ArmEngine,
    FpgaEngine,
    NeonEngine,
    ZynqPlatform,
    create_engine,
    engine_names,
    register_engine,
)
# NOTE: the session's pair-stream FrameSource is deliberately not
# re-exported here — repro.video.FrameSource (the single-camera
# interface) already owns that name; import the pair protocol as
# repro.session.FrameSource.
from .graph import FusionGraph, FusionPlan, Planner, Stage
from .serve import EngineLease, EnginePool, FusionService, ServiceReport
from .session import (
    ArrayGroupSource,
    ArraySource,
    CameraPairSource,
    CaptureChainSource,
    FrameGroup,
    FramePair,
    FusedFrameResult,
    FusionConfig,
    FusionReport,
    FusionSession,
    SyntheticSource,
)
from .types import FULL_FRAME, PAPER_FRAME_SIZES, FrameShape
from .video import FusionPipeline, SyntheticScene

__version__ = "1.2.0"

__all__ = [
    "CostModelScheduler", "OnlineScheduler", "PerLevelScheduler",
    "FusionResult", "ImageFusion", "fuse_images",
    "MaxMagnitudeRule", "WeightedRule", "WindowActivityRule",
    "fusion_report",
    "Dtcwt2D", "DtcwtPyramid", "Dwt2D", "dtcwt_banks",
    "ReproError",
    "ArmEngine", "FpgaEngine", "NeonEngine", "ZynqPlatform",
    "create_engine", "engine_names", "register_engine",
    "ExecStats", "SerialExecutor", "PipelineExecutor",
    "HeterogeneousExecutor", "BatchExecutor",
    "executor_names", "register_executor",
    "FusionConfig", "FusionSession", "FusionReport", "FusedFrameResult",
    "FrameGroup", "FramePair", "SyntheticSource", "ArraySource",
    "ArrayGroupSource", "CameraPairSource", "CaptureChainSource",
    "Stage", "FusionGraph", "FusionPlan", "Planner",
    "EngineLease", "EnginePool", "FusionService", "ServiceReport",
    "FULL_FRAME", "PAPER_FRAME_SIZES", "FrameShape",
    "FusionPipeline", "SyntheticScene",
    "__version__",
]


def __getattr__(name: str):
    # the deprecated system entry points are resolved lazily so that
    # `import repro` stays warning-free; touching them warns once via
    # the repro.system shim modules
    if name in ("VideoFusionSystem", "AdvancedFusionSession"):
        from . import system
        return getattr(system, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
