"""JIT-compiled host engine model (extension; not a paper device).

The software analogue of the paper's HLS move: the same wavelet
datapath re-expressed for a faster engine.  The functional path is
:class:`~repro.dtcwt.jit_backend.JitBackend` — halo-extension kernels
compiled with Numba when available, evaluated with strided NumPy
otherwise, bitwise-identical to the reference either way.  The timing
model is the ARM scalar model's shape with compiled throughput: each
filtering pass is charged its MAC work at a fitted compiled rate plus
a much smaller per-pass overhead (no interpreter loop setup).

Registered as ``"jit"``; it widens the heterogeneous design space the
schedulers and the plan autotuner explore, without joining the
paper-default engine trio (see :func:`repro.hw.registry.default_engines`).
"""

from __future__ import annotations

from typing import Optional

from ..dtcwt.jit_backend import JitBackend
from ..types import FrameShape, TimingBreakdown
from .engine import Engine


class JitEngine(Engine):
    """Compiled execution on the host CPU (halo-extension kernels)."""

    name = "jit"
    power_mode = "host"

    def make_backend(self, precision: Optional[str] = None) -> JitBackend:
        return JitBackend(dtype=self.working_dtype(precision))

    # ------------------------------------------------------------------
    def forward_time(self, shape: FrameShape,
                     levels: int = 3) -> TimingBreakdown:
        return self._passes_time(
            self.work_model(shape, levels).forward_passes(),
            self.calibration.jit_mac_rate_fwd)

    def inverse_time(self, shape: FrameShape,
                     levels: int = 3) -> TimingBreakdown:
        return self._passes_time(
            self.work_model(shape, levels).inverse_passes(),
            self.calibration.jit_mac_rate_inv)

    def _passes_time(self, passes, mac_rate: float) -> TimingBreakdown:
        macs = sum(p.macs for p in passes)
        return TimingBreakdown(
            compute_s=macs / mac_rate,
            overhead_s=len(passes) * self.calibration.jit_pass_overhead_s,
        )


__all__ = ["JitEngine"]
