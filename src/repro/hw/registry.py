"""Single engine registry shared by every layer of the system.

Before this module existed the package built engines in three places
(`system.fusion_system.make_engine`, `core.adaptive.default_engines`
and ad-hoc dictionaries in the advanced session) with three slightly
different spellings.  The registry makes the set of execution
configurations a single extensible table: the session facade, the CLI
and the schedulers all resolve engine names here, and an out-of-tree
backend can call :func:`register_engine` to become selectable by name
everywhere at once.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Sequence, Tuple, Union

from ..errors import ConfigurationError
from .arm import ArmEngine
from .engine import Engine
from .fpga import FpgaEngine
from .neon import NeonEngine

#: Name -> zero-argument factory.  Insertion order is meaningful: it is
#: the paper's presentation order (ARM scalar, NEON SIMD, FPGA) and the
#: order :func:`default_engines` returns, which schedulers rely on
#: (e.g. the per-level scheduler runs the fusion stage on entry 0).
_REGISTRY: Dict[str, Callable[[], Engine]] = {}


def register_engine(name: str, factory: Callable[[], Engine],
                    replace: bool = False) -> None:
    """Make ``factory`` selectable as ``name`` throughout the package."""
    if not name or not isinstance(name, str):
        raise ConfigurationError(f"engine name must be a non-empty string, "
                                 f"got {name!r}")
    if name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"engine {name!r} is already registered; pass replace=True "
            f"to override it"
        )
    _REGISTRY[name] = factory


def engine_names() -> Tuple[str, ...]:
    """Registered engine names, in registration order."""
    return tuple(_REGISTRY)


def create_engine(name: str) -> Engine:
    """Instantiate the engine registered as ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine {name!r}; expected one of {sorted(_REGISTRY)}"
        ) from None
    return factory()


def create_engine_pool(name: str, count: int) -> Tuple[Engine, ...]:
    """``count`` independent instances of the engine registered as
    ``name``.

    A co-scheduling executor owns one instance per worker: each worker
    computes and reports under its own engine object (per-thread
    compute state comes from the instance's ``transform()`` building a
    fresh backend per lane).  Pool members come from the same registry
    factory — same filter banks, same arithmetic — so work is freely
    movable between them without changing results.
    """
    if count < 1:
        raise ConfigurationError(f"engine pool size must be >= 1, "
                                 f"got {count}")
    return tuple(create_engine(name) for _ in range(count))


def create_engines(spec: Union[Mapping[str, int], Sequence[str]]
                   ) -> Tuple[Engine, ...]:
    """Instantiate a mixed set of engines from ``spec``.

    ``spec`` is either a mapping of engine name -> instance count
    (``{"arm": 1, "fpga": 2}``) or a plain sequence of names, repeats
    allowed (``("arm", "fpga", "fpga")``).  This is the constructor
    behind :class:`repro.serve.EnginePool`: a serving deployment
    describes its hardware inventory once, declaratively, and every
    instance comes from the registry factory for its name — so leased
    instances of one name are freely interchangeable without changing
    results.
    """
    if isinstance(spec, Mapping):
        pairs = []
        for name, count in spec.items():
            if not isinstance(count, int) or count < 1:
                raise ConfigurationError(
                    f"engine count for {name!r} must be a positive "
                    f"integer, got {count!r}")
            pairs.extend(name for _ in range(count))
    elif isinstance(spec, (list, tuple)):
        pairs = list(spec)
    else:
        raise ConfigurationError(
            f"engine spec must be a name->count mapping or a sequence "
            f"of engine names, got {spec!r}")
    if not pairs:
        raise ConfigurationError("engine spec cannot be empty")
    return tuple(create_engine(name) for name in pairs)


def default_engines() -> Tuple[Engine, ...]:
    """One instance of every registered engine (the paper's three)."""
    return tuple(factory() for factory in _REGISTRY.values())


register_engine("arm", ArmEngine)
register_engine("neon", NeonEngine)
register_engine("fpga", FpgaEngine)
