"""Single engine registry shared by every layer of the system.

Before this module existed the package built engines in three places
(`system.fusion_system.make_engine`, `core.adaptive.default_engines`
and ad-hoc dictionaries in the advanced session) with three slightly
different spellings.  The registry makes the set of execution
configurations a single extensible table: the session facade, the CLI
and the schedulers all resolve engine names here, and an out-of-tree
backend can call :func:`register_engine` to become selectable by name
everywhere at once.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Sequence, Tuple, Union

from ..errors import ConfigurationError
from .arm import ArmEngine
from .engine import Engine
from .fpga import FpgaEngine
from .gpu import GpuEngine
from .jit import JitEngine
from .neon import NeonEngine

#: The paper's engine trio, in presentation order.  Extension engines
#: (jit, gpu) are registered and selectable by name, but scheduler
#: defaults stay pinned to this set so default behaviour (and every
#: seeded parity figure) is unchanged by registering more engines.
DEFAULT_ENGINE_NAMES: Tuple[str, ...] = ("arm", "neon", "fpga")

#: Name -> zero-argument factory.  Insertion order is meaningful: it is
#: the paper's presentation order (ARM scalar, NEON SIMD, FPGA) and the
#: order :func:`default_engines` returns, which schedulers rely on
#: (e.g. the per-level scheduler runs the fusion stage on entry 0).
_REGISTRY: Dict[str, Callable[[], Engine]] = {}


def register_engine(name: str, factory: Callable[[], Engine],
                    replace: bool = False) -> None:
    """Make ``factory`` selectable as ``name`` throughout the package."""
    if not name or not isinstance(name, str):
        raise ConfigurationError(f"engine name must be a non-empty string, "
                                 f"got {name!r}")
    if name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"engine {name!r} is already registered; pass replace=True "
            f"to override it"
        )
    _REGISTRY[name] = factory


def engine_names() -> Tuple[str, ...]:
    """Registered engine names, in registration order."""
    return tuple(_REGISTRY)


def create_engine(name: str) -> Engine:
    """Instantiate the engine registered as ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine {name!r}; expected one of {sorted(_REGISTRY)}"
        ) from None
    return factory()


def create_engine_pool(name: str, count: int) -> Tuple[Engine, ...]:
    """``count`` independent instances of the engine registered as
    ``name``.

    A co-scheduling executor owns one instance per worker: each worker
    computes and reports under its own engine object (per-thread
    compute state comes from the instance's ``transform()`` building a
    fresh backend per lane).  Pool members come from the same registry
    factory — same filter banks, same arithmetic — so work is freely
    movable between them without changing results.
    """
    if count < 1:
        raise ConfigurationError(f"engine pool size must be >= 1, "
                                 f"got {count}")
    return tuple(create_engine(name) for _ in range(count))


def create_engines(spec: Union[Mapping[str, int], Sequence[str]]
                   ) -> Tuple[Engine, ...]:
    """Instantiate a mixed set of engines from ``spec``.

    ``spec`` is either a mapping of engine name -> instance count
    (``{"arm": 1, "fpga": 2}``) or a plain sequence of names, repeats
    allowed (``("arm", "fpga", "fpga")``).  This is the constructor
    behind :class:`repro.serve.EnginePool`: a serving deployment
    describes its hardware inventory once, declaratively, and every
    instance comes from the registry factory for its name — so leased
    instances of one name are freely interchangeable without changing
    results.
    """
    if isinstance(spec, Mapping):
        pairs = []
        for name, count in spec.items():
            if not isinstance(count, int) or count < 1:
                raise ConfigurationError(
                    f"engine count for {name!r} must be a positive "
                    f"integer, got {count!r}")
            pairs.extend(name for _ in range(count))
    elif isinstance(spec, (list, tuple)):
        pairs = list(spec)
    else:
        raise ConfigurationError(
            f"engine spec must be a name->count mapping or a sequence "
            f"of engine names, got {spec!r}")
    if not pairs:
        raise ConfigurationError("engine spec cannot be empty")
    return tuple(create_engine(name) for name in pairs)


def default_engines() -> Tuple[Engine, ...]:
    """One instance of each of the paper's three engines.

    Deliberately *not* "everything registered": the adaptive/online
    schedulers, the hoist pass and the sweep runner all consume this
    set, and growing it implicitly whenever an extension engine is
    registered would silently change default scheduling decisions.
    Extension engines participate by explicit selection
    (``engine="jit"``, engine teams, the autotuner's placement axis).
    """
    return tuple(create_engine(name) for name in DEFAULT_ENGINE_NAMES)


def precision_candidates(precision: Union[str, None] = None
                         ) -> Tuple[Engine, ...]:
    """The default engine set narrowed to a working precision.

    ``None`` (engine-native) keeps the full paper trio; an explicit
    precision drops engines whose datapath cannot run it (the
    float32-only FPGA under ``"float64"``).  Schedulers consume this so
    a precision-pinned session never selects an engine that would have
    to silently change dtype.
    """
    engines = default_engines()
    if precision is None:
        return engines
    return tuple(e for e in engines
                 if precision in e.supported_precisions)


register_engine("arm", ArmEngine)
register_engine("neon", NeonEngine)
register_engine("fpga", FpgaEngine)
register_engine("jit", JitEngine)
register_engine("gpu", GpuEngine)
