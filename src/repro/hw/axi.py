"""AXI interconnect transfer-cost models.

Section V of the paper motivates the custom DMA engine: moving data
through a general-purpose (GP) port with the CPU costs ~25 clock cycles
per transfer, which is far too slow, so the authors synthesize a
``memcpy``-based burst master on the ACP instead.  This module models
the three transfer mechanisms so benchmarks can reproduce that
comparison (see ``benchmarks/bench_axi_transfers.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AxiError
from .platform import DEFAULT_PLATFORM, ZynqPlatform


@dataclass(frozen=True)
class AxiLiteModel:
    """AXI4-Lite slave interface used for commands and filter loading.

    Single-beat transactions driven by the CPU; each register write or
    read costs a handful of PS cycles plus interconnect latency.
    """

    platform: ZynqPlatform = DEFAULT_PLATFORM
    cycles_per_access: float = 30.0

    def write_s(self, n_writes: int = 1) -> float:
        if n_writes < 0:
            raise AxiError(f"negative write count: {n_writes}")
        return n_writes * self.cycles_per_access * self.platform.ps_cycle_s

    def read_s(self, n_reads: int = 1) -> float:
        if n_reads < 0:
            raise AxiError(f"negative read count: {n_reads}")
        return n_reads * self.cycles_per_access * self.platform.ps_cycle_s


@dataclass(frozen=True)
class GpPortModel:
    """CPU-driven word-at-a-time transfers through a 32-bit GP port.

    The paper measured ~25 clock cycles per transfer with the CPU moving
    the data itself — the reason this path is only used for control.
    """

    platform: ZynqPlatform = DEFAULT_PLATFORM

    def transfer_s(self, words: int) -> float:
        if words < 0:
            raise AxiError(f"negative word count: {words}")
        return words * self.platform.gp_cycles_per_word * self.platform.ps_cycle_s

    def bandwidth_bytes_per_s(self) -> float:
        return 4.0 / (self.platform.gp_cycles_per_word * self.platform.ps_cycle_s)


@dataclass(frozen=True)
class AcpModel:
    """Burst transfers through the Accelerator Coherency Port.

    The HLS ``memcpy`` master moves ``acp_words_per_cycle`` 32-bit words
    per PL cycle once a burst is running, with a small setup cost per
    burst.  Cache coherence is the ACP's point: no flushes are modelled
    because none are needed (Section V).
    """

    platform: ZynqPlatform = DEFAULT_PLATFORM
    burst_setup_cycles: float = 8.0

    def transfer_cycles(self, words: int) -> float:
        if words < 0:
            raise AxiError(f"negative word count: {words}")
        if words == 0:
            return 0.0
        return self.burst_setup_cycles + words / self.platform.acp_words_per_cycle

    def transfer_s(self, words: int) -> float:
        return self.transfer_cycles(words) * self.platform.pl_cycle_s

    def bandwidth_bytes_per_s(self) -> float:
        """Asymptotic burst bandwidth in bytes/second."""
        return (self.platform.acp_words_per_cycle * 4.0) / self.platform.pl_cycle_s
