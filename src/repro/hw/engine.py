"""Common interface of the three compute engines (ARM, NEON, FPGA).

An engine bundles two things, mirroring the paper's methodology:

* a **functional path** — a :class:`repro.dtcwt.Dtcwt2D` wired to the
  engine's kernel backend, so every engine *actually computes* the
  transform (results are cross-checked in the tests), and
* an **analytic timing model** — seconds for the forward transform,
  inverse transform and fusion stage of one frame, decomposed the way
  the paper discusses (compute / transfer / command / overhead).

The fusion rule always executes on the ARM (the paper accelerates only
the transforms), so :meth:`Engine.fusion_time` is shared.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Tuple

import numpy as np

from ..dtcwt.coeffs import DtcwtBanks, dtcwt_banks
from ..dtcwt.transform2d import Dtcwt2D
from ..errors import ConfigurationError
from ..types import FrameShape, TimingBreakdown
from .calibration import DEFAULT_CALIBRATION, Calibration
from .platform import DEFAULT_PLATFORM, ZynqPlatform
from .work import WorkModel


class Engine(ABC):
    """One way of executing the DT-CWT transforms on the ZYNQ."""

    #: short identifier used in reports ("arm", "neon", "fpga")
    name: str = "engine"
    #: key into the power model for the whole-pipeline execution mode
    power_mode: str = "arm"
    #: working precisions this engine's datapath can run; the FIRST
    #: entry is the engine's *native* precision, used when no explicit
    #: precision is requested (``None``).  Every modelled device is
    #: float32-native like the HLS datapath; most also accept an
    #: explicit float64 request, the FPGA being the hardware-fixed
    #: exception.
    supported_precisions: Tuple[str, ...] = ("float32", "float64")

    def __init__(self, platform: ZynqPlatform = DEFAULT_PLATFORM,
                 calibration: Calibration = DEFAULT_CALIBRATION,
                 banks: Optional[DtcwtBanks] = None):
        self.platform = platform
        self.calibration = calibration
        self.banks = banks if banks is not None else dtcwt_banks()

    # ------------------------------------------------------------------
    # functional path
    # ------------------------------------------------------------------
    @abstractmethod
    def make_backend(self, precision: Optional[str] = None):
        """Kernel backend computing this engine's arithmetic.

        ``precision`` is ``None`` (engine-native — every output stays
        bitwise-identical to the historical default) or one of
        :attr:`supported_precisions`.
        """

    def working_dtype(self, precision: Optional[str] = None) -> np.dtype:
        """The numpy dtype the backend will compute in, after
        validating ``precision`` against :attr:`supported_precisions`."""
        if precision is None:
            precision = self.supported_precisions[0]
        if precision not in self.supported_precisions:
            raise ConfigurationError(
                f"engine {self.name!r} does not support precision "
                f"{precision!r}; supported: {self.supported_precisions}"
            )
        return np.dtype(precision)

    def transform(self, levels: int = 3,
                  precision: Optional[str] = None) -> Dtcwt2D:
        """A ready-to-use functional transform on this engine."""
        return Dtcwt2D(levels=levels, banks=self.banks,
                       backend=self.make_backend(precision))

    # ------------------------------------------------------------------
    # analytic timing
    # ------------------------------------------------------------------
    @abstractmethod
    def forward_time(self, shape: FrameShape, levels: int = 3) -> TimingBreakdown:
        """Latency of the forward DT-CWT of ONE image."""

    @abstractmethod
    def inverse_time(self, shape: FrameShape, levels: int = 3) -> TimingBreakdown:
        """Latency of the inverse DT-CWT producing ONE image."""

    def fusion_time(self, shape: FrameShape, levels: int = 3) -> TimingBreakdown:
        """Latency of the coefficient fusion rule (always on the ARM)."""
        work = self.work_model(shape, levels)
        seconds = work.fusion_coefficients() * self.calibration.arm_fuse_coeff_s
        return TimingBreakdown(compute_s=seconds)

    def frame_time(self, shape: FrameShape, levels: int = 3) -> TimingBreakdown:
        """Latency of one fused frame: two forwards, fusion, one inverse.

        This is the quantity Fig. 9(b) plots (x10 frames).
        """
        fwd = self.forward_time(shape, levels)
        return fwd + fwd + self.fusion_time(shape, levels) \
            + self.inverse_time(shape, levels)

    def forward_stage_time(self, shape: FrameShape, levels: int = 3) -> float:
        """Seconds of forward-transform work per fused frame (two images).

        Matches what Fig. 9(a) plots per frame.
        """
        return 2.0 * self.forward_time(shape, levels).total_s

    def inverse_stage_time(self, shape: FrameShape, levels: int = 3) -> float:
        """Seconds of inverse-transform work per fused frame (Fig. 9(c))."""
        return self.inverse_time(shape, levels).total_s

    def work_model(self, shape: FrameShape, levels: int) -> WorkModel:
        return WorkModel(shape, levels=levels, banks=self.banks)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"
