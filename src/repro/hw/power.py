"""Rail-level power model of the ZC702 and the power-recording software.

The paper measures power with "power-recording software running
simultaneously with the fusion process" — on the ZC702 that is the TI
UCD9248 PMBus controllers exposing the board's voltage rails.  This
module models the rails the fusion workload touches and reproduces the
published aggregate behaviour:

* fusing on ARM only and on ARM+NEON draws approximately the same power;
* fusing on ARM+FPGA draws **+19.2 mW (+3.6 %)** — the PL's wavelet
  engine adds more than the off-loaded PS saves (Section VII).

Rail values are a reconstruction (the paper reports only the deltas and
percentages); their sums are pinned by tests to the published numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import ConfigurationError
from ..types import EnergyReport

#: Execution modes every power model must provide (the paper's set).
#: A model may additionally carry *extension* modes — e.g. ``"host"``
#: (compiled code on a development-class CPU) and ``"gpu"`` (a
#: discrete-class accelerator) for the modelled extension engines — by
#: listing them in every rail; :meth:`PowerModel.power_w` accepts any
#: mode present in all rails, and rejects the rest.
MODES = ("idle", "arm", "neon", "fpga")

#: Per-rail power draw (watts) for each execution mode.  Rails follow the
#: ZC702 PMBus naming: PS core (VCCPINT), PS aux (VCCPAUX), memory
#: (VCCMIO_PS + DDR), PL core (VCCINT), PL aux/BRAM (VCCAUX+VCCBRAM) and
#: fixed board overhead.  The ``accel`` rail models an attached
#: GPU-class device: it draws nothing in the paper's modes (so every
#: published sum is unchanged) and dominates in ``gpu`` mode — the
#: power side of the CPU/GPU/FPGA energy-efficiency comparison that
#: motivates the extension (PAPERS.md).  ``host`` mirrors the ARM
#: column: compiled host code keeps the same rails busy.
DEFAULT_RAILS: Dict[str, Dict[str, float]] = {
    "vccpint": {"idle": 0.130, "arm": 0.2800, "neon": 0.2800,
                "fpga": 0.2192, "host": 0.2800, "gpu": 0.2192},
    "vccpaux": {"idle": 0.040, "arm": 0.0430, "neon": 0.0430,
                "fpga": 0.0430, "host": 0.0430, "gpu": 0.0430},
    "ddr":     {"idle": 0.080, "arm": 0.1200, "neon": 0.1200,
                "fpga": 0.1200, "host": 0.1200, "gpu": 0.1800},
    "vccint":  {"idle": 0.055, "arm": 0.0600, "neon": 0.0600,
                "fpga": 0.1400, "host": 0.0600, "gpu": 0.0600},
    "vccaux":  {"idle": 0.020, "arm": 0.0200, "neon": 0.0200,
                "fpga": 0.0200, "host": 0.0200, "gpu": 0.0200},
    "board":   {"idle": 0.025, "arm": 0.0100, "neon": 0.0100,
                "fpga": 0.0100, "host": 0.0100, "gpu": 0.0100},
    "accel":   {"idle": 0.000, "arm": 0.0000, "neon": 0.0000,
                "fpga": 0.0000, "host": 0.0000, "gpu": 2.1000},
}


@dataclass(frozen=True)
class PowerModel:
    """Aggregates rail power per execution mode."""

    rails: Dict[str, Dict[str, float]] = field(
        default_factory=lambda: {k: dict(v) for k, v in DEFAULT_RAILS.items()}
    )

    def __post_init__(self) -> None:
        for rail, modes in self.rails.items():
            for mode in MODES:
                if mode not in modes:
                    raise ConfigurationError(
                        f"rail {rail!r} missing mode {mode!r}"
                    )
            for mode, value in modes.items():
                if value < 0:
                    raise ConfigurationError(
                        f"rail {rail!r} mode {mode!r} has negative power"
                    )

    def power_w(self, mode: str) -> float:
        """Total platform power in a mode (what the recorder averages)."""
        self._check_mode(mode)
        return sum(modes[mode] for modes in self.rails.values())

    def rail_breakdown(self, mode: str) -> Dict[str, float]:
        self._check_mode(mode)
        return {rail: modes[mode] for rail, modes in self.rails.items()}

    def fpga_power_increase_w(self) -> float:
        """Net extra power of FPGA mode over ARM mode (paper: 19.2 mW)."""
        return self.power_w("fpga") - self.power_w("arm")

    def modes(self) -> tuple:
        """Modes this model can price: the required baseline plus any
        extension mode present in *every* rail."""
        extras = [m for m in next(iter(self.rails.values()), {})
                  if m not in MODES
                  and all(m in modes for modes in self.rails.values())]
        return MODES + tuple(extras)

    def _check_mode(self, mode: str) -> None:
        if mode not in self.modes():
            raise ConfigurationError(
                f"unknown power mode {mode!r}; expected one of "
                f"{self.modes()}"
            )


@dataclass
class PowerSample:
    """One reading of the power-recording software."""

    t_s: float
    mode: str
    power_w: float


class PowerRecorder:
    """Samples the modelled rails along a simulated execution timeline.

    Mirrors the paper's measurement setup: the recorder runs
    "simultaneously" with the fusion process, so energy is average
    power times elapsed time.
    """

    def __init__(self, model: PowerModel = None, sample_period_s: float = 1e-3):
        if sample_period_s <= 0:
            raise ConfigurationError("sample period must be positive")
        self.model = model if model is not None else PowerModel()
        self.sample_period_s = sample_period_s
        self.samples: List[PowerSample] = []
        self._clock_s = 0.0

    def run_stage(self, mode: str, seconds: float) -> EnergyReport:
        """Advance the timeline through a stage executed in ``mode``."""
        if seconds < 0:
            raise ConfigurationError(f"negative stage duration: {seconds}")
        power = self.model.power_w(mode)
        t = self._clock_s
        end = t + seconds
        while t < end:
            self.samples.append(PowerSample(t_s=t, mode=mode, power_w=power))
            t += self.sample_period_s
        self._clock_s = end
        return EnergyReport(seconds=seconds, power_w=power)

    @property
    def elapsed_s(self) -> float:
        return self._clock_s

    def average_power_w(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.power_w for s in self.samples) / len(self.samples)

    def total_energy_j(self) -> float:
        """Trapezoid-free accumulation: sample power x sample period."""
        return sum(s.power_w for s in self.samples) * self.sample_period_s


DEFAULT_POWER_MODEL = PowerModel()
