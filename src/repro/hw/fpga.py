"""FPGA wavelet-engine execution path (PL side of the ZYNQ).

Two cooperating pieces:

* :class:`HlsBackend` — a functional kernel backend that slices every
  2-D filtering primitive into halo-extended lines and pushes them
  through the :class:`~repro.hw.hls.HlsWaveletEngine` datapath model,
  exactly the way the user-space application feeds the real accelerator
  through the kernel driver's mmap'd buffers.  Arithmetic is float32,
  like the synthesized engine.
* :class:`FpgaEngine` — the timing/energy side: it converts the shared
  work model into per-invocation :class:`~repro.hw.driver.PassCost`
  records (user memcpy, AXI-Lite commands, driver activation, PL
  cycles) and runs them through the Fig. 5 double-buffering schedule.

The per-invocation command cost is the term that makes the FPGA *lose*
below the ~40x40 crossover — the paper's central observation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..dtcwt.backend import KernelBackend
from ..dtcwt.coeffs import DtcwtBanks
from ..errors import EngineError
from ..types import FrameShape, TimingBreakdown
from .axi import AxiLiteModel
from .calibration import DEFAULT_CALIBRATION, Calibration
from .driver import PassCost, WaveletDriver
from .engine import Engine
from .hls import HlsWaveletEngine
from .platform import DEFAULT_PLATFORM, ZynqPlatform
from .work import FilterPass


def pad_filter_pair(h0: np.ndarray, c0: int, h1: np.ndarray, c1: int
                    ) -> Tuple[np.ndarray, np.ndarray, int]:
    """Align two filters on a common center and length.

    The hardware holds both filters in equal-length coefficient
    registers; shorter/offset filters are zero-padded.  Returns
    ``(f0, f1, common_center)`` with ``len(f0) == len(f1)``.
    """
    center = max(c0, c1)
    length = max(len(h0) + center - c0, len(h1) + center - c1)
    f0 = np.zeros(length, dtype=np.float32)
    f1 = np.zeros(length, dtype=np.float32)
    f0[center - c0: center - c0 + len(h0)] = h0
    f1[center - c1: center - c1 + len(h1)] = h1
    return f0, f1, center


class HlsBackend(KernelBackend):
    """Kernel backend executing every line on the HLS engine model."""

    name = "fpga"

    def __init__(self, engine: Optional[HlsWaveletEngine] = None,
                 driver: Optional[WaveletDriver] = None,
                 platform: ZynqPlatform = DEFAULT_PLATFORM):
        super().__init__(dtype=np.float32)
        self.engine = engine if engine is not None else HlsWaveletEngine(platform)
        self.driver = driver if driver is not None else WaveletDriver(platform)
        self._loaded_key: Optional[bytes] = None

    # -- coefficient management -----------------------------------------
    def _load(self, lp: np.ndarray, hp: np.ndarray) -> None:
        key = lp.tobytes() + b"|" + hp.tobytes()
        if key != self._loaded_key:
            self.engine.load_coefficients(lp, hp)
            self._loaded_key = key

    # -- line plumbing ----------------------------------------------------
    #
    # The engine is strictly line-oriented, so every primitive first
    # collapses its input to a ``(n_lines, line_len)`` sheet with the
    # filtered axis last.  Shape-polymorphic: a batched ``(N, H, W)``
    # input simply contributes ``N`` frames' worth of lines to the same
    # sheet — each line still makes one engine invocation, so the cycle
    # and transfer accounting of a batched call is exactly the sum of
    # the per-frame calls.
    @staticmethod
    def _lines(x: np.ndarray, axis: int) -> np.ndarray:
        """Collapse ``x`` to 2-D with the filtered dimension last."""
        x = np.asarray(x, dtype=np.float32)
        axis = axis % x.ndim if x.ndim else 0
        if x.ndim >= 2 and axis == x.ndim - 2:
            x = np.swapaxes(x, -1, -2)
        elif axis != x.ndim - 1:
            raise EngineError(
                f"the line engine filters one of the two trailing axes; "
                f"got axis {axis} for ndim {x.ndim}"
            )
        return x.reshape(-1, x.shape[-1]) if x.ndim != 2 else x

    @staticmethod
    def _unlines(lines: np.ndarray, shaped: np.ndarray, axis: int
                 ) -> np.ndarray:
        """Expand a processed line sheet back to ``shaped``'s layout.

        ``shaped`` is the original input whose leading axes are
        restored; the line length may have changed (decimation /
        zero-stuffing), only the filtered axis is resized.
        """
        axis = axis % shaped.ndim if shaped.ndim else 0
        swapped = shaped.ndim >= 2 and axis == shaped.ndim - 2
        lead = shaped.shape[:-1]
        if swapped:
            lead = shaped.shape[:-2] + (shaped.shape[-1],)
        out = lines.reshape(lead + (lines.shape[-1],))
        return np.swapaxes(out, -1, -2) if swapped else out

    def _check_width(self, n: int) -> None:
        if n > self.driver.area_words:
            raise EngineError(
                f"line of {n} words exceeds the {self.driver.area_words}-word "
                "buffer area (the hardware supports widths up to 2048 pixels)"
            )

    # -- primitives --------------------------------------------------------
    def analysis_u(self, x, h0, c0, h1, c1, axis):
        x = np.asarray(x, dtype=np.float32)
        lines = self._lines(x, axis)
        n = lines.shape[1]
        self._check_width(n)
        f0, f1, center = pad_filter_pair(np.asarray(h0, np.float32), c0,
                                         np.asarray(h1, np.float32), c1)
        taps = len(f0)
        self._load(f0, f1)
        ext_idx = (np.arange(n + taps - 1) - (taps - 1) + center) % n
        lo = np.empty_like(lines)
        hi = np.empty_like(lines)
        for i, line in enumerate(lines):
            lo[i], hi[i], _ = self.engine.forward_line(line[ext_idx], n, step=1)
        return self._unlines(lo, x, axis), self._unlines(hi, x, axis)

    def analysis_d(self, x, h0, h1, axis):
        x = np.asarray(x, dtype=np.float32)
        lines = self._lines(x, axis)
        n = lines.shape[1]
        self._check_width(n)
        f0 = np.asarray(h0, dtype=np.float32)
        f1 = np.asarray(h1, dtype=np.float32)
        taps = len(f0)
        self._load(f0, f1)
        out_len = n // 2
        ext_idx = (np.arange((out_len - 1) * 2 + taps) - (taps - 1)) % n
        lo = np.empty((lines.shape[0], out_len), dtype=np.float32)
        hi = np.empty_like(lo)
        for i, line in enumerate(lines):
            lo[i], hi[i], _ = self.engine.forward_line(line[ext_idx], out_len,
                                                       step=2)
        return self._unlines(lo, x, axis), self._unlines(hi, x, axis)

    def synthesis_d(self, lo, hi, h0, h1, axis):
        lo = np.asarray(lo, dtype=np.float32)
        lo_l = self._lines(lo, axis)
        hi_l = self._lines(hi, axis)
        half = lo_l.shape[1]
        n = half * 2
        self._check_width(n)
        f0 = np.asarray(h0, dtype=np.float32)
        f1 = np.asarray(h1, dtype=np.float32)
        taps = len(f0)
        self._load(f0, f1)
        ext_idx = np.arange(n + taps - 1) % n
        out = np.empty((lo_l.shape[0], n), dtype=np.float32)
        for i in range(lo_l.shape[0]):
            up_lo = np.zeros(n, dtype=np.float32)
            up_hi = np.zeros(n, dtype=np.float32)
            up_lo[0::2] = lo_l[i]
            up_hi[0::2] = hi_l[i]
            out[i], _ = self.engine.inverse_line(up_lo[ext_idx],
                                                 up_hi[ext_idx], n)
        return self._unlines(out, lo, axis)

    def synthesis_u(self, u0, u1, g0, c0, g1, c1, axis):
        u0 = np.asarray(u0, dtype=np.float32)
        u0_l = self._lines(u0, axis)
        u1_l = self._lines(u1, axis)
        n = u0_l.shape[1]
        self._check_width(n)
        f0, f1, center = pad_filter_pair(np.asarray(g0, np.float32), c0,
                                         np.asarray(g1, np.float32), c1)
        taps = len(f0)
        # inverse mode correlates; reverse the padded filters to realize
        # the centered convolution of the level-1 synthesis identity
        self._load(f0[::-1].copy(), f1[::-1].copy())
        ext_idx = (np.arange(n + taps - 1) - (taps - 1) + center) % n
        out = np.empty_like(u0_l)
        for i in range(u0_l.shape[0]):
            out[i], _ = self.engine.inverse_line(u0_l[i][ext_idx],
                                                 u1_l[i][ext_idx], n)
        return self._unlines(out, u0, axis)


class FpgaEngine(Engine):
    """ARM+FPGA execution: transforms on the PL, control and fusion on the PS."""

    name = "fpga"
    power_mode = "fpga"
    #: the synthesized datapath is single-precision, full stop — an
    #: explicit float64 request is a configuration error, not a cast
    supported_precisions = ("float32",)

    def __init__(self, platform: ZynqPlatform = DEFAULT_PLATFORM,
                 calibration: Calibration = DEFAULT_CALIBRATION,
                 banks: Optional[DtcwtBanks] = None,
                 double_buffered: bool = True):
        super().__init__(platform, calibration, banks)
        self.double_buffered = double_buffered
        self.axilite = AxiLiteModel(platform)
        self._hls = HlsWaveletEngine(
            platform,
            max_taps=max(self.banks.max_taps, 20),
            pipeline_depth=calibration.fpga_pipeline_depth_cycles,
        )

    # ------------------------------------------------------------------
    def make_backend(self, precision: Optional[str] = None) -> HlsBackend:
        self.working_dtype(precision)  # validation only; always float32
        return HlsBackend(
            engine=HlsWaveletEngine(
                self.platform,
                max_taps=max(self.banks.max_taps, 20),
                pipeline_depth=self.calibration.fpga_pipeline_depth_cycles,
            ),
            driver=WaveletDriver(self.platform),
            platform=self.platform,
        )

    # ------------------------------------------------------------------
    def forward_time(self, shape: FrameShape, levels: int = 3) -> TimingBreakdown:
        passes = self.work_model(shape, levels).forward_passes()
        breakdown = self._schedule(passes, direction="forward")
        breakdown.command_s += self._coefficient_load_s(levels, primitive_calls=3
                                                        + 12 * (levels - 1))
        return breakdown

    def inverse_time(self, shape: FrameShape, levels: int = 3) -> TimingBreakdown:
        passes = self.work_model(shape, levels).inverse_passes()
        breakdown = self._schedule(passes, direction="inverse")
        breakdown.command_s += self._coefficient_load_s(levels, primitive_calls=3
                                                        + 12 * (levels - 1))
        return breakdown

    # ------------------------------------------------------------------
    def _engine_taps(self, level: int) -> int:
        if level == 1:
            bank = self.banks.level1
            f0, _, _ = pad_filter_pair(bank.h0, bank.c_h0, bank.h1, bank.c_h1)
            return len(f0)
        return self.banks.qshift.length

    def _pass_cost(self, p: FilterPass) -> PassCost:
        cal = self.calibration
        taps = self._engine_taps(p.level)
        words_in = p.words_in + taps            # halo included in the copy
        words_out = p.words_out
        if p.direction == "forward" and p.level > 1:
            iterations = p.out_len + taps // 2  # two samples per cycle
        else:
            iterations = p.out_len + taps
        hw_s = self._hls.line_seconds_estimate(words_in, words_out, iterations)
        ps_in_s = words_in * cal.fpga_ps_word_s
        if p.direction == "inverse":
            # synthesis feeds two channel lines: an extra user memcpy
            # plus the zero-stuffing loop
            ps_in_s += cal.fpga_inverse_marshal_s
        return PassCost(
            ps_in_s=ps_in_s,
            ps_out_s=words_out * cal.fpga_ps_word_s,
            hw_s=hw_s,
            cmd_s=(cal.fpga_driver_invocation_s
                   + self.axilite.write_s(cal.fpga_axilite_writes_per_pass)),
        )

    def _schedule(self, passes: List[FilterPass], direction: str
                  ) -> TimingBreakdown:
        driver = WaveletDriver(self.platform)
        costs = [self._pass_cost(p) for p in passes]
        return driver.schedule(costs, double_buffered=self.double_buffered)

    def _coefficient_load_s(self, levels: int, primitive_calls: int) -> float:
        """Reloading the coefficient registers when the filter set changes."""
        taps = self.banks.max_taps
        per_load = (self.calibration.fpga_driver_invocation_s
                    + self.axilite.write_s(2 * taps)
                    + taps * self.platform.pl_cycle_s)
        return primitive_calls * per_load
