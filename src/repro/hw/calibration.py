"""Calibrated cost-model constants for the ZYNQ platform model.

No real board is available to this reproduction (the paper's energy and
latency numbers were measured on a ZC702), so the per-engine cost models
are *fitted* to the published evaluation:

* Fig. 9(a)/(c): forward/inverse DT-CWT stage times for ARM, NEON and
  FPGA at five frame sizes (known percentages: FPGA -55.6 % / -60.6 %,
  NEON -10 % / -16 % at 88x72; FPGA +36.4 % vs NEON at 32x24),
* Fig. 9(b): total pipeline time (FPGA -48.1 %, NEON -8 % at 88x72),
* Section VII text: performance crossover between 35x35 and 40x40,
  energy crossover between 40x40 and 64x48,
* Fig. 10 + text: ARM/NEON power equal; FPGA mode +19.2 mW (+3.6 %).

``tools/fit_calibration.py`` re-derives the fitted values; the module
stores the result so the library has no scipy dependency at runtime.
The *shape* of the cost models (what scales with MACs, invocations,
words) is physical; only the rates below are fitted.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import CalibrationError


@dataclass(frozen=True)
class Calibration:
    """Fitted constants consumed by the engine timing models."""

    # --- ARM Cortex-A9 scalar code ------------------------------------
    #: effective scalar MAC throughput of the forward-transform code path
    arm_mac_rate_fwd: float = 12.07e6
    #: effective scalar MAC throughput of the inverse-transform code path
    #: (slower: strided writes into upsampled arrays)
    arm_mac_rate_inv: float = 8.68e6
    #: per-pass loop setup / function call overhead
    arm_pass_overhead_s: float = 2.0e-6
    #: fusion-rule cost per complex coefficient (includes coefficient
    #: marshalling; always executed by the ARM in every mode)
    arm_fuse_coeff_s: float = 1.71e-6

    # --- NEON SIMD engine ----------------------------------------------
    #: float32 lanes of a 128-bit quad register
    neon_lanes: int = 4
    #: sustained fraction of the ideal lane speedup (issue limits, loads)
    neon_lane_efficiency: float = 0.85
    #: fraction of forward-path MAC work that vectorizes
    neon_vector_fraction_fwd: float = 0.147
    #: fraction of inverse-path MAC work that vectorizes
    neon_vector_fraction_inv: float = 0.2315

    # --- FPGA wavelet engine (PS-side costs) ----------------------------
    #: kernel-driver cost per accelerator activation: completion check,
    #: ioctl, command write-back (the dominant small-frame overhead)
    fpga_driver_invocation_s: float = 2.55e-5
    #: AXI4-Lite register writes issued per pass (mode, offsets, length)
    fpga_axilite_writes_per_pass: int = 4
    #: user-space memcpy cost per 32-bit word moved to/from the kernel
    #: buffers (overlapped with hardware time when double buffering);
    #: 8 ns/word is ~500 MB/s, a realistic Cortex-A9 memcpy rate
    fpga_ps_word_s: float = 8.0e-9
    #: extra PS-side marshalling per *inverse* invocation: synthesis
    #: passes feed two separate channel lines (two memcpys plus
    #: zero-stuffing), where analysis passes feed one
    fpga_inverse_marshal_s: float = 8.0e-6
    #: extra pipeline registers between BRAM and the MAC array
    fpga_pipeline_depth_cycles: int = 20

    # --- JIT-compiled host engine (extension; not a paper device) -------
    #: compiled MAC throughput of the forward path — the halo-extension
    #: kernels remove interpreter dispatch and wrap-around indexing, so
    #: throughput approaches the memory system rather than the
    #: interpreter (~8x the fitted scalar rate)
    jit_mac_rate_fwd: float = 96.0e6
    #: compiled MAC throughput of the inverse path (strided zero-stuffed
    #: writes keep it below the forward rate, same as the ARM ratio)
    jit_mac_rate_inv: float = 69.0e6
    #: per-pass cost of a compiled call (no interpreter loop setup)
    jit_pass_overhead_s: float = 5.0e-7

    # --- GPU-class engine (extension; motivated by the CPU/GPU/FPGA
    # --- vision-kernels comparison in PAPERS.md) ------------------------
    #: massively parallel MAC throughput once a kernel is resident
    gpu_mac_rate: float = 2.0e9
    #: host-side cost to launch one filtering kernel (driver + queue)
    gpu_kernel_launch_s: float = 8.0e-6
    #: per-32-bit-word DMA cost over the host<->device link (~4 GB/s)
    gpu_word_s: float = 1.0e-9
    #: fixed latency per DMA transfer (descriptor setup, doorbell)
    gpu_transfer_latency_s: float = 3.0e-5

    def validate(self) -> None:
        positives = {
            "arm_mac_rate_fwd": self.arm_mac_rate_fwd,
            "arm_mac_rate_inv": self.arm_mac_rate_inv,
            "arm_fuse_coeff_s": self.arm_fuse_coeff_s,
            "fpga_driver_invocation_s": self.fpga_driver_invocation_s,
            "fpga_ps_word_s": self.fpga_ps_word_s,
            "jit_mac_rate_fwd": self.jit_mac_rate_fwd,
            "jit_mac_rate_inv": self.jit_mac_rate_inv,
            "gpu_mac_rate": self.gpu_mac_rate,
            "gpu_kernel_launch_s": self.gpu_kernel_launch_s,
            "gpu_word_s": self.gpu_word_s,
        }
        for name, value in positives.items():
            if value <= 0:
                raise CalibrationError(f"{name} must be positive, got {value}")
        if not 0.0 <= self.neon_vector_fraction_fwd <= 1.0:
            raise CalibrationError("neon_vector_fraction_fwd out of [0, 1]")
        if not 0.0 <= self.neon_vector_fraction_inv <= 1.0:
            raise CalibrationError("neon_vector_fraction_inv out of [0, 1]")
        if self.neon_lanes < 1:
            raise CalibrationError("neon_lanes must be >= 1")

    def with_overrides(self, **kwargs) -> "Calibration":
        """Return a modified copy (used by ablation benchmarks)."""
        updated = replace(self, **kwargs)
        updated.validate()
        return updated


DEFAULT_CALIBRATION = Calibration()
DEFAULT_CALIBRATION.validate()


#: Paper-reported reference points used by the fit and by EXPERIMENTS.md.
#: Times are seconds per fused frame (Fig. 9 plots 10 frames).
PAPER_TARGETS = {
    # stage, size -> (arm, neon, fpga) seconds per fused frame
    ("forward", "88x72"): (0.090, 0.081, 0.040),
    ("inverse", "88x72"): (0.062, 0.0521, 0.0244),
    # headline percentages from Section VII
    "fpga_forward_gain_full": 0.556,
    "neon_forward_gain_full": 0.10,
    "fpga_inverse_gain_full": 0.606,
    "neon_inverse_gain_full": 0.16,
    "fpga_total_gain_full": 0.481,
    "neon_total_gain_full": 0.08,
    "fpga_vs_neon_penalty_32x24": 0.364,
    "fpga_energy_saving_full": 0.463,
    "neon_energy_saving_full": 0.08,
    "fpga_power_increase_w": 0.0192,
    "fpga_power_increase_frac": 0.036,
}
