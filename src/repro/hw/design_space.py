"""HLS design-space exploration for the wavelet engine.

The paper synthesizes one engine configuration (fully-parallel 12-tap
dual MAC chains, II=1, 100 MHz).  Vivado HLS exposes a design space:
folding the MAC array trades area for initiation interval, wider bursts
trade BRAM for transfer cycles, and the PL clock trades timing slack
for speed.  This module models those knobs — per-line latency from the
same cycle structure the engine model uses, area from the Table I
component model — and enumerates the Pareto frontier, the analysis an
EDA engineer would run before committing to the paper's design point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from ..errors import ConfigurationError
from ..types import FrameShape
from .resources import EngineConfig, ResourceEstimate, estimate_resources
from .work import WorkModel


@dataclass(frozen=True)
class DesignPoint:
    """One HLS configuration of the wavelet engine.

    ``unroll`` is the number of taps computed per cycle per channel:
    ``unroll == taps`` is the paper's fully-parallel engine (II=1);
    smaller values fold the MAC array, multiplying the initiation
    interval and dividing the multiplier count.
    """

    taps: int = 12
    unroll: int = 12
    pl_clock_hz: float = 100e6
    burst_words_per_cycle: float = 2.0

    def __post_init__(self) -> None:
        if self.unroll < 1 or self.unroll > self.taps:
            raise ConfigurationError(
                f"unroll must be in [1, taps]; got {self.unroll} for "
                f"{self.taps} taps"
            )
        if self.pl_clock_hz <= 0:
            raise ConfigurationError("pl_clock_hz must be positive")

    @property
    def initiation_interval(self) -> int:
        """Cycles between accepted input pairs (II)."""
        return -(-self.taps // self.unroll)  # ceil division

    @property
    def achievable_clock_hz(self) -> float:
        """Deeper combinational adder trees close timing at lower fmax.

        A folded design (small unroll) has a shorter critical path; the
        fully parallel one is constrained harder.  Simple model: fmax
        degrades ~3 % per extra parallel tap beyond 4.
        """
        penalty = max(0, self.unroll - 4) * 0.03
        fmax = 160e6 * (1.0 - penalty)
        return min(self.pl_clock_hz, fmax)


def line_cycles(point: DesignPoint, out_len: int, words_in: int,
                words_out: int, pipeline_depth: int = 20) -> float:
    """PL cycles for one line job under a design point."""
    transfer = (words_in + words_out) / point.burst_words_per_cycle + 16
    compute = out_len * point.initiation_interval + point.taps // 2
    return transfer + compute + pipeline_depth


def frame_seconds(point: DesignPoint, shape: FrameShape,
                  levels: int = 3) -> float:
    """PL-side seconds for one forward transform (no PS costs).

    Isolates the hardware's own contribution so the design-space trends
    are visible without the driver overhead that dominates end-to-end.
    """
    work = WorkModel(shape, levels=levels)
    clock = point.achievable_clock_hz
    total_cycles = 0.0
    for p in work.forward_passes():
        total_cycles += line_cycles(point, p.out_len,
                                    p.words_in + point.taps, p.words_out)
    return total_cycles / clock


def resources_for(point: DesignPoint) -> ResourceEstimate:
    """Area of a design point: folded engines share multipliers."""
    effective_taps = point.unroll  # multipliers actually instantiated
    config = EngineConfig(taps=max(2, effective_taps))
    return estimate_resources(config)


@dataclass(frozen=True)
class EvaluatedPoint:
    point: DesignPoint
    seconds_per_frame: float
    slices: int
    fits: bool

    @property
    def area_delay_product(self) -> float:
        return self.seconds_per_frame * self.slices


def explore(shape: FrameShape = FrameShape(88, 72), levels: int = 3,
            taps: int = 12,
            unrolls: Sequence[int] = (1, 2, 3, 4, 6, 12),
            part: str = "xc7z020clg484-1") -> List[EvaluatedPoint]:
    """Evaluate a family of design points (latency + area)."""
    results = []
    for unroll in unrolls:
        point = DesignPoint(taps=taps, unroll=unroll)
        est = resources_for(point)
        results.append(EvaluatedPoint(
            point=point,
            seconds_per_frame=frame_seconds(point, shape, levels),
            slices=est.slices,
            fits=est.fits(part),
        ))
    return results


def pareto_frontier(points: Iterable[EvaluatedPoint]) -> List[EvaluatedPoint]:
    """Non-dominated points in the (latency, area) plane."""
    candidates = sorted(points, key=lambda e: (e.seconds_per_frame, e.slices))
    frontier: List[EvaluatedPoint] = []
    best_area = float("inf")
    for item in candidates:
        if item.slices < best_area:
            frontier.append(item)
            best_area = item.slices
    return frontier
