"""GPU-class engine model (extension; not a paper device).

"Comparing Energy Efficiency of CPU, GPU and FPGA Implementations for
Vision Kernels" (PAPERS.md) motivates widening the modelled design
space with a GPU-class accelerator: enormous arithmetic throughput,
but every kernel pays a host-side launch and every buffer crosses the
host<->device link.  This module models exactly that trade:

* **compute** — pass MACs at :attr:`Calibration.gpu_mac_rate`, orders
  of magnitude above the embedded engines;
* **transfer** — the session orchestrates per pass, so each pass
  uploads its input words and downloads its output words over the
  link (``gpu_word_s`` per 32-bit word) plus a fixed DMA setup
  latency per pass;
* **command** — one kernel launch per filtering pass.

Per-invocation costs are what make the GPU *lose* at the paper's
small frames — the same crossover structure as the FPGA's driver
invocation cost, shifted by a device class.  Power-wise the ``gpu``
mode draws an attached-accelerator rail (see
:mod:`repro.hw.power`), so the energy crossover sits far above the
latency crossover: the CostModelScheduler will happily pick the GPU
for time and refuse it for energy at frame sizes where both are
defensible.

The functional path reuses the compiled halo-extension kernels
(:class:`~repro.dtcwt.jit_backend.JitBackend`): arithmetic on a real
GPU would be IEEE float32 just like the compiled host path, so the
modelled engine computes bit-identical results to the ``jit`` engine
at the same precision.
"""

from __future__ import annotations

from typing import Optional

from ..dtcwt.jit_backend import JitBackend
from ..types import FrameShape, TimingBreakdown
from .engine import Engine


class GpuBackend(JitBackend):
    """Functional stand-in for the device kernels (same arithmetic)."""

    name = "gpu"


class GpuEngine(Engine):
    """Modelled discrete GPU-class accelerator with transfer accounting."""

    name = "gpu"
    power_mode = "gpu"

    def make_backend(self, precision: Optional[str] = None) -> GpuBackend:
        return GpuBackend(dtype=self.working_dtype(precision))

    # ------------------------------------------------------------------
    def forward_time(self, shape: FrameShape,
                     levels: int = 3) -> TimingBreakdown:
        return self._passes_time(
            self.work_model(shape, levels).forward_passes())

    def inverse_time(self, shape: FrameShape,
                     levels: int = 3) -> TimingBreakdown:
        return self._passes_time(
            self.work_model(shape, levels).inverse_passes())

    def _passes_time(self, passes) -> TimingBreakdown:
        cal = self.calibration
        macs = sum(p.macs for p in passes)
        words = sum(p.words_in + p.words_out for p in passes)
        return TimingBreakdown(
            compute_s=macs / cal.gpu_mac_rate,
            transfer_s=(words * cal.gpu_word_s
                        + len(passes) * cal.gpu_transfer_latency_s),
            command_s=len(passes) * cal.gpu_kernel_launch_s,
        )


__all__ = ["GpuBackend", "GpuEngine"]
