"""FPGA resource estimation for the HLS wavelet engine (Table I).

The paper reports the implementation complexity of the synthesized
engine on the xc7z020:

=========  ==========  =========  ==========
resource   utilization  available  percentage
=========  ==========  =========  ==========
Registers      23 412    106 400        22 %
LUTs           17 405     53 200        32 %
Slices          7 890     13 300        59 %
BUFG                3         32         9 %
=========  ==========  =========  ==========

This module rebuilds those numbers from an architectural component
model: the dual MAC chains (one float multiplier per tap and an adder
tree per channel), the AXI master/DMA, the AXI4-Lite slave, BRAM
control, the coefficient/shift registers and the mode FSM.  Component
costs are representative 7-series figures tuned so the paper's 12-tap
configuration lands on Table I; the value of the model is that it
*scales* — benchmarks use it to show the cost of wider filters or
deeper buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import ConfigurationError

#: Device capacities (registers, LUTs, slices, BUFGs) for ZYNQ parts.
ZYNQ_PARTS: Dict[str, Dict[str, int]] = {
    "xc7z010clg400-1": {"registers": 35200, "luts": 17600,
                        "slices": 4400, "bufg": 32},
    "xc7z020clg484-1": {"registers": 106400, "luts": 53200,
                        "slices": 13300, "bufg": 32},
    "xc7z045ffg900-2": {"registers": 437200, "luts": 218600,
                        "slices": 54650, "bufg": 32},
}

# Representative 7-series implementation costs per component (LUTs, FFs).
_FLOAT_MULT = (150, 250)
_FLOAT_ADD = (380, 500)
_AXI_MASTER_DMA = (2500, 3200)
_AXI_LITE_SLAVE = (400, 600)
_BRAM_CONTROL = (800, 900)
_CONTROL_FSM = (1445, 176)
#: effective LUT utilisation per slice before the placer spills over
_SLICE_PACKING = 1.8133


@dataclass(frozen=True)
class EngineConfig:
    """Architecture knobs that drive the resource estimate."""

    taps: int = 12                 # the paper's engine filter length
    channels: int = 2              # hp + lp MAC chains (Fig. 4)
    buffer_words: int = 4096       # BRAM I/O buffer (Section V)
    clock_domains: int = 3         # sys clk, thermal cam clk, pixel clk

    def __post_init__(self) -> None:
        if self.taps < 2:
            raise ConfigurationError(f"taps must be >= 2, got {self.taps}")
        if self.channels < 1:
            raise ConfigurationError("at least one MAC channel required")
        if self.clock_domains < 1:
            raise ConfigurationError("at least one clock domain required")


@dataclass(frozen=True)
class ResourceEstimate:
    registers: int
    luts: int
    slices: int
    bufg: int
    bram_kbit: float

    def utilization(self, part: str = "xc7z020clg484-1") -> Dict[str, float]:
        """Percent utilization against a device, like Table I's last column."""
        if part not in ZYNQ_PARTS:
            raise ConfigurationError(
                f"unknown part {part!r}; known: {sorted(ZYNQ_PARTS)}"
            )
        cap = ZYNQ_PARTS[part]
        return {
            "registers": 100.0 * self.registers / cap["registers"],
            "luts": 100.0 * self.luts / cap["luts"],
            "slices": 100.0 * self.slices / cap["slices"],
            "bufg": 100.0 * self.bufg / cap["bufg"],
        }

    def fits(self, part: str = "xc7z020clg484-1") -> bool:
        return all(v <= 100.0 for v in self.utilization(part).values())


def estimate_resources(config: EngineConfig = EngineConfig()) -> ResourceEstimate:
    """Estimate the engine's footprint from its architecture.

    The default configuration reproduces Table I.
    """
    mults = config.channels * config.taps
    adders = config.channels * (config.taps - 1)

    luts = (mults * _FLOAT_MULT[0]
            + adders * _FLOAT_ADD[0]
            + _AXI_MASTER_DMA[0]
            + _AXI_LITE_SLAVE[0]
            + _BRAM_CONTROL[0]
            + _CONTROL_FSM[0]
            + 25 * config.taps)          # shift-register muxing
    registers = (mults * _FLOAT_MULT[1]
                 + adders * _FLOAT_ADD[1]
                 + _AXI_MASTER_DMA[1]
                 + _AXI_LITE_SLAVE[1]
                 + _BRAM_CONTROL[1]
                 + _CONTROL_FSM[1]
                 + 32 * config.channels * config.taps * 2)  # shift + coeff regs

    slices = int(round(max(luts / 4.0, registers / 8.0) * _SLICE_PACKING))
    bram_kbit = config.buffer_words * 32 * 2 / 1024.0  # in + out buffers

    return ResourceEstimate(
        registers=registers,
        luts=luts,
        slices=slices,
        bufg=config.clock_domains,
        bram_kbit=bram_kbit,
    )


#: Table I reference values for tests and EXPERIMENTS.md.
PAPER_TABLE1 = {
    "registers": (23412, 22),
    "luts": (17405, 32),
    "slices": (7890, 59),
    "bufg": (3, 9),
}
