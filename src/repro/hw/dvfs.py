"""Frequency/voltage scaling study on the modelled platform.

The paper fixes the PS at 533 MHz and the PL at 100 MHz and asks which
*engine* is most efficient.  A natural follow-on (their "most energy
and performance efficiency point") is to ask how the answer moves when
the platform's operating points change — the classic DVFS question.

Model: PS dynamic power scales as ``f * V^2`` with the ZYNQ's
characterized frequency/voltage pairs; PS-bound latencies scale as
``1/f_ps``; PL latencies as ``1/f_pl``; the PL's dynamic power scales
linearly with its clock.  Static rails are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from ..types import FrameShape
from .arm import ArmEngine
from .calibration import DEFAULT_CALIBRATION, Calibration
from .fpga import FpgaEngine
from .neon import NeonEngine
from .platform import ZynqPlatform
from .power import DEFAULT_RAILS, PowerModel

#: ZYNQ-7000 PS operating points: frequency -> core voltage (V).
PS_OPERATING_POINTS: Dict[float, float] = {
    222e6: 0.85,
    333e6: 0.90,
    444e6: 0.95,
    533e6: 1.00,
    667e6: 1.05,
    800e6: 1.10,
}

_BASE_PS_HZ = 533e6
_BASE_PL_HZ = 100e6


def scaled_calibration(ps_hz: float,
                       base: Calibration = DEFAULT_CALIBRATION) -> Calibration:
    """Scale every PS-side rate/cost with the PS clock."""
    if ps_hz <= 0:
        raise ConfigurationError("PS frequency must be positive")
    ratio = ps_hz / _BASE_PS_HZ
    return base.with_overrides(
        arm_mac_rate_fwd=base.arm_mac_rate_fwd * ratio,
        arm_mac_rate_inv=base.arm_mac_rate_inv * ratio,
        arm_pass_overhead_s=base.arm_pass_overhead_s / ratio,
        arm_fuse_coeff_s=base.arm_fuse_coeff_s / ratio,
        fpga_driver_invocation_s=base.fpga_driver_invocation_s / ratio,
        fpga_ps_word_s=base.fpga_ps_word_s / ratio,
        fpga_inverse_marshal_s=base.fpga_inverse_marshal_s / ratio,
    )


def scaled_power_model(ps_hz: float, pl_hz: float = _BASE_PL_HZ) -> PowerModel:
    """Rail model at a different operating point.

    PS dynamic component scales with ``f V^2`` (voltage from the
    operating-point table, interpolated); PL dynamic with ``f``.
    """
    if ps_hz not in PS_OPERATING_POINTS:
        raise ConfigurationError(
            f"unknown PS operating point {ps_hz / 1e6:.0f} MHz; known: "
            f"{sorted(f / 1e6 for f in PS_OPERATING_POINTS)} MHz"
        )
    volts = PS_OPERATING_POINTS[ps_hz]
    base_volts = PS_OPERATING_POINTS[_BASE_PS_HZ]
    ps_scale = (ps_hz / _BASE_PS_HZ) * (volts / base_volts) ** 2
    pl_scale = pl_hz / _BASE_PL_HZ

    rails = {name: dict(modes) for name, modes in DEFAULT_RAILS.items()}
    idle_pint = rails["vccpint"]["idle"]
    for mode in ("arm", "neon", "fpga"):
        dynamic = rails["vccpint"][mode] - idle_pint
        rails["vccpint"][mode] = idle_pint + dynamic * ps_scale
    pl_idle = rails["vccint"]["idle"]
    dynamic_pl = rails["vccint"]["fpga"] - pl_idle
    rails["vccint"]["fpga"] = pl_idle + dynamic_pl * pl_scale
    return PowerModel(rails=rails)


@dataclass(frozen=True)
class OperatingPointResult:
    ps_hz: float
    pl_hz: float
    engine: str
    seconds_per_frame: float
    millijoules_per_frame: float

    @property
    def energy_delay_product(self) -> float:
        return self.millijoules_per_frame * self.seconds_per_frame


def sweep_operating_points(
        shape: FrameShape = FrameShape(88, 72), levels: int = 3,
        ps_points: Optional[Sequence[float]] = None,
        pl_hz: float = _BASE_PL_HZ) -> List[OperatingPointResult]:
    """Time and energy of each engine across PS operating points."""
    ps_points = (tuple(sorted(PS_OPERATING_POINTS))
                 if ps_points is None else tuple(ps_points))
    results: List[OperatingPointResult] = []
    for ps_hz in ps_points:
        cal = scaled_calibration(ps_hz)
        power = scaled_power_model(ps_hz, pl_hz)
        platform = ZynqPlatform(ps_clock_hz=ps_hz, pl_clock_hz=pl_hz)
        engines = (ArmEngine(platform, cal), NeonEngine(platform, cal),
                   FpgaEngine(platform, cal))
        for engine in engines:
            seconds = engine.frame_time(shape, levels).total_s
            mj = seconds * power.power_w(engine.power_mode) * 1e3
            results.append(OperatingPointResult(
                ps_hz=ps_hz, pl_hz=pl_hz, engine=engine.name,
                seconds_per_frame=seconds, millijoules_per_frame=mj,
            ))
    return results


def best_operating_point(results: Sequence[OperatingPointResult],
                         objective: str = "energy") -> OperatingPointResult:
    """Pick the platform+engine configuration minimizing an objective."""
    keys = {
        "energy": lambda r: r.millijoules_per_frame,
        "time": lambda r: r.seconds_per_frame,
        "edp": lambda r: r.energy_delay_product,
    }
    if objective not in keys:
        raise ConfigurationError(
            f"objective must be one of {sorted(keys)}, got {objective!r}"
        )
    return min(results, key=keys[objective])
