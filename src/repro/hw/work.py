"""Analytic work model of the DT-CWT fusion pipeline.

Every engine's timing estimator consumes the same description of *what
has to be computed*: a list of 1-D filtering passes (the unit of work
the paper's HLS engine executes per invocation) plus the coefficient
fusion workload.  Keeping the work model separate from the engine cost
models guarantees the three engines are compared on identical workloads
— exactly the experimental setup of Section VII.

Pass accounting matches the functional transform in
:mod:`repro.dtcwt.transform2d`:

* level 1 filters the full image undecimated (one pass per column, then
  one pass per row of each of the two intermediate arrays);
* levels >= 2 process the four trees independently, decimating by two;
* the inverse mirrors the forward structure with synthesis filters.

Each pass computes the low-pass *and* high-pass filter in one sweep,
the way the hardware engine's dual MAC datapath does (paper Fig. 4).

The analytic model uses the *true* frame geometry (with ceil-division
for odd sizes, like the authors' implementation); the functional
transform path pads instead.  See DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from ..dtcwt.coeffs import DtcwtBanks, dtcwt_banks
from ..errors import ConfigurationError
from ..types import FrameShape


@dataclass(frozen=True)
class FilterPass:
    """One 1-D dual-filter sweep over a row or column.

    Attributes
    ----------
    level:
        Decomposition level this pass belongs to (1-based).
    direction:
        ``"forward"`` or ``"inverse"``.
    out_len:
        Number of output samples produced per filter channel.
    taps:
        Filter length used by the MAC datapath.
    macs:
        Multiply-accumulate operations executed (both channels).
    words_in / words_out:
        32-bit words moved into / out of the datapath.
    """

    level: int
    direction: str
    out_len: int
    taps: int
    macs: int
    words_in: int
    words_out: int


def _level_sizes(shape: FrameShape, levels: int) -> List[Tuple[int, int]]:
    """(height, width) seen by each level, ceil-halving like the paper."""
    sizes = []
    rows, cols = shape.height, shape.width
    for _ in range(levels):
        sizes.append((rows, cols))
        rows = (rows + 1) // 2
        cols = (cols + 1) // 2
    return sizes


class WorkModel:
    """Workload generator for one fused frame.

    Parameters
    ----------
    shape:
        Input frame geometry (both source frames share it).
    levels:
        DT-CWT decomposition depth.
    banks:
        Filter banks (tap counts feed the MAC model).
    """

    def __init__(self, shape: FrameShape, levels: int = 3,
                 banks: DtcwtBanks = None):
        if levels < 1:
            raise ConfigurationError(f"levels must be >= 1, got {levels}")
        self.shape = shape
        self.levels = levels
        self.banks = banks if banks is not None else dtcwt_banks()

    # ------------------------------------------------------------------
    # forward / inverse pass streams (single image)
    # ------------------------------------------------------------------
    def forward_passes(self) -> List[FilterPass]:
        """Passes to decompose ONE image."""
        t1 = len(self.banks.level1.h0) + len(self.banks.level1.h1)
        tq = self.banks.qshift.length
        passes: List[FilterPass] = []
        sizes = _level_sizes(self.shape, self.levels)

        rows, cols = sizes[0]
        # level 1, undecimated: one pass per column on the image, then one
        # pass per row on each of the two column-filtered arrays.
        for _ in range(cols):
            passes.append(_make_pass(1, "forward", rows, t1 // 2,
                                     macs=rows * t1,
                                     words_in=rows, words_out=2 * rows))
        for _ in range(2 * rows):
            passes.append(_make_pass(1, "forward", cols, t1 // 2,
                                     macs=cols * t1,
                                     words_in=cols, words_out=2 * cols))

        # levels >= 2: per tree, decimating dual-filter sweeps.
        for level in range(2, self.levels + 1):
            lrows, lcols = sizes[level - 1]
            out_r, out_c = (lrows + 1) // 2, (lcols + 1) // 2
            for _tree in range(4):
                for _ in range(lcols):           # column sweeps
                    passes.append(_make_pass(level, "forward", out_r, tq,
                                             macs=out_r * 2 * tq,
                                             words_in=lrows,
                                             words_out=2 * out_r))
                for _ in range(2 * out_r):       # row sweeps on lo_v and hi_v
                    passes.append(_make_pass(level, "forward", out_c, tq,
                                             macs=out_c * 2 * tq,
                                             words_in=lcols,
                                             words_out=2 * out_c))
        return passes

    def inverse_passes(self) -> List[FilterPass]:
        """Passes to reconstruct ONE image from its pyramid."""
        t1 = len(self.banks.level1.g0) + len(self.banks.level1.g1)
        tq = self.banks.qshift.length
        passes: List[FilterPass] = []
        sizes = _level_sizes(self.shape, self.levels)

        for level in range(self.levels, 1, -1):
            lrows, lcols = sizes[level - 1]
            in_r, in_c = (lrows + 1) // 2, (lcols + 1) // 2
            for _tree in range(4):
                # row synthesis: (ll,lh)->lo_v and (hl,hh)->hi_v
                for _ in range(2 * in_r):
                    passes.append(_make_pass(level, "inverse", lcols, tq,
                                             macs=lcols * tq,
                                             words_in=2 * in_c,
                                             words_out=lcols))
                # column synthesis: (lo_v,hi_v) -> tree low-pass
                for _ in range(lcols):
                    passes.append(_make_pass(level, "inverse", lrows, tq,
                                             macs=lrows * tq,
                                             words_in=2 * in_r,
                                             words_out=lrows))

        rows, cols = sizes[0]
        # level 1 synthesis: rows of the four U arrays, then columns.
        for _ in range(2 * rows):
            passes.append(_make_pass(1, "inverse", cols, t1 // 2,
                                     macs=cols * t1,
                                     words_in=2 * cols, words_out=cols))
        for _ in range(cols):
            passes.append(_make_pass(1, "inverse", rows, t1 // 2,
                                     macs=rows * t1,
                                     words_in=2 * rows, words_out=rows))
        return passes

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    def fusion_coefficients(self) -> int:
        """Complex coefficients the fusion rule touches for a frame pair.

        Six complex bands per level plus the four low-pass trees.
        """
        total = 0
        rows, cols = self.shape.height, self.shape.width
        for _ in range(self.levels):
            rows_b, cols_b = (rows + 1) // 2, (cols + 1) // 2
            total += 6 * rows_b * cols_b
            rows, cols = rows_b, cols_b
        total += 4 * rows * cols  # low-pass trees
        return total

    def forward_macs(self) -> int:
        return sum(p.macs for p in self.forward_passes())

    def inverse_macs(self) -> int:
        return sum(p.macs for p in self.inverse_passes())

    def forward_invocations(self) -> int:
        return len(self.forward_passes())

    def inverse_invocations(self) -> int:
        return len(self.inverse_passes())


def _make_pass(level: int, direction: str, out_len: int, taps: int,
               macs: int, words_in: int, words_out: int) -> FilterPass:
    return FilterPass(level=level, direction=direction, out_len=out_len,
                      taps=taps, macs=macs, words_in=words_in,
                      words_out=words_out)


def summarize_passes(passes: Iterable[FilterPass]) -> dict:
    """Aggregate statistics used by benchmarks and tests."""
    passes = list(passes)
    return {
        "invocations": len(passes),
        "macs": sum(p.macs for p in passes),
        "words": sum(p.words_in + p.words_out for p in passes),
        "levels": sorted({p.level for p in passes}),
    }
