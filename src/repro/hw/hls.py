"""Functional + cycle model of the Vivado-HLS wavelet engine (paper Fig. 4).

The real engine is synthesized from C++ by VIVADO_HLS: a ``memcpy``
pulls one line (plus halo) from DDR into BRAM over the ACP, a
shift-register feeds two 12-tap MAC chains (high-pass and low-pass
accumulators) pipelined at II=1, and a second ``memcpy`` pushes the
results back.  An AXI4-Lite slave carries three commands: (1) load
filter coefficients, (2) forward transform, (3) inverse transform.

This module reproduces that structure:

* :class:`HlsWaveletEngine` holds the coefficient registers, executes
  line-sized jobs in **float32** (the hardware datapath precision) and
  accounts PL cycles per invocation with the paper's latency structure
  — the two memcpys are *not* pipelined with the processing loop
  ("the current VIVADO_HLS tools do not pipeline the memcpy's").
* :func:`shift_register_dual_fir` is a literal, scalar transcription of
  the Fig. 4 inner loop, used by the tests to pin the vectorized
  implementation to the documented datapath.

The engine is deliberately line-oriented: the processing system (see
:mod:`repro.hw.driver` and :mod:`repro.hw.fpga`) prepares circular
halos and interleaving exactly the way the Linux driver's user-space
code would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import EngineError
from .axi import AcpModel
from .platform import DEFAULT_PLATFORM, ZynqPlatform

MODE_IDLE = 0
MODE_LOAD_COEFFS = 1
MODE_FORWARD = 2
MODE_INVERSE = 3


def shift_register_dual_fir(extended: np.ndarray, hp: np.ndarray,
                            lp: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Scalar transcription of the Fig. 4 datapath (reference only).

    Consumes two interleaved input samples per iteration, multiplies the
    shift register against both coefficient registers and emits one
    (hp, lp) output pair once the register is primed.  ``extended`` must
    contain ``2 * out_len + taps`` float32 samples (the halo included),
    mirroring the ``outwidth * 2 + 12`` words of the paper's buffer.

    Note the datapath computes a *correlation* against the coefficient
    registers (``out[m] = sum_j c[j] x[2m + j]``): the oldest sample
    meets register 0.  The driver therefore loads filter taps in
    reversed order when a convolution is wanted —
    :meth:`HlsWaveletEngine.forward_line` does this internally.
    """
    taps = len(hp)
    if len(lp) != taps:
        raise EngineError("hp/lp coefficient registers must match in length")
    if taps % 2:
        raise EngineError("the dual-sample datapath needs an even tap count")
    x = np.asarray(extended, dtype=np.float32)
    out_len = (len(x) - taps) // 2
    if out_len <= 0:
        raise EngineError(f"input of {len(x)} samples too short for {taps} taps")

    shift = np.zeros(taps, dtype=np.float32)
    hp_out = np.zeros(out_len, dtype=np.float32)
    lp_out = np.zeros(out_len, dtype=np.float32)
    prime = taps // 2
    for i in range(out_len + prime):
        hp_acc = np.float32(0.0)
        lp_acc = np.float32(0.0)
        for j in range(taps):
            hp_acc += np.float32(hp[j]) * shift[j]
            lp_acc += np.float32(lp[j]) * shift[j]
        shift[:-2] = shift[2:]
        shift[-2] = x[2 * i]
        shift[-1] = x[2 * i + 1]
        if i >= prime:
            hp_out[i - prime] = hp_acc
            lp_out[i - prime] = lp_acc
    return hp_out, lp_out


@dataclass
class EngineStats:
    """Running counters of everything the engine has executed."""

    invocations: int = 0
    cycles: float = 0.0
    words_in: int = 0
    words_out: int = 0
    coefficient_loads: int = 0

    def reset(self) -> None:
        self.invocations = 0
        self.cycles = 0.0
        self.words_in = 0
        self.words_out = 0
        self.coefficient_loads = 0


class HlsWaveletEngine:
    """Line-level functional model of the PL wavelet engine.

    Parameters
    ----------
    platform:
        Clock/bus description used for the cycle accounting.
    max_taps:
        Size of the coefficient registers.  The paper's engine uses 12;
        the default of 20 also accommodates the 9/19-tap level-1 bank.
    pipeline_depth:
        Register stages between BRAM read and accumulator write-back.
    """

    def __init__(self, platform: ZynqPlatform = DEFAULT_PLATFORM,
                 max_taps: int = 20, pipeline_depth: int = 20):
        if max_taps < 2:
            raise EngineError(f"max_taps must be >= 2, got {max_taps}")
        self.platform = platform
        self.max_taps = max_taps
        self.pipeline_depth = pipeline_depth
        self.acp = AcpModel(platform)
        self.mode = MODE_IDLE
        self._coeff_hp = np.zeros(max_taps, dtype=np.float32)
        self._coeff_lp = np.zeros(max_taps, dtype=np.float32)
        self._loaded_taps = 0
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    # command interface (what the AXI4-Lite slave exposes)
    # ------------------------------------------------------------------
    def load_coefficients(self, lp: np.ndarray, hp: np.ndarray) -> float:
        """Mode 1: load both coefficient registers; returns PL seconds."""
        lp = np.asarray(lp, dtype=np.float32)
        hp = np.asarray(hp, dtype=np.float32)
        if len(lp) != len(hp):
            raise EngineError("lp/hp filters must have equal length")
        if len(lp) > self.max_taps:
            raise EngineError(
                f"filter of {len(lp)} taps exceeds the {self.max_taps}-tap registers"
            )
        self.mode = MODE_LOAD_COEFFS
        self._coeff_lp[:] = 0.0
        self._coeff_hp[:] = 0.0
        self._coeff_lp[: len(lp)] = lp
        self._coeff_hp[: len(hp)] = hp
        self._loaded_taps = len(lp)
        self.stats.coefficient_loads += 1
        self.mode = MODE_IDLE
        # one register pair per cycle through the AXI4-Lite-fed loader
        return len(lp) * self.platform.pl_cycle_s

    @property
    def loaded_taps(self) -> int:
        return self._loaded_taps

    # ------------------------------------------------------------------
    # line jobs
    # ------------------------------------------------------------------
    def forward_line(self, extended: np.ndarray, out_len: int,
                     step: int) -> Tuple[np.ndarray, np.ndarray, float]:
        """Mode 2: dual-filter one line.

        ``extended`` holds the halo-extended input samples; ``step`` is
        the input stride per output (2 = decimated, 1 = undecimated).
        Returns ``(lp_out, hp_out, pl_seconds)``.
        """
        if self._loaded_taps == 0:
            raise EngineError("no coefficients loaded (run mode 1 first)")
        if step not in (1, 2):
            raise EngineError(f"step must be 1 or 2, got {step}")
        taps = self._loaded_taps
        x = np.asarray(extended, dtype=np.float32)
        expected = (out_len - 1) * step + taps
        if len(x) < expected:
            raise EngineError(
                f"line of {len(x)} samples too short: need {expected} "
                f"for {out_len} outputs at step {step} with {taps} taps"
            )
        self.mode = MODE_FORWARD
        lp = self._coeff_lp[:taps].astype(np.float64)
        hp = self._coeff_hp[:taps].astype(np.float64)
        # vectorized equivalent of the Fig. 4 shift-register loop
        idx = np.arange(out_len)[:, None] * step + np.arange(taps)[None, :]
        window = x[idx].astype(np.float32)
        lp_out = (window @ lp.astype(np.float32)[::-1]).astype(np.float32)
        hp_out = (window @ hp.astype(np.float32)[::-1]).astype(np.float32)
        seconds = self._line_seconds(len(x), out_len * 2,
                                     out_len + (taps + 1) // 2)
        self.mode = MODE_IDLE
        return lp_out, hp_out, seconds

    def inverse_line(self, lo_ext: np.ndarray, hi_ext: np.ndarray,
                     out_len: int) -> Tuple[np.ndarray, float]:
        """Mode 3: dual-channel synthesis of one line.

        ``lo_ext``/``hi_ext`` are zero-stuffed, halo-extended channel
        lines; the datapath correlates both against the coefficient
        registers and sums the accumulators.  Returns ``(line, seconds)``.
        """
        if self._loaded_taps == 0:
            raise EngineError("no coefficients loaded (run mode 1 first)")
        taps = self._loaded_taps
        lo = np.asarray(lo_ext, dtype=np.float32)
        hi = np.asarray(hi_ext, dtype=np.float32)
        if len(lo) != len(hi):
            raise EngineError("inverse-mode channel lines must match in length")
        if len(lo) < out_len + taps - 1:
            raise EngineError(
                f"channel lines of {len(lo)} samples too short for "
                f"{out_len} outputs with {taps} taps"
            )
        self.mode = MODE_INVERSE
        idx = np.arange(out_len)[:, None] + np.arange(taps)[None, :]
        out = (lo[idx] @ self._coeff_lp[:taps]
               + hi[idx] @ self._coeff_hp[:taps]).astype(np.float32)
        seconds = self._line_seconds(2 * len(lo), out_len, out_len + taps)
        self.mode = MODE_IDLE
        return out, seconds

    # ------------------------------------------------------------------
    # cycle accounting
    # ------------------------------------------------------------------
    def _line_seconds(self, words_in: int, words_out: int,
                      loop_iterations: int) -> float:
        """Latency of one invocation: memcpy-in, loop, memcpy-out (serial)."""
        cycles = (self.acp.transfer_cycles(words_in)
                  + loop_iterations + self.pipeline_depth
                  + self.acp.transfer_cycles(words_out))
        self.stats.invocations += 1
        self.stats.cycles += cycles
        self.stats.words_in += words_in
        self.stats.words_out += words_out
        return cycles * self.platform.pl_cycle_s

    def line_seconds_estimate(self, words_in: int, words_out: int,
                              loop_iterations: int) -> float:
        """Pure estimate (no counters) used by the analytic timing model."""
        cycles = (self.acp.transfer_cycles(words_in)
                  + loop_iterations + self.pipeline_depth
                  + self.acp.transfer_cycles(words_out))
        return cycles * self.platform.pl_cycle_s
