"""NEON vectorization model: manual intrinsics vs auto-vectorization.

Section IV (and Fig. 3) of the paper compares two ways of producing
NEON code for the filter loops:

* **manual** — ``float32x4_t`` intrinsics, explicit quad-register MACs,
  final lane reduction;
* **auto** — g++ ``-mfpu=neon -ftree-vectorize``, enabled by
  ``__restrict`` pointers and loop counts masked to multiples of 4.

"Both the manual and auto vectorization produced the similar
performance enhancement."  This module models each strategy's
constraints (what fraction of loops vectorize, epilogue handling,
reduction overhead) so that claim is checkable, and generates the
vectorization report a compiler would emit for the transform's loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..errors import ConfigurationError
from ..types import FrameShape
from .calibration import DEFAULT_CALIBRATION, Calibration
from .work import FilterPass, WorkModel


@dataclass(frozen=True)
class VectorizationStrategy:
    """How loops are turned into SIMD, and at what cost."""

    name: str
    #: fraction of candidate loops the strategy manages to vectorize
    coverage: float
    #: sustained fraction of the 4-lane ideal inside vectorized loops
    lane_efficiency: float
    #: cycles of fixed overhead per vectorized loop (reduction, setup)
    loop_overhead_macs: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.coverage <= 1.0:
            raise ConfigurationError("coverage must be within [0, 1]")
        if not 0.0 < self.lane_efficiency <= 1.0:
            raise ConfigurationError("lane efficiency must be in (0, 1]")


#: Manual intrinsics: every MAC loop rewritten, slightly better sustained
#: throughput, but each loop pays an explicit 4-lane reduction.
MANUAL = VectorizationStrategy(name="manual-intrinsics", coverage=1.00,
                               lane_efficiency=0.88,
                               loop_overhead_macs=12.0)

#: Auto-vectorization: the compiler proves independence for most (not
#: all) loops given __restrict and masked trip counts; no reduction
#: cost is modelled because gcc keeps partial sums in registers.
AUTO = VectorizationStrategy(name="auto-gcc", coverage=0.92,
                             lane_efficiency=0.85,
                             loop_overhead_macs=4.0)


@dataclass
class LoopReport:
    """One loop's vectorization outcome (a compiler-report line)."""

    description: str
    trip_count: int
    vectorized: bool
    reason: str


def strategy_seconds(strategy: VectorizationStrategy,
                     passes: Sequence[FilterPass], mac_rate: float,
                     vector_fraction: float, lanes: int = 4) -> float:
    """Latency of the transform passes under a vectorization strategy."""
    vec_rate = mac_rate * lanes * strategy.lane_efficiency
    total = 0.0
    for p in passes:
        aligned = (p.out_len // lanes) * lanes
        aligned_fraction = aligned / p.out_len if p.out_len else 0.0
        candidate = p.macs * vector_fraction * aligned_fraction
        vectorized = candidate * strategy.coverage
        scalar = p.macs - vectorized
        total += vectorized / vec_rate + scalar / mac_rate
        total += strategy.loop_overhead_macs / mac_rate
    return total


def compare_strategies(shape: FrameShape, levels: int = 3,
                       calibration: Calibration = DEFAULT_CALIBRATION
                       ) -> dict:
    """Forward-transform seconds for scalar, manual and auto builds."""
    work = WorkModel(shape, levels=levels)
    passes = work.forward_passes()
    rate = calibration.arm_mac_rate_fwd
    fraction = calibration.neon_vector_fraction_fwd
    scalar = sum(p.macs for p in passes) / rate
    return {
        "scalar": scalar,
        "manual": strategy_seconds(MANUAL, passes, rate, fraction),
        "auto": strategy_seconds(AUTO, passes, rate, fraction),
    }


def vectorization_report(shape: FrameShape, levels: int = 3,
                         lanes: int = 4) -> List[LoopReport]:
    """Per-loop vectorization report for the transform's filter loops.

    Mirrors what ``g++ -fopt-info-vec`` would say about the paper's
    code: loops whose trip count is masked to a lane multiple vectorize;
    ragged loops fall back to scalar epilogues.
    """
    work = WorkModel(shape, levels=levels)
    reports: List[LoopReport] = []
    seen = set()
    for p in work.forward_passes():
        key = (p.level, p.out_len)
        if key in seen:
            continue
        seen.add(key)
        aligned = p.out_len % lanes == 0
        reports.append(LoopReport(
            description=f"level {p.level} dual-MAC loop "
                        f"(len {p.out_len}, {p.taps} taps)",
            trip_count=p.out_len,
            vectorized=True,
            reason=("trip count multiple of 4" if aligned else
                    f"vectorized with scalar epilogue of "
                    f"{p.out_len % lanes}"),
        ))
    return reports
