"""NEON SIMD engine model.

NEON is the 128-bit SIMD extension of the Cortex-A9: 4 float32 lanes per
quad register.  The paper vectorizes the transform inner loops both with
intrinsics and with g++ auto-vectorization (``-mfpu=neon
-ftree-vectorize``) and reports ~10 % (forward) / ~16 % (inverse) gains
— modest, because only the MAC loops vectorize and the code is
memory-bound.

The timing model splits each pass's MAC work into a vectorizable
fraction (fitted per direction) executed at ``lanes x efficiency``
speedup and a scalar remainder.  Outputs beyond the last multiple of
the lane count fall back to scalar code — the loop-epilogue effect the
paper calls out ("an iteration count with a multiple of 4 is used",
Section IV); it penalizes the odd 35x35 frames.
"""

from __future__ import annotations

from typing import Optional

from ..dtcwt.backend import NumpyBackend
from ..types import FrameShape, TimingBreakdown
from .engine import Engine


class NeonBackend(NumpyBackend):
    """Functionally identical arithmetic in float32 (vector lanes do not
    change the math; NEON single-precision is IEEE-compliant for MACs)."""

    name = "neon"


class NeonEngine(Engine):
    """ARM + NEON SIMD execution (the paper's ARM+NEON configuration)."""

    name = "neon"
    power_mode = "neon"

    def make_backend(self, precision: Optional[str] = None) -> NeonBackend:
        return NeonBackend(dtype=self.working_dtype(precision))

    # ------------------------------------------------------------------
    def forward_time(self, shape: FrameShape, levels: int = 3) -> TimingBreakdown:
        return self._passes_time(
            self.work_model(shape, levels).forward_passes(),
            self.calibration.arm_mac_rate_fwd,
            self.calibration.neon_vector_fraction_fwd,
        )

    def inverse_time(self, shape: FrameShape, levels: int = 3) -> TimingBreakdown:
        return self._passes_time(
            self.work_model(shape, levels).inverse_passes(),
            self.calibration.arm_mac_rate_inv,
            self.calibration.neon_vector_fraction_inv,
        )

    def _passes_time(self, passes, mac_rate: float,
                     vector_fraction: float) -> TimingBreakdown:
        cal = self.calibration
        vector_rate = mac_rate * cal.neon_lanes * cal.neon_lane_efficiency
        compute = 0.0
        for p in passes:
            aligned = (p.out_len // cal.neon_lanes) * cal.neon_lanes
            aligned_fraction = aligned / p.out_len if p.out_len else 0.0
            vec_macs = p.macs * vector_fraction * aligned_fraction
            scalar_macs = p.macs - vec_macs
            compute += vec_macs / vector_rate + scalar_macs / mac_rate
        return TimingBreakdown(
            compute_s=compute,
            overhead_s=len(passes) * cal.arm_pass_overhead_s,
        )

    def speedup_vs_arm(self, shape: FrameShape, levels: int = 3,
                       direction: str = "forward") -> float:
        """Convenience: ARM/NEON latency ratio for one transform."""
        from .arm import ArmEngine  # local import to avoid a cycle
        arm = ArmEngine(self.platform, self.calibration, self.banks)
        if direction == "forward":
            return (arm.forward_time(shape, levels).total_s
                    / self.forward_time(shape, levels).total_s)
        return (arm.inverse_time(shape, levels).total_s
                / self.inverse_time(shape, levels).total_s)
