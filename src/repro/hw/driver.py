"""Model of the paper's kernel-level Linux driver (Section V, Fig. 5).

The real driver ``kmalloc``s physically-contiguous buffers the
accelerator can master, exposes them to user space through ``mmap`` and
steers data movement with ``ioctl`` (read/write offsets into the kernel
memory).  The kernel memory is split into **two areas** so that the user
-space ``memcpy`` of one area overlaps the hardware's processing of the
other — the double-buffering pipeline drawn in Fig. 5.

This module models both the *protocol* (so the FPGA engine exercises
realistic mmap/ioctl sequences and the tests can assert on protocol
violations) and the *timing* (an event-driven simulation of the Fig. 5
schedule that the FPGA timing estimator uses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

import numpy as np

from ..errors import DriverError
from ..types import TimingBreakdown
from .platform import DEFAULT_PLATFORM, ZynqPlatform

# ioctl command numbers (arbitrary but stable, like a real driver header)
IOCTL_SET_READ_OFFSET = 0x5701
IOCTL_SET_WRITE_OFFSET = 0x5702
IOCTL_GET_PHYS_ADDR = 0x5703
IOCTL_SELECT_AREA = 0x5704

#: Simulated physical base address of the kmalloc'd region.
_PHYS_BASE = 0x1F00_0000


@dataclass
class KernelBuffer:
    """One ``kmalloc`` allocation: physical address + backing storage."""

    phys_addr: int
    words: int
    storage: np.ndarray

    @classmethod
    def allocate(cls, words: int, phys_addr: int) -> "KernelBuffer":
        return cls(phys_addr=phys_addr, words=words,
                   storage=np.zeros(words, dtype=np.float32))


@dataclass
class PassCost:
    """Cost of a single accelerator invocation, as seen by the driver.

    ``ps_in_s``/``ps_out_s`` are the user-space memcpy times for the
    input and output payloads; ``hw_s`` the PL-side latency;
    ``cmd_s`` the per-activation control cost (completion check,
    ioctl, AXI-Lite command writes).
    """

    ps_in_s: float
    ps_out_s: float
    hw_s: float
    cmd_s: float


class WaveletDriver:
    """Protocol + timing model of the wavelet-engine character device."""

    def __init__(self, platform: ZynqPlatform = DEFAULT_PLATFORM):
        self.platform = platform
        area = platform.buffer_area_words
        self._input = KernelBuffer.allocate(platform.io_buffer_words, _PHYS_BASE)
        self._output = KernelBuffer.allocate(
            platform.io_buffer_words, _PHYS_BASE + 4 * platform.io_buffer_words
        )
        self._area_words = area
        self._read_offset = 0
        self._write_offset = 0
        self._mapped: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # protocol surface
    # ------------------------------------------------------------------
    def mmap(self, which: str) -> np.ndarray:
        """Map a kernel buffer into user space (returns a live view)."""
        buf = self._buffer(which)
        view = buf.storage.view()
        self._mapped[buf.phys_addr] = view
        return view

    def ioctl(self, command: int, arg: int = 0) -> int:
        """Driver control calls, mirroring the paper's offset mechanism."""
        if command == IOCTL_SET_READ_OFFSET:
            self._check_offset(arg)
            self._read_offset = arg
            return 0
        if command == IOCTL_SET_WRITE_OFFSET:
            self._check_offset(arg)
            self._write_offset = arg
            return 0
        if command == IOCTL_GET_PHYS_ADDR:
            if arg == 0:
                return self._input.phys_addr
            if arg == 1:
                return self._output.phys_addr
            raise DriverError(f"unknown buffer selector {arg}")
        if command == IOCTL_SELECT_AREA:
            if arg not in range(self.platform.io_buffer_areas):
                raise DriverError(
                    f"area {arg} out of range "
                    f"(platform has {self.platform.io_buffer_areas})"
                )
            offset = arg * self._area_words
            self._read_offset = offset
            self._write_offset = offset
            return 0
        raise DriverError(f"unknown ioctl command 0x{command:04x}")

    @property
    def read_offset(self) -> int:
        return self._read_offset

    @property
    def write_offset(self) -> int:
        return self._write_offset

    @property
    def area_words(self) -> int:
        """Words per double-buffer area; bounds the line length."""
        return self._area_words

    def write_line(self, data: np.ndarray, area: int = 0) -> np.ndarray:
        """User-space memcpy of one line into an input buffer area."""
        data = np.asarray(data, dtype=np.float32)
        if len(data) > self._area_words:
            raise DriverError(
                f"line of {len(data)} words exceeds the {self._area_words}-word "
                "buffer area (the paper supports widths up to 2048 pixels)"
            )
        self.ioctl(IOCTL_SELECT_AREA, area)
        start = self._read_offset
        self._input.storage[start: start + len(data)] = data
        return self._input.storage[start: start + len(data)]

    def read_line(self, words: int, area: int = 0) -> np.ndarray:
        """User-space memcpy of one result line out of an output area."""
        if words > self._area_words:
            raise DriverError(
                f"read of {words} words exceeds the {self._area_words}-word area"
            )
        self.ioctl(IOCTL_SELECT_AREA, area)
        start = self._write_offset
        return self._output.storage[start: start + words].copy()

    def store_result(self, data: np.ndarray, area: int = 0) -> None:
        """Hardware-side write of results into an output area."""
        data = np.asarray(data, dtype=np.float32)
        if len(data) > self._area_words:
            raise DriverError("hardware result exceeds buffer area")
        start = area * self._area_words
        self._output.storage[start: start + len(data)] = data

    def _buffer(self, which: str) -> KernelBuffer:
        if which == "input":
            return self._input
        if which == "output":
            return self._output
        raise DriverError(f"unknown buffer {which!r} (use 'input'/'output')")

    def _check_offset(self, offset: int) -> None:
        if not 0 <= offset < self.platform.io_buffer_words:
            raise DriverError(
                f"offset {offset} outside the {self.platform.io_buffer_words}-word "
                "kernel buffer"
            )

    # ------------------------------------------------------------------
    # Fig. 5 schedule simulation
    # ------------------------------------------------------------------
    def schedule(self, passes: Iterable[PassCost],
                 double_buffered: bool = True) -> TimingBreakdown:
        """Simulate the driver's pipeline over a sequence of invocations.

        With double buffering the user-space memcpys of pass ``i+1``
        (input) and pass ``i-1`` (output) run while the hardware chews
        on pass ``i``; the per-activation command cost always
        serializes (the app must observe completion before activating).
        Without double buffering everything serializes, which is the
        ablation case for ``benchmarks/bench_double_buffering.py``.
        """
        passes = list(passes)
        if not passes:
            return TimingBreakdown()

        breakdown = TimingBreakdown()
        if not double_buffered:
            for cost in passes:
                breakdown.command_s += cost.cmd_s
                breakdown.transfer_s += cost.ps_in_s + cost.ps_out_s
                breakdown.compute_s += cost.hw_s
            return breakdown

        # Double-buffered pipeline: in steady state each slot overlaps the
        # hardware run of pass i with the PS-side copies of neighbours.
        breakdown.transfer_s += passes[0].ps_in_s  # fill the first buffer
        for i, cost in enumerate(passes):
            breakdown.command_s += cost.cmd_s
            ps_overlapped = cost.ps_out_s
            if i + 1 < len(passes):
                ps_overlapped += passes[i + 1].ps_in_s
            breakdown.compute_s += cost.hw_s
            slack = ps_overlapped - cost.hw_s
            if slack > 0.0:  # PS copies are the bottleneck of this slot
                breakdown.transfer_s += slack
        return breakdown
