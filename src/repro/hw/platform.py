"""ZYNQ-7000 platform description (ZC702 evaluation board).

Holds the static facts of the paper's hardware setup: clock frequencies,
device part numbers and interconnect widths.  All timing models in
:mod:`repro.hw` derive their cycle<->second conversions from here, so a
single object describes a what-if platform (e.g. a faster PL clock for
an ablation study).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class ZynqPlatform:
    """Frequencies and sizing of the modelled ZYNQ SoC.

    Defaults follow Section V of the paper: the PS (ARM Cortex-A9) runs
    at its default 533 MHz and the PL (wavelet engine) at 100 MHz to
    meet timing; the ACP provides a 64-bit cache-coherent data path.
    """

    name: str = "zc702"
    part: str = "xc7z020clg484-1"
    ps_clock_hz: float = 533e6
    pl_clock_hz: float = 100e6
    acp_bus_bits: int = 64
    gp_bus_bits: int = 32
    #: CPU-driven transfer through a general-purpose port costs ~25 PS
    #: clock cycles per word (measured in the paper, Section V).
    gp_cycles_per_word: float = 25.0
    #: BRAM I/O buffers of the wavelet engine: 4096 x 32-bit words,
    #: split into two halves for double buffering (Section V).
    io_buffer_words: int = 4096
    io_buffer_areas: int = 2

    def __post_init__(self) -> None:
        if self.ps_clock_hz <= 0 or self.pl_clock_hz <= 0:
            raise ConfigurationError("clock frequencies must be positive")
        if self.io_buffer_areas < 1:
            raise ConfigurationError("at least one I/O buffer area is required")

    @property
    def ps_cycle_s(self) -> float:
        """Duration of one PS clock cycle in seconds."""
        return 1.0 / self.ps_clock_hz

    @property
    def pl_cycle_s(self) -> float:
        """Duration of one PL clock cycle in seconds."""
        return 1.0 / self.pl_clock_hz

    @property
    def buffer_area_words(self) -> int:
        """Words per double-buffer area (2048 for the default platform).

        This bounds the image width the hardware engine accepts — the
        paper states widths up to 2048 pixels.
        """
        return self.io_buffer_words // self.io_buffer_areas

    @property
    def acp_words_per_cycle(self) -> float:
        """32-bit words moved per PL cycle on the ACP (64-bit bus -> 2)."""
        return self.acp_bus_bits / 32.0


DEFAULT_PLATFORM = ZynqPlatform()
