"""ZYNQ CPU-FPGA platform model: engines, interconnect, driver, power.

The three engines mirror the paper's execution configurations:

* :class:`repro.hw.ArmEngine`  — ARM Cortex-A9 scalar code,
* :class:`repro.hw.NeonEngine` — NEON 128-bit SIMD,
* :class:`repro.hw.FpgaEngine` — the HLS wavelet engine on the PL.

Each engine both *computes* the transforms (through its kernel backend)
and *estimates* latency from the shared analytic work model; power and
energy models turn stage timings into the paper's Fig. 10 numbers.
"""

from .arm import ArmEngine
from .axi import AcpModel, AxiLiteModel, GpPortModel
from .calibration import DEFAULT_CALIBRATION, PAPER_TARGETS, Calibration
from .design_space import (
    DesignPoint,
    EvaluatedPoint,
    explore,
    pareto_frontier,
)
from .driver import PassCost, WaveletDriver
from .dvfs import (
    PS_OPERATING_POINTS,
    best_operating_point,
    scaled_calibration,
    scaled_power_model,
    sweep_operating_points,
)
from .energy import EnergyMeter, energy_mj
from .engine import Engine
from .fpga import FpgaEngine, HlsBackend, pad_filter_pair
from .gpu import GpuBackend, GpuEngine
from .hls import HlsWaveletEngine, shift_register_dual_fir
from .jit import JitEngine
from .neon import NeonEngine
from .platform import DEFAULT_PLATFORM, ZynqPlatform
from .power import DEFAULT_POWER_MODEL, MODES, PowerModel, PowerRecorder
from .registry import (
    DEFAULT_ENGINE_NAMES,
    create_engine,
    create_engine_pool,
    default_engines,
    engine_names,
    register_engine,
)
from .resources import (
    PAPER_TABLE1,
    ZYNQ_PARTS,
    EngineConfig,
    ResourceEstimate,
    estimate_resources,
)
from .trace import LANE_HW, LANE_PS, ScheduleTracer, TraceEvent, trace_forward
from .vectorization import (
    AUTO,
    MANUAL,
    VectorizationStrategy,
    compare_strategies,
    vectorization_report,
)
from .work import FilterPass, WorkModel, summarize_passes

__all__ = [
    "ArmEngine", "NeonEngine", "FpgaEngine", "Engine",
    "JitEngine", "GpuEngine", "GpuBackend",
    "create_engine", "create_engine_pool", "default_engines",
    "engine_names", "register_engine", "DEFAULT_ENGINE_NAMES",
    "HlsBackend", "pad_filter_pair",
    "HlsWaveletEngine", "shift_register_dual_fir",
    "AcpModel", "AxiLiteModel", "GpPortModel",
    "Calibration", "DEFAULT_CALIBRATION", "PAPER_TARGETS",
    "WaveletDriver", "PassCost",
    "EnergyMeter", "energy_mj",
    "ZynqPlatform", "DEFAULT_PLATFORM",
    "PowerModel", "PowerRecorder", "DEFAULT_POWER_MODEL", "MODES",
    "EngineConfig", "ResourceEstimate", "estimate_resources",
    "ZYNQ_PARTS", "PAPER_TABLE1",
    "WorkModel", "FilterPass", "summarize_passes",
    "DesignPoint", "EvaluatedPoint", "explore", "pareto_frontier",
    "PS_OPERATING_POINTS", "best_operating_point", "scaled_calibration",
    "scaled_power_model", "sweep_operating_points",
    "AUTO", "MANUAL", "VectorizationStrategy", "compare_strategies",
    "vectorization_report",
    "LANE_HW", "LANE_PS", "ScheduleTracer", "TraceEvent", "trace_forward",
]
