"""Energy accounting: joules = mode power x stage seconds (Fig. 10).

The paper computes energy "using the power values, measured by
power-recording software ... and the total time taken shown in
Fig. 9(b)".  :class:`EnergyMeter` reproduces that bookkeeping: it runs a
pipeline's stage timings under a mode's power draw and accumulates
millijoules per stage and in total.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import ConfigurationError
from ..types import EnergyReport, TimingBreakdown
from .power import DEFAULT_POWER_MODEL, PowerModel


@dataclass
class EnergyMeter:
    """Accumulates per-stage energy for one execution mode."""

    mode: str
    model: PowerModel = field(default_factory=lambda: DEFAULT_POWER_MODEL)
    stages: Dict[str, EnergyReport] = field(default_factory=dict)

    def add_stage(self, name: str, seconds: float) -> EnergyReport:
        """Charge ``seconds`` of work in this meter's mode to ``name``."""
        if seconds < 0:
            raise ConfigurationError(f"negative stage time: {seconds}")
        report = EnergyReport(seconds=seconds, power_w=self.model.power_w(self.mode))
        if name in self.stages:
            prev = self.stages[name]
            report = EnergyReport(seconds=prev.seconds + seconds,
                                  power_w=report.power_w)
        self.stages[name] = report
        return report

    def add_breakdown(self, name: str, breakdown: TimingBreakdown) -> EnergyReport:
        return self.add_stage(name, breakdown.total_s)

    @property
    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.stages.values())

    @property
    def total_joules(self) -> float:
        return sum(r.joules for r in self.stages.values())

    @property
    def total_millijoules(self) -> float:
        return self.total_joules * 1e3


def energy_mj(seconds: float, mode: str,
              model: Optional[PowerModel] = None) -> float:
    """One-shot helper: millijoules for ``seconds`` of work in ``mode``."""
    model = model if model is not None else DEFAULT_POWER_MODEL
    return seconds * model.power_w(mode) * 1e3
