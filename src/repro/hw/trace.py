"""Execution tracing of the accelerator schedule.

Turns the driver's Fig. 5 pipeline into an inspectable timeline:
:class:`ScheduleTracer` replays a pass sequence through the same
double-buffering rules as :meth:`repro.hw.driver.WaveletDriver.schedule`
but records *events* — one per user memcpy, command, and hardware run —
and exports them as Chrome tracing JSON (open in ``chrome://tracing``
or Perfetto) or as an ASCII Gantt strip for terminals.

The tracer is also the reference oracle for the analytic schedule: its
makespan must equal the driver's closed-form total, which the tests
assert.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Sequence

from ..errors import HardwareModelError
from .driver import PassCost

#: Trace rows (Chrome tracing "thread" ids).
LANE_PS = "ps-user"       # user-space memcpys + driver commands
LANE_HW = "pl-engine"     # hardware memcpy + filter pipeline


@dataclass(frozen=True)
class TraceEvent:
    """One timeline span (seconds)."""

    name: str
    lane: str
    start_s: float
    duration_s: float
    pass_index: int

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


class ScheduleTracer:
    """Event-level replay of the double-buffered driver schedule."""

    def __init__(self, double_buffered: bool = True):
        self.double_buffered = double_buffered
        self.events: List[TraceEvent] = []

    # ------------------------------------------------------------------
    def run(self, passes: Sequence[PassCost]) -> float:
        """Replay ``passes``; returns the makespan in seconds."""
        self.events = []
        if not passes:
            return 0.0
        if self.double_buffered:
            return self._run_pipelined(passes)
        return self._run_serial(passes)

    def _emit(self, name: str, lane: str, start: float, duration: float,
              index: int) -> float:
        if duration < 0:
            raise HardwareModelError(f"negative duration for {name}")
        self.events.append(TraceEvent(name=name, lane=lane, start_s=start,
                                      duration_s=duration, pass_index=index))
        return start + duration

    def _run_serial(self, passes: Sequence[PassCost]) -> float:
        clock = 0.0
        for i, cost in enumerate(passes):
            clock = self._emit("memcpy-in", LANE_PS, clock, cost.ps_in_s, i)
            clock = self._emit("cmd+activate", LANE_PS, clock, cost.cmd_s, i)
            clock = self._emit("hw-pass", LANE_HW, clock, cost.hw_s, i)
            clock = self._emit("memcpy-out", LANE_PS, clock, cost.ps_out_s, i)
        return clock

    def _run_pipelined(self, passes: Sequence[PassCost]) -> float:
        """Fig. 5: the PS copies pass i+1 in / pass i-1 out while the
        hardware runs pass i; commands serialize between slots."""
        clock = self._emit("memcpy-in", LANE_PS, 0.0, passes[0].ps_in_s, 0)
        for i, cost in enumerate(passes):
            clock = self._emit("cmd+activate", LANE_PS, clock, cost.cmd_s, i)
            hw_end = self._emit("hw-pass", LANE_HW, clock, cost.hw_s, i)
            ps_clock = clock
            ps_clock = self._emit("memcpy-out", LANE_PS, ps_clock,
                                  cost.ps_out_s, max(0, i - 1) if i else i)
            if i + 1 < len(passes):
                ps_clock = self._emit("memcpy-in", LANE_PS, ps_clock,
                                      passes[i + 1].ps_in_s, i + 1)
            clock = max(hw_end, ps_clock)
        return clock

    # ------------------------------------------------------------------
    @property
    def makespan_s(self) -> float:
        return max((e.end_s for e in self.events), default=0.0)

    def lane_busy_s(self, lane: str) -> float:
        return sum(e.duration_s for e in self.events if e.lane == lane)

    def utilization(self, lane: str) -> float:
        span = self.makespan_s
        return self.lane_busy_s(lane) / span if span > 0 else 0.0

    # ------------------------------------------------------------------
    def to_chrome_trace(self) -> str:
        """Chrome tracing JSON (microsecond units, complete events)."""
        records = [
            {
                "name": event.name,
                "cat": "wavelet-engine",
                "ph": "X",
                "ts": event.start_s * 1e6,
                "dur": event.duration_s * 1e6,
                "pid": 1,
                "tid": 1 if event.lane == LANE_PS else 2,
                "args": {"pass": event.pass_index},
            }
            for event in self.events
        ]
        records.append({"name": "thread_name", "ph": "M", "pid": 1,
                        "tid": 1, "args": {"name": LANE_PS}})
        records.append({"name": "thread_name", "ph": "M", "pid": 1,
                        "tid": 2, "args": {"name": LANE_HW}})
        return json.dumps({"traceEvents": records})

    def to_ascii_gantt(self, width: int = 72) -> str:
        """Terminal Gantt strip: one row per lane, # marks busy time."""
        span = self.makespan_s
        if span <= 0:
            return "(empty trace)"
        rows = []
        for lane in (LANE_PS, LANE_HW):
            cells = [" "] * width
            for event in self.events:
                if event.lane != lane:
                    continue
                lo = int(event.start_s / span * (width - 1))
                hi = max(lo, int(event.end_s / span * (width - 1)))
                mark = "#" if event.lane == LANE_HW else \
                    ("c" if "cmd" in event.name else "=")
                for x in range(lo, hi + 1):
                    cells[x] = mark
            rows.append(f"{lane:>10} |{''.join(cells)}|")
        rows.append(f"{'':>10}  0{'':{width - 8}}{span * 1e3:.2f} ms")
        return "\n".join(rows)


def trace_forward(engine, shape, levels: int = 3) -> ScheduleTracer:
    """Trace an FpgaEngine's forward pass schedule for one image.

    Covers the per-line invocation pipeline (what Fig. 5 draws); the
    engine's coefficient-reload overhead between filter groups is a
    separate additive term in ``FpgaEngine.forward_time`` and is not
    part of the traced timeline.
    """
    from .fpga import FpgaEngine
    if not isinstance(engine, FpgaEngine):
        raise HardwareModelError("tracing requires an FpgaEngine")
    passes = engine.work_model(shape, levels).forward_passes()
    costs = [engine._pass_cost(p) for p in passes]  # noqa: SLF001
    tracer = ScheduleTracer(double_buffered=engine.double_buffered)
    tracer.run(costs)
    return tracer
