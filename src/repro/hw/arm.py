"""ARM Cortex-A9 scalar engine model.

The baseline of the paper's comparison: the whole fusion algorithm in
plain C++ on the PS.  The functional path is the reference transform in
float32 (the paper's code uses ``float``); the timing model charges each
filtering pass its MAC work at a fitted scalar throughput plus a small
per-pass overhead — the same workload description all engines share
(:mod:`repro.hw.work`).
"""

from __future__ import annotations

from typing import Optional

from ..dtcwt.backend import NumpyBackend
from ..types import FrameShape, TimingBreakdown
from .engine import Engine


class ArmEngine(Engine):
    """Scalar execution on the ARM Cortex-A9 (533 MHz PS)."""

    name = "arm"
    power_mode = "arm"

    def make_backend(self, precision: Optional[str] = None) -> NumpyBackend:
        return NumpyBackend(dtype=self.working_dtype(precision))

    # ------------------------------------------------------------------
    def forward_time(self, shape: FrameShape, levels: int = 3) -> TimingBreakdown:
        return self._passes_time(self.work_model(shape, levels).forward_passes(),
                                 self.calibration.arm_mac_rate_fwd)

    def inverse_time(self, shape: FrameShape, levels: int = 3) -> TimingBreakdown:
        return self._passes_time(self.work_model(shape, levels).inverse_passes(),
                                 self.calibration.arm_mac_rate_inv)

    def _passes_time(self, passes, mac_rate: float) -> TimingBreakdown:
        macs = sum(p.macs for p in passes)
        return TimingBreakdown(
            compute_s=macs / mac_rate,
            overhead_s=len(passes) * self.calibration.arm_pass_overhead_s,
        )
