"""The production fusion session: every extension, assembled.

:class:`AdvancedFusionSession` is the "future work, implemented"
configuration: the paper's capture+fusion pipeline combined with

* **online adaptive engine selection** (measurement-driven, no model),
* **registration** of the thermal view onto the visible view,
* **temporal fusion** for flicker suppression,
* **quality monitoring** with automatic passthrough fallback,
* **telemetry** (latency percentiles, deadline misses, energy budget).

Each feature is individually optional so ablations can switch them off
— the corresponding benchmark measures what each contributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.adaptive import OnlineScheduler, default_engines
from ..core.fusion import ImageFusion
from ..core.quality_monitor import ACTION_FUSE, QualityMonitor
from ..core.registration import DtcwtRegistration
from ..core.video_fusion import TemporalFusion
from ..errors import ConfigurationError
from ..hw.power import DEFAULT_POWER_MODEL, PowerModel
from ..types import FrameShape
from ..video.pipeline import FusionPipeline
from ..video.scene import SyntheticScene
from .telemetry import FrameTelemetry


@dataclass
class SessionReport:
    """Outcome of an advanced session run."""

    frames: int
    engine_usage: Dict[str, int]
    actions: Dict[str, int]
    alarms: int
    mean_qabf: float
    telemetry: Dict[str, float]
    registered_shift_px: float


class AdvancedFusionSession:
    """Capture -> register -> fuse(temporal) -> monitor, adaptively."""

    def __init__(self, fusion_shape: FrameShape = FrameShape(88, 72),
                 levels: int = 3,
                 scene: Optional[SyntheticScene] = None,
                 use_registration: bool = True,
                 use_temporal: bool = True,
                 use_monitor: bool = True,
                 target_fps: float = 25.0,
                 energy_budget_mj: Optional[float] = None,
                 power_model: PowerModel = DEFAULT_POWER_MODEL):
        if levels < 1:
            raise ConfigurationError("levels must be >= 1")
        self.fusion_shape = fusion_shape
        self.levels = levels
        self.scene = scene if scene is not None else SyntheticScene()
        self.power_model = power_model

        self.engines = {e.name: e for e in default_engines()}
        self.scheduler = OnlineScheduler(tuple(self.engines.values()),
                                         probe_frames=1, reprobe_every=20)
        self.registration = (DtcwtRegistration(levels=max(2, levels),
                                               max_shift=6)
                             if use_registration else None)
        self._rig_estimates: List[tuple] = []
        self.temporal = TemporalFusion(
            fusion=ImageFusion(levels=levels)) if use_temporal else None
        self.monitor = QualityMonitor() if use_monitor else None
        self.telemetry = FrameTelemetry(target_fps=target_fps,
                                        energy_budget_mj=energy_budget_mj)

        # one capture pipeline reused across engines (the cameras do not
        # care which engine fuses); fusion is re-run per chosen engine
        self._pipeline = FusionPipeline(
            engine=self.engines["neon"], fusion_shape=fusion_shape,
            levels=levels, scene=self.scene, power_model=power_model,
        )
        self._fusers = {
            name: ImageFusion(transform=engine.transform(levels))
            for name, engine in self.engines.items()
        }

    # ------------------------------------------------------------------
    def _acquire(self):
        record = None
        while record is None:
            record = self._pipeline.step()
        return record.visible, record.thermal

    def _calibrate_rig(self, visible, thermal):
        """Static-rig calibration: collect per-frame estimates, apply the
        median only once it is stable and consistent.

        A co-located camera pair has one fixed offset; per-frame
        estimates that saturate the search bound or disagree with the
        consensus are measurement noise, not motion, and applying them
        would misalign a well-aligned rig.
        """
        result = self.registration.estimate(visible, thermal)
        bound = self.registration.max_shift
        if abs(result.dy) < bound and abs(result.dx) < bound:
            self._rig_estimates.append((result.dy, result.dx))
        if len(self._rig_estimates) < 3:
            return None
        recent = self._rig_estimates[-5:]
        dy = float(np.median([e[0] for e in recent]))
        dx = float(np.median([e[1] for e in recent]))
        spread = max(abs(e[0] - dy) + abs(e[1] - dx) for e in recent)
        if spread > 2.0:
            return None  # estimates disagree: no confident calibration
        if round(dy) == 0 and round(dx) == 0:
            return None  # rig already aligned
        return int(round(dy)), int(round(dx))

    def run(self, n_frames: int = 10) -> SessionReport:
        if n_frames < 1:
            raise ConfigurationError("n_frames must be >= 1")
        engine_usage: Dict[str, int] = {}
        actions: Dict[str, int] = {}
        shift_total = 0.0

        for _ in range(n_frames):
            visible, thermal = self._acquire()

            if self.registration is not None:
                offset = self._calibrate_rig(visible, thermal)
                if offset is not None:
                    thermal = np.roll(np.roll(thermal, offset[0], axis=0),
                                      offset[1], axis=1)
                    shift_total += float(np.hypot(*offset))

            engine = self.scheduler.next_engine()
            engine_usage[engine.name] = engine_usage.get(engine.name, 0) + 1

            if self.temporal is not None:
                self.temporal.fusion = self._fusers[engine.name]
                fused = self.temporal.fuse(visible, thermal)
            else:
                fused = self._fusers[engine.name].fuse(visible,
                                                       thermal).fused

            action = ACTION_FUSE
            if self.monitor is not None:
                reading = self.monitor.observe(visible, thermal, fused)
                action = reading.action
            actions[action] = actions.get(action, 0) + 1

            seconds = engine.frame_time(self.fusion_shape,
                                        self.levels).total_s
            self.scheduler.observe(engine, seconds)
            mj = seconds * self.power_model.power_w(engine.power_mode) * 1e3
            self.telemetry.record(seconds, mj)

        summary = self.telemetry.summary()
        return SessionReport(
            frames=n_frames,
            engine_usage=engine_usage,
            actions=actions,
            alarms=self.monitor.alarms if self.monitor else 0,
            mean_qabf=self.monitor.mean_qabf() if self.monitor else 0.0,
            telemetry=summary.as_dict(),
            registered_shift_px=shift_total / n_frames,
        )
