"""Deprecated "everything on" session (superseded by :mod:`repro.session`).

:class:`AdvancedFusionSession` assembled online adaptive engine
selection, registration, temporal fusion, quality monitoring and
telemetry.  All of that now lives behind the unified
:class:`repro.session.FusionSession` facade — this module is a thin
shim that maps the old constructor and report onto it::

    from repro.session import FusionConfig, FusionSession
    FusionSession(FusionConfig(engine="online", registration=True,
                               temporal=True, monitor=True)).run(10)
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Optional

from ..hw.power import DEFAULT_POWER_MODEL, PowerModel
from ..session import FusionConfig, FusionSession
from ..types import FrameShape
from ..video.scene import SyntheticScene


@dataclass
class SessionReport:
    """Legacy report shape of an advanced session run."""

    frames: int
    engine_usage: Dict[str, int]
    actions: Dict[str, int]
    alarms: int
    mean_qabf: float
    telemetry: Dict[str, float]
    registered_shift_px: float


class AdvancedFusionSession:
    """Deprecated: use :class:`repro.session.FusionSession`."""

    def __init__(self, fusion_shape: FrameShape = FrameShape(88, 72),
                 levels: int = 3,
                 scene: Optional[SyntheticScene] = None,
                 use_registration: bool = True,
                 use_temporal: bool = True,
                 use_monitor: bool = True,
                 target_fps: float = 25.0,
                 energy_budget_mj: Optional[float] = None,
                 power_model: PowerModel = DEFAULT_POWER_MODEL):
        warnings.warn(
            "AdvancedFusionSession is deprecated; use "
            "repro.session.FusionSession(FusionConfig(engine='online', ...)) "
            "instead",
            DeprecationWarning, stacklevel=2,
        )
        self.session = FusionSession(FusionConfig(
            engine="online",
            fusion_shape=fusion_shape,
            levels=levels,
            scene=scene,
            registration=use_registration,
            temporal=use_temporal,
            monitor=use_monitor,
            target_fps=target_fps,
            energy_budget_mj=energy_budget_mj,
            power_model=power_model,
            quality_metrics=False,
            keep_records=False,
        ))
        self.fusion_shape = fusion_shape
        self.levels = levels
        self.scene = self.session.capture_source().scene
        self.power_model = power_model

    @property
    def scheduler(self):
        return self.session.scheduler

    @property
    def monitor(self):
        return self.session.monitor

    @property
    def telemetry(self):
        return self.session.telemetry

    def run(self, n_frames: int = 10) -> SessionReport:
        report = self.session.run(n_frames)
        return SessionReport(
            frames=report.frames,
            engine_usage=report.engine_usage,
            actions=report.actions,
            alarms=report.alarms,
            mean_qabf=report.mean_qabf,
            telemetry=report.telemetry,
            registered_shift_px=report.registered_shift_px,
        )
