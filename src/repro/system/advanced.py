"""Deprecated module: the "everything on" session lives in
:mod:`repro.session`.

``AdvancedFusionSession`` (online adaptive engine selection +
registration + temporal fusion + quality monitoring + telemetry) was
first reduced to a wrapper over :class:`repro.session.FusionSession`
and is now a pure re-export stub: accessing any name here warns and
hands back the session-layer equivalent.  The legacy wrapper class and
its ``SessionReport`` shape are gone — port callers to::

    from repro.session import FusionConfig, FusionSession
    FusionSession(FusionConfig(engine="online", registration=True,
                               temporal=True, monitor=True)).run(10)
"""

from __future__ import annotations

import warnings

__all__ = ["AdvancedFusionSession", "SessionReport"]


def _resolve(name: str):
    from ..session import FusionReport, FusionSession
    return {
        "AdvancedFusionSession": FusionSession,
        "SessionReport": FusionReport,
    }[name]


def __getattr__(name: str):
    if name in __all__:
        warnings.warn(
            f"repro.system.advanced.{name} is deprecated; use the "
            f"repro.session API (FusionSession/FusionConfig) instead",
            DeprecationWarning, stacklevel=2,
        )
        return _resolve(name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
