"""Compatibility re-export; the telemetry now lives with the session.

:class:`FrameTelemetry` and :class:`TelemetrySummary` moved to
:mod:`repro.session.telemetry` when the unified :class:`FusionSession`
facade subsumed the system classes.  Import from there in new code.
"""

from ..session.telemetry import FrameTelemetry, TelemetrySummary

__all__ = ["FrameTelemetry", "TelemetrySummary"]
