"""Deprecated alias; the telemetry lives with the session.

:class:`FrameTelemetry` and :class:`TelemetrySummary` moved to
:mod:`repro.session.telemetry` when the unified :class:`FusionSession`
facade subsumed the system classes.  This module keeps old imports
working — the attributes *are* the session classes, there is exactly
one implementation — but, like the other :mod:`repro.system` shims, it
warns: import from :mod:`repro.session` (or
:mod:`repro.session.telemetry`) in new code.
"""

from __future__ import annotations

import warnings

from ..session import telemetry as _telemetry

__all__ = ["FrameTelemetry", "TelemetrySummary"]


def __getattr__(name: str):
    if name in __all__:
        warnings.warn(
            f"repro.system.telemetry.{name} is deprecated; import it "
            f"from repro.session.telemetry",
            DeprecationWarning, stacklevel=2,
        )
        return getattr(_telemetry, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
