"""Sweep helpers and report formatting shared by benchmarks and the CLI.

The paper's evaluation is a grid: {ARM, ARM+NEON, ARM+FPGA} x five
frame sizes x {forward, inverse, total, energy}.  These helpers run
that grid against the engine models and lay the rows out the way the
figures do, so every ``bench_fig9*``/``bench_fig10`` file is a thin
wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..core.adaptive import default_engines
from ..hw.engine import Engine
from ..hw.power import DEFAULT_POWER_MODEL, PowerModel
from ..types import PAPER_FRAME_SIZES, FrameShape


@dataclass
class SweepRow:
    """One frame size's numbers across engines."""

    shape: FrameShape
    values: Dict[str, float]  # engine name -> metric value


def sweep(metric: Callable[[Engine, FrameShape], float],
          engines: Optional[Sequence[Engine]] = None,
          sizes: Sequence[FrameShape] = PAPER_FRAME_SIZES) -> List[SweepRow]:
    """Evaluate ``metric`` for every engine at every frame size."""
    engines = tuple(engines) if engines is not None else default_engines()
    rows = []
    for shape in sizes:
        rows.append(SweepRow(
            shape=shape,
            values={e.name: metric(e, shape) for e in engines},
        ))
    return rows


def forward_stage_sweep(levels: int = 3, frames: int = 10) -> List[SweepRow]:
    """Fig. 9(a): forward DT-CWT seconds for ``frames`` fused frames."""
    return sweep(lambda e, s: frames * e.forward_stage_time(s, levels))


def inverse_stage_sweep(levels: int = 3, frames: int = 10) -> List[SweepRow]:
    """Fig. 9(c): inverse DT-CWT seconds for ``frames`` fused frames."""
    return sweep(lambda e, s: frames * e.inverse_stage_time(s, levels))


def total_time_sweep(levels: int = 3, frames: int = 10) -> List[SweepRow]:
    """Fig. 9(b): decompose+fuse+reconstruct seconds for ``frames`` frames."""
    return sweep(lambda e, s: frames * e.frame_time(s, levels).total_s)


def energy_sweep(levels: int = 3, frames: int = 10,
                 power_model: PowerModel = DEFAULT_POWER_MODEL) -> List[SweepRow]:
    """Fig. 10: total energy (mJ) for ``frames`` fused frames."""
    return sweep(lambda e, s: (frames * e.frame_time(s, levels).total_s
                               * power_model.power_w(e.power_mode) * 1e3))


def format_rows(rows: Sequence[SweepRow], unit: str,
                title: str, mode_names: Sequence[str] = ("arm", "neon", "fpga"),
                precision: int = 3) -> str:
    """Render sweep rows as the aligned text table the benches print."""
    header = f"{'frame size':>12} | " + " | ".join(
        f"{name.upper():>10}" for name in mode_names)
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for row in rows:
        cells = " | ".join(f"{row.values[name]:10.{precision}f}"
                           for name in mode_names)
        lines.append(f"{str(row.shape):>12} | {cells}")
    lines.append(f"(values in {unit})")
    return "\n".join(lines)


def find_crossover(rows: Sequence[SweepRow], a: str = "fpga",
                   b: str = "neon") -> Optional[FrameShape]:
    """First frame size (ascending) at which engine ``a`` beats ``b``."""
    for row in rows:
        if row.values[a] < row.values[b]:
            return row.shape
    return None
