"""Top-level system assembly (Section VI) and sweep runtime."""

from .fusion_system import ENGINE_NAMES, SystemReport, VideoFusionSystem, make_engine
from .advanced import AdvancedFusionSession, SessionReport
# imported from the one real implementation, not the .telemetry shim,
# so `import repro.system` stays warning-free; only explicit use of
# the deprecated module path triggers its DeprecationWarning
from ..session.telemetry import FrameTelemetry, TelemetrySummary
from .runtime import (
    SweepRow,
    energy_sweep,
    find_crossover,
    format_rows,
    forward_stage_sweep,
    inverse_stage_sweep,
    sweep,
    total_time_sweep,
)

__all__ = [
    "ENGINE_NAMES", "SystemReport", "VideoFusionSystem", "make_engine",
    "SweepRow", "energy_sweep", "find_crossover", "format_rows",
    "forward_stage_sweep", "inverse_stage_sweep", "sweep", "total_time_sweep",
    "FrameTelemetry", "TelemetrySummary",
    "AdvancedFusionSession", "SessionReport",
]
