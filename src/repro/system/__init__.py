"""Top-level system assembly (Section VI) and sweep runtime.

The live content of this package is the Fig. 9/Fig. 10 sweep runtime;
the pre-session entry points (``VideoFusionSystem``,
``AdvancedFusionSession`` and friends) are deprecated re-export stubs
resolved lazily, so importing :mod:`repro` or :mod:`repro.system`
stays warning-free — only *touching* a deprecated name warns.
"""

# imported from the one real implementation, not the .telemetry shim,
# so `import repro.system` stays warning-free; only explicit use of
# the deprecated module path triggers its DeprecationWarning
from ..session.telemetry import FrameTelemetry, TelemetrySummary
from .runtime import (
    SweepRow,
    energy_sweep,
    find_crossover,
    format_rows,
    forward_stage_sweep,
    inverse_stage_sweep,
    sweep,
    total_time_sweep,
)

#: Deprecated attribute -> shim module that resolves (and warns for) it.
_DEPRECATED = {
    "ENGINE_NAMES": "fusion_system",
    "SystemReport": "fusion_system",
    "VideoFusionSystem": "fusion_system",
    "make_engine": "fusion_system",
    "AdvancedFusionSession": "advanced",
    "SessionReport": "advanced",
}

__all__ = [
    "SweepRow", "energy_sweep", "find_crossover", "format_rows",
    "forward_stage_sweep", "inverse_stage_sweep", "sweep", "total_time_sweep",
    "FrameTelemetry", "TelemetrySummary",
]


def __getattr__(name: str):
    module = _DEPRECATED.get(name)
    if module is not None:
        from importlib import import_module
        return getattr(import_module(f".{module}", __package__), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(__all__) | set(_DEPRECATED))
