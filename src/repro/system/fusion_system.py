"""Deprecated batch entry point (superseded by :mod:`repro.session`).

:class:`VideoFusionSystem` was the original top-level object: cameras +
capture substrate + fusion engine + power accounting with a fixed or
cost-model-selected engine.  It is now a thin shim over
:class:`repro.session.FusionSession`, kept so existing code keeps
working; new code should build a :class:`repro.session.FusionConfig`
instead::

    from repro.session import FusionConfig, FusionSession
    FusionSession(FusionConfig(engine="adaptive")).run(10)
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import ConfigurationError
from ..hw.power import DEFAULT_POWER_MODEL, PowerModel
from ..hw.registry import create_engine, engine_names
from ..session import FusionConfig, FusionReport, FusionSession
from ..types import FrameShape
from ..video.pipeline import FusedFrameRecord, PipelineReport
from ..video.scene import SyntheticScene

#: Engine names the legacy constructor accepts: the registry's engines
#: plus the cost-model scheduler.  (A snapshot at import time; the
#: constructor validates against the live registry, so engines
#: registered later are also accepted.  The session-only "online"
#: scheduler is rejected here, as the original class rejected it.)
ENGINE_NAMES = engine_names() + ("adaptive",)

#: Legacy alias for the registry factory (same validation, same error).
make_engine = create_engine


@dataclass
class SystemReport:
    """Legacy report shape: what a run produced and what it would cost."""

    engine_used: str
    pipeline: PipelineReport
    quality: Dict[str, float] = field(default_factory=dict)

    @property
    def frames(self) -> int:
        return self.pipeline.frames

    @property
    def model_fps(self) -> float:
        return self.pipeline.model_fps

    @property
    def millijoules_per_frame(self) -> float:
        return self.pipeline.millijoules_per_frame


def _as_pipeline_report(report: FusionReport) -> PipelineReport:
    """Downgrade a unified report to the legacy pipeline shape."""
    return PipelineReport(
        frames=report.frames,
        model_seconds_total=report.model_seconds_total,
        model_millijoules_total=report.model_millijoules_total,
        fifo_dropped=report.fifo_dropped,
        decode_errors=report.decode_errors,
        records=[
            FusedFrameRecord(
                frame=result.frame,
                visible=result.visible,
                thermal=result.thermal,
                model_seconds=result.model_seconds,
                model_millijoules=result.model_millijoules,
            )
            for result in report.records
        ],
    )


class VideoFusionSystem:
    """Deprecated: use :class:`repro.session.FusionSession`."""

    def __init__(self, engine: str = "adaptive",
                 fusion_shape: FrameShape = FrameShape(88, 72),
                 levels: int = 3,
                 scene: Optional[SyntheticScene] = None,
                 power_model: PowerModel = DEFAULT_POWER_MODEL,
                 objective: str = "energy"):
        warnings.warn(
            "VideoFusionSystem is deprecated; use "
            "repro.session.FusionSession(FusionConfig(...)) instead",
            DeprecationWarning, stacklevel=2,
        )
        accepted = engine_names() + ("adaptive",)
        if engine not in accepted:
            # the session also knows "online"; the legacy class did not
            raise ConfigurationError(
                f"unknown engine {engine!r}; expected one of {accepted}"
            )
        self.session = FusionSession(FusionConfig(
            engine=engine,
            fusion_shape=fusion_shape,
            levels=levels,
            scene=scene,
            power_model=power_model,
            objective=objective,
        ))
        self.requested_engine = engine
        self.fusion_shape = fusion_shape
        self.levels = levels
        self.scene = self.session.capture_source().scene
        self.power_model = power_model
        self.decision = self.session.decision

    @property
    def engine(self):
        return self.session.engine

    @property
    def pipeline(self):
        raise AttributeError(
            "VideoFusionSystem.pipeline was removed with the session "
            "refactor; per-frame records live on run() reports and the "
            "capture chain is session.capture_source()"
        )

    def run(self, n_frames: int = 10, with_quality: bool = True) -> SystemReport:
        """Fuse ``n_frames`` pairs; optionally score fusion quality."""
        previous = self.session.config.quality_metrics
        self.session.config.quality_metrics = with_quality
        try:
            report = self.session.run(n_frames)
        finally:
            self.session.config.quality_metrics = previous
        return SystemReport(
            engine_used=report.engine_used,
            pipeline=_as_pipeline_report(report),
            quality=report.quality,
        )
