"""The complete video fusion system (paper Section VI).

:class:`VideoFusionSystem` is the top-level object a user of this
library instantiates: cameras + capture substrate + fusion engine +
power accounting, with the engine either fixed ("arm", "neon", "fpga")
or chosen at run time by the adaptive scheduler — the configuration the
paper's conclusion recommends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.adaptive import CostModelScheduler
from ..core.metrics import fusion_report
from ..errors import ConfigurationError
from ..hw.arm import ArmEngine
from ..hw.engine import Engine
from ..hw.fpga import FpgaEngine
from ..hw.neon import NeonEngine
from ..hw.power import DEFAULT_POWER_MODEL, PowerModel
from ..types import FrameShape
from ..video.pipeline import FusionPipeline, PipelineReport
from ..video.scene import SyntheticScene

ENGINE_NAMES = ("arm", "neon", "fpga", "adaptive")


@dataclass
class SystemReport:
    """What a system run produced and what it would have cost."""

    engine_used: str
    pipeline: PipelineReport
    quality: Dict[str, float] = field(default_factory=dict)

    @property
    def frames(self) -> int:
        return self.pipeline.frames

    @property
    def model_fps(self) -> float:
        return self.pipeline.model_fps

    @property
    def millijoules_per_frame(self) -> float:
        return self.pipeline.millijoules_per_frame


def make_engine(name: str) -> Engine:
    """Engine factory used by the CLI and the examples."""
    engines = {"arm": ArmEngine, "neon": NeonEngine, "fpga": FpgaEngine}
    if name not in engines:
        raise ConfigurationError(
            f"unknown engine {name!r}; expected one of {sorted(engines)}"
        )
    return engines[name]()


class VideoFusionSystem:
    """Cameras + capture + DT-CWT fusion on a selectable engine."""

    def __init__(self, engine: str = "adaptive",
                 fusion_shape: FrameShape = FrameShape(88, 72),
                 levels: int = 3,
                 scene: Optional[SyntheticScene] = None,
                 power_model: PowerModel = DEFAULT_POWER_MODEL,
                 objective: str = "energy"):
        if engine not in ENGINE_NAMES:
            raise ConfigurationError(
                f"unknown engine {engine!r}; expected one of {ENGINE_NAMES}"
            )
        self.requested_engine = engine
        self.fusion_shape = fusion_shape
        self.levels = levels
        self.scene = scene if scene is not None else SyntheticScene()
        self.power_model = power_model

        if engine == "adaptive":
            scheduler = CostModelScheduler(objective=objective,
                                           power_model=power_model)
            decision = scheduler.choose(fusion_shape, levels)
            self.engine: Engine = decision.engine
            self.decision = decision
        else:
            self.engine = make_engine(engine)
            self.decision = None

        self.pipeline = FusionPipeline(
            engine=self.engine,
            fusion_shape=fusion_shape,
            levels=levels,
            scene=self.scene,
            power_model=power_model,
        )

    def run(self, n_frames: int = 10, with_quality: bool = True) -> SystemReport:
        """Fuse ``n_frames`` pairs; optionally score fusion quality."""
        report = self.pipeline.run(n_frames)
        quality: Dict[str, float] = {}
        if with_quality and report.records:
            metrics: List[Dict[str, float]] = []
            for record in report.records:
                metrics.append(fusion_report(record.visible, record.thermal,
                                             record.frame.pixels.astype(float)))
            quality = {key: float(np.mean([m[key] for m in metrics]))
                       for key in metrics[0]}
        return SystemReport(
            engine_used=self.engine.name,
            pipeline=report,
            quality=quality,
        )
