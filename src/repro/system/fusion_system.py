"""Deprecated module: the batch entry point lives in :mod:`repro.session`.

``VideoFusionSystem`` (the original top-level object) was first
reduced to a wrapper over :class:`repro.session.FusionSession` and is
now a pure re-export stub: accessing any name here warns and hands
back the session-layer equivalent.  The legacy wrapper class, its
``SystemReport`` shape and the constructor-signature translation are
gone — port callers to::

    from repro.session import FusionConfig, FusionSession
    FusionSession(FusionConfig(engine="adaptive")).run(10)

The mapping this stub serves:

==================  =========================================
legacy name         session-layer equivalent
==================  =========================================
VideoFusionSystem   repro.session.FusionSession
SystemReport        repro.session.FusionReport
make_engine         repro.hw.registry.create_engine
ENGINE_NAMES        repro.hw.registry.engine_names() and the
                    cost-model scheduler name "adaptive"
==================  =========================================
"""

from __future__ import annotations

import warnings

__all__ = ["ENGINE_NAMES", "SystemReport", "VideoFusionSystem",
           "make_engine"]


def _resolve(name: str):
    from ..hw.registry import create_engine, engine_names
    from ..session import FusionReport, FusionSession
    return {
        "VideoFusionSystem": FusionSession,
        "SystemReport": FusionReport,
        "make_engine": create_engine,
        "ENGINE_NAMES": engine_names() + ("adaptive",),
    }[name]


def __getattr__(name: str):
    if name in __all__:
        warnings.warn(
            f"repro.system.fusion_system.{name} is deprecated; use the "
            f"repro.session API (FusionSession/FusionConfig) instead",
            DeprecationWarning, stacklevel=2,
        )
        return _resolve(name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
