"""Output FIFO with AXI-stream style handshaking (Fig. 7's ``OutPut FIFO``).

The paper: "The AXI control signals guarantee that a new frame will be
stored in the output FIFO only after the previous frame is taken by the
wave engine hardware."  That is a ready/valid handshake around a
single-frame (or small) buffer; when the consumer is slower than the
camera, frames are *dropped at the producer* rather than torn — the
behaviour the pipeline tests assert.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

import numpy as np

from ..errors import VideoError


@dataclass
class FifoStats:
    pushed: int = 0
    dropped: int = 0
    popped: int = 0

    @property
    def accepted(self) -> int:
        return self.pushed - self.dropped


class FrameFifo:
    """Bounded frame queue with producer-drop semantics."""

    def __init__(self, capacity: int = 1):
        if capacity < 1:
            raise VideoError(f"FIFO capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._queue: Deque[np.ndarray] = deque()
        self.stats = FifoStats()

    # -- producer side (camera / decoder) --------------------------------
    @property
    def ready(self) -> bool:
        """AXI 'ready' seen by the producer: space for a new frame."""
        return len(self._queue) < self.capacity

    def push(self, frame: np.ndarray) -> bool:
        """Offer a frame; returns False (dropped) when the FIFO is full."""
        self.stats.pushed += 1
        if not self.ready:
            self.stats.dropped += 1
            return False
        self._queue.append(frame)
        return True

    # -- consumer side (wavelet engine) -----------------------------------
    @property
    def valid(self) -> bool:
        """AXI 'valid' seen by the consumer: a frame is waiting."""
        return bool(self._queue)

    def pop(self) -> Optional[np.ndarray]:
        """Take the oldest frame, or None when empty."""
        if not self._queue:
            return None
        self.stats.popped += 1
        return self._queue.popleft()

    @property
    def occupancy(self) -> int:
        return len(self._queue)

    def clear(self) -> None:
        self._queue.clear()
