"""Capture-to-fusion pipeline (the paper's Fig. 7 data flow).

Wires the substrate together exactly like the system architecture
section describes:

* webcam frames arrive over USB on the PS and are grayscaled;
* thermal frames arrive as BT.656 bytes, are decoded by the PL decoder
  model, scaled 720x243 -> 640x480, and buffered in the output FIFO
  under the frame-level handshake;
* both modalities are registered to the fusion geometry (center crop of
  the scaled thermal field of view, matching resize of the webcam), and
  handed to the DT-CWT fusion engine.

The pipeline tracks FIFO statistics, decoder errors and — through the
engine's analytic model — the platform time and energy each fused frame
would cost on the chosen hardware configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.fusion import ImageFusion
from ..errors import VideoError
from ..hw.engine import Engine
from ..hw.power import DEFAULT_POWER_MODEL, PowerModel
from ..types import FrameShape
from .capture import CaptureChain
from .frames import VideoFrame, center_crop
from .scaler import resize_to
from .scene import SyntheticScene


@dataclass
class FusedFrameRecord:
    """One fused output with its provenance and modelled cost."""

    frame: VideoFrame
    visible: np.ndarray
    thermal: np.ndarray
    model_seconds: float
    model_millijoules: float


@dataclass
class PipelineReport:
    """Aggregate statistics of a pipeline run."""

    frames: int = 0
    model_seconds_total: float = 0.0
    model_millijoules_total: float = 0.0
    fifo_dropped: int = 0
    decode_errors: int = 0
    records: List[FusedFrameRecord] = field(default_factory=list)

    @property
    def model_fps(self) -> float:
        if self.model_seconds_total <= 0:
            return 0.0
        return self.frames / self.model_seconds_total

    @property
    def millijoules_per_frame(self) -> float:
        if self.frames == 0:
            return 0.0
        return self.model_millijoules_total / self.frames


class FusionPipeline:
    """End-to-end capture -> decode -> scale -> fuse pipeline."""

    def __init__(self, engine: Engine,
                 fusion_shape: FrameShape = FrameShape(88, 72),
                 levels: int = 3,
                 scene: Optional[SyntheticScene] = None,
                 power_model: PowerModel = DEFAULT_POWER_MODEL,
                 fifo_capacity: int = 1,
                 keep_records: bool = True):
        if levels < 1:
            raise VideoError(f"levels must be >= 1, got {levels}")
        self.engine = engine
        self.fusion_shape = fusion_shape
        self.levels = levels
        self.scene = scene if scene is not None else SyntheticScene()
        self.power_model = power_model
        self.keep_records = keep_records

        self.capture = CaptureChain(scene=self.scene,
                                    fifo_capacity=fifo_capacity)
        # the chain's parts stay addressable the way they always were
        self.webcam = self.capture.webcam
        self.thermal = self.capture.thermal
        self.decoder = self.capture.decoder
        self.scaler = self.capture.scaler
        self.fifo = self.capture.fifo
        self.fusion = ImageFusion(transform=engine.transform(levels))
        self._fused_count = 0

    # ------------------------------------------------------------------
    def _register(self, visible: VideoFrame,
                  thermal_scaled: np.ndarray) -> tuple:
        """Map both modalities onto the fusion geometry."""
        rows, cols = self.fusion_shape.array_shape
        vis = resize_to(visible.to_gray().as_float(), (rows, cols))
        # thermal: central field of view of the scaled 640x480 frame
        crop = center_crop(thermal_scaled, 480, 640)
        th = resize_to(crop.astype(np.float64), (rows, cols))
        return vis, th

    def step(self) -> Optional[FusedFrameRecord]:
        """Produce one fused frame (or None if the FIFO starved)."""
        captured = self.capture.capture_pair()
        if captured is None:
            return None
        visible, thermal_scaled = captured
        vis, th = self._register(visible, thermal_scaled)
        result = self.fusion.fuse(vis, th)

        seconds = self.engine.frame_time(self.fusion_shape, self.levels).total_s
        mj = seconds * self.power_model.power_w(self.engine.power_mode) * 1e3
        fused_frame = VideoFrame(
            pixels=np.clip(np.round(result.fused), 0, 255).astype(np.uint8),
            timestamp_s=visible.timestamp_s,
            frame_id=self._fused_count,
            source="fused",
            metadata={"engine": self.engine.name},
        )
        self._fused_count += 1
        return FusedFrameRecord(
            frame=fused_frame,
            visible=vis,
            thermal=th,
            model_seconds=seconds,
            model_millijoules=mj,
        )

    def run(self, n_frames: int) -> PipelineReport:
        """Fuse ``n_frames`` frame pairs and aggregate statistics."""
        if n_frames < 1:
            raise VideoError(f"n_frames must be >= 1, got {n_frames}")
        report = PipelineReport()
        while report.frames < n_frames:
            record = self.step()
            if record is None:
                continue
            report.frames += 1
            report.model_seconds_total += record.model_seconds
            report.model_millijoules_total += record.model_millijoules
            if self.keep_records:
                report.records.append(record)
        report.fifo_dropped = self.fifo.stats.dropped
        report.decode_errors = (self.decoder.stats.xy_errors
                                + self.decoder.stats.resyncs)
        return report
