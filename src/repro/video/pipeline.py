"""Capture-to-fusion pipeline (the paper's Fig. 7 data flow).

Wires the substrate together exactly like the system architecture
section describes:

* webcam frames arrive over USB on the PS and are grayscaled;
* thermal frames arrive as BT.656 bytes, are decoded by the PL decoder
  model, scaled 720x243 -> 640x480, and buffered in the output FIFO
  under the frame-level handshake;
* both modalities are registered to the fusion geometry (center crop of
  the scaled thermal field of view, matching resize of the webcam), and
  handed to the DT-CWT fusion engine.

The pipeline tracks FIFO statistics, decoder errors and — through the
engine's analytic model — the platform time and energy each fused frame
would cost on the chosen hardware configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

from ..core.fusion import ImageFusion
from ..errors import VideoError
from ..exec import FrameProcessor, make_executor
from ..hw.engine import Engine
from ..hw.power import DEFAULT_POWER_MODEL, PowerModel
from ..types import FrameShape
from .capture import CaptureChain
from .frames import VideoFrame, center_crop
from .scaler import resize_to
from .scene import SyntheticScene


@dataclass
class FusedFrameRecord:
    """One fused output with its provenance and modelled cost."""

    frame: VideoFrame
    visible: np.ndarray
    thermal: np.ndarray
    model_seconds: float
    model_millijoules: float


@dataclass
class PipelineReport:
    """Aggregate statistics of a pipeline run."""

    frames: int = 0
    model_seconds_total: float = 0.0
    model_millijoules_total: float = 0.0
    fifo_dropped: int = 0
    decode_errors: int = 0
    records: List[FusedFrameRecord] = field(default_factory=list)

    @property
    def model_fps(self) -> float:
        if self.model_seconds_total <= 0:
            return 0.0
        return self.frames / self.model_seconds_total

    @property
    def millijoules_per_frame(self) -> float:
        if self.frames == 0:
            return 0.0
        return self.model_millijoules_total / self.frames


@dataclass
class _PipelineTask:
    """One frame in flight between the legacy pipeline's stages."""

    visible: np.ndarray
    thermal: np.ndarray
    timestamp_s: float
    index: int
    pyr_visible: object = None
    pyr_thermal: object = None
    fused: Optional[np.ndarray] = None


class _PipelineProcessor(FrameProcessor):
    """The legacy pipeline's dataflow, expressed as executor stages.

    Concurrent workers get independent :class:`ImageFusion` lanes over
    the same engine (fresh backend state each), so any executor
    produces output numerically identical to the serial reference
    :meth:`FusionPipeline.step` loop.
    """

    def __init__(self, pipeline: "FusionPipeline"):
        self._pipeline = pipeline

    def make_contexts(self, n, engines=None):
        p = self._pipeline
        return [ImageFusion(transform=p.engine.transform(p.levels),
                            rule=p.fusion.rule)
                for _ in range(n)]

    def ingest(self, captured, index: int) -> _PipelineTask:
        p = self._pipeline
        visible, thermal_scaled = captured
        vis, th = p._register(visible, thermal_scaled)
        task = _PipelineTask(visible=vis, thermal=th,
                             timestamp_s=visible.timestamp_s,
                             index=p._fused_count)
        p._fused_count += 1
        return task

    def forward_visible(self, task, ctx=None):
        fuser = ctx if ctx is not None else self._pipeline.fusion
        task.pyr_visible = fuser.decompose(task.visible)

    def forward_thermal(self, task, ctx=None):
        fuser = ctx if ctx is not None else self._pipeline.fusion
        task.pyr_thermal = fuser.decompose(task.thermal)

    def fuse(self, task, ctx=None):
        fuser = ctx if ctx is not None else self._pipeline.fusion
        pyramid = fuser.combine(task.pyr_visible, task.pyr_thermal)
        task.fused = fuser.reconstruct(pyramid)

    def finalize(self, task) -> FusedFrameRecord:
        p = self._pipeline
        seconds = p.engine.frame_time(p.fusion_shape, p.levels).total_s
        mj = seconds * p.power_model.power_w(p.engine.power_mode) * 1e3
        fused_frame = VideoFrame(
            pixels=np.clip(np.round(task.fused), 0, 255).astype(np.uint8),
            timestamp_s=task.timestamp_s,
            frame_id=task.index,
            source="fused",
            metadata={"engine": p.engine.name},
        )
        return FusedFrameRecord(
            frame=fused_frame,
            visible=task.visible,
            thermal=task.thermal,
            model_seconds=seconds,
            model_millijoules=mj,
        )


class FusionPipeline:
    """End-to-end capture -> decode -> scale -> fuse pipeline.

    ``executor`` selects how :meth:`run` drives the frames (see
    :mod:`repro.exec`); the default serial executor reproduces the
    historical loop exactly, and every executor produces numerically
    identical records.
    """

    def __init__(self, engine: Engine,
                 fusion_shape: FrameShape = FrameShape(88, 72),
                 levels: int = 3,
                 scene: Optional[SyntheticScene] = None,
                 power_model: PowerModel = DEFAULT_POWER_MODEL,
                 fifo_capacity: int = 1,
                 keep_records: bool = True,
                 executor: str = "serial",
                 workers: int = 2,
                 queue_depth: int = 4):
        if levels < 1:
            raise VideoError(f"levels must be >= 1, got {levels}")
        self.engine = engine
        self.executor = executor
        self.workers = workers
        self.queue_depth = queue_depth
        self.fusion_shape = fusion_shape
        self.levels = levels
        self.scene = scene if scene is not None else SyntheticScene()
        self.power_model = power_model
        self.keep_records = keep_records

        self.capture = CaptureChain(scene=self.scene,
                                    fifo_capacity=fifo_capacity)
        # the chain's parts stay addressable the way they always were
        self.webcam = self.capture.webcam
        self.thermal = self.capture.thermal
        self.decoder = self.capture.decoder
        self.scaler = self.capture.scaler
        self.fifo = self.capture.fifo
        self.fusion = ImageFusion(transform=engine.transform(levels))
        self._fused_count = 0

    # ------------------------------------------------------------------
    def _register(self, visible: VideoFrame,
                  thermal_scaled: np.ndarray) -> tuple:
        """Map both modalities onto the fusion geometry."""
        rows, cols = self.fusion_shape.array_shape
        vis = resize_to(visible.to_gray().as_float(), (rows, cols))
        # thermal: central field of view of the scaled 640x480 frame
        crop = center_crop(thermal_scaled, 480, 640)
        th = resize_to(crop.astype(np.float64), (rows, cols))
        return vis, th

    def step(self) -> Optional[FusedFrameRecord]:
        """Produce one fused frame (or None if the FIFO starved)."""
        captured = self.capture.capture_pair()
        if captured is None:
            return None
        visible, thermal_scaled = captured
        vis, th = self._register(visible, thermal_scaled)
        result = self.fusion.fuse(vis, th)

        seconds = self.engine.frame_time(self.fusion_shape, self.levels).total_s
        mj = seconds * self.power_model.power_w(self.engine.power_mode) * 1e3
        fused_frame = VideoFrame(
            pixels=np.clip(np.round(result.fused), 0, 255).astype(np.uint8),
            timestamp_s=visible.timestamp_s,
            frame_id=self._fused_count,
            source="fused",
            metadata={"engine": self.engine.name},
        )
        self._fused_count += 1
        return FusedFrameRecord(
            frame=fused_frame,
            visible=vis,
            thermal=th,
            model_seconds=seconds,
            model_millijoules=mj,
        )

    def _captured_pairs(self) -> Iterator[tuple]:
        """Captures from the chain, skipping FIFO-starved fields."""
        while True:
            captured = self.capture.capture_pair()
            if captured is None:
                continue
            yield captured

    def run(self, n_frames: int) -> PipelineReport:
        """Fuse ``n_frames`` frame pairs and aggregate statistics.

        Frames are driven by the configured :mod:`repro.exec` executor
        rather than a private loop; :meth:`step` remains the manual
        single-frame path.
        """
        if n_frames < 1:
            raise VideoError(f"n_frames must be >= 1, got {n_frames}")
        report = PipelineReport()
        executor = make_executor(self.executor, workers=self.workers,
                                 queue_depth=self.queue_depth)
        processor = _PipelineProcessor(self)
        try:
            for record in executor.run(processor, self._captured_pairs(),
                                       limit=n_frames):
                report.frames += 1
                report.model_seconds_total += record.model_seconds
                report.model_millijoules_total += record.model_millijoules
                if self.keep_records:
                    report.records.append(record)
        finally:
            executor.close()
        report.fifo_dropped = self.fifo.stats.dropped
        report.decode_errors = (self.decoder.stats.xy_errors
                                + self.decoder.stats.resyncs)
        return report
