"""Capture substrate: synthetic scene, cameras, BT.656, scaler, FIFO."""

from .bt656 import Bt656Config, Bt656Decoder, DecoderStats, encode_frame
from .capture import CaptureChain
from .display import histogram_strip, render_text, stamp_text, triptych
from .faults import (
    DropoutChannel,
    FaultStats,
    NoisyByteChannel,
    StallingCamera,
    corrupt_stream,
)
from .fifo import FifoStats, FrameFifo
from .frames import FrameSource, VideoFrame, center_crop
from .pipeline import FusedFrameRecord, FusionPipeline, PipelineReport
from .recorder import PgmSequenceSource, StreamRecorder
from .scaler import VideoScaler, resize_to
from .scene import SyntheticScene, WarmObject
from .thermal import SENSOR_PROFILES, ThermalCameraSimulator
from .webcam import WebcamSimulator

__all__ = [
    "Bt656Config", "Bt656Decoder", "DecoderStats", "encode_frame",
    "CaptureChain",
    "FifoStats", "FrameFifo",
    "FrameSource", "VideoFrame", "center_crop",
    "FusedFrameRecord", "FusionPipeline", "PipelineReport",
    "VideoScaler", "resize_to",
    "SyntheticScene", "WarmObject",
    "SENSOR_PROFILES", "ThermalCameraSimulator",
    "WebcamSimulator",
    "histogram_strip", "render_text", "stamp_text", "triptych",
    "DropoutChannel", "FaultStats", "NoisyByteChannel",
    "StallingCamera", "corrupt_stream",
    "PgmSequenceSource", "StreamRecorder",
]
