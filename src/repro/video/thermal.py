"""Thermal camera simulator (Thermoteknix MicroCAM 384H XTi class).

The paper's LWIR camera outputs analog video that reaches the PL as a
BT.656 stream (Fig. 7).  This simulator renders the shared scene's
temperature field at the microbolometer's native resolution, embeds it
in the NTSC-style 720x243 field geometry and, on request, produces the
actual BT.656 byte stream for the decoder model — so the pipeline
exercises decode -> scale -> FIFO exactly like the hardware.

A low-resolution profile (80x60) mirrors the FLIR Lepton module the
paper cites as the motivation for its small 88x72 fusion frames.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import VideoError
from .bt656 import Bt656Config, encode_frame
from .frames import FrameSource, VideoFrame
from .scene import SyntheticScene

#: Native sensor geometries by camera profile.
SENSOR_PROFILES = {
    "microcam-384": (288, 384),   # rows, cols — MicroCAM 384H XTi
    "lepton": (60, 80),           # FLIR Lepton (paper's example constraint)
}


class ThermalCameraSimulator(FrameSource):
    """LWIR camera producing sensor frames and BT.656 field streams."""

    def __init__(self, scene: Optional[SyntheticScene] = None,
                 profile: str = "microcam-384", fps: float = 60.0,
                 netd_c: float = 0.08,
                 bt656_config: Optional[Bt656Config] = None):
        if profile not in SENSOR_PROFILES:
            raise VideoError(
                f"unknown thermal profile {profile!r}; known: "
                f"{sorted(SENSOR_PROFILES)}"
            )
        if fps <= 0:
            raise VideoError(f"fps must be positive, got {fps}")
        self.scene = scene if scene is not None else SyntheticScene()
        self.profile = profile
        self.rows, self.cols = SENSOR_PROFILES[profile]
        self.fps = fps
        self.netd_c = netd_c
        self.bt656_config = bt656_config if bt656_config is not None else Bt656Config()
        self._frame_id = 0

    def capture(self) -> VideoFrame:
        """Next sensor-resolution LWIR frame (uint8)."""
        t_s = self._frame_id / self.fps
        full = self.scene.render_thermal(t_s, netd_c=self.netd_c)
        # sample the scene down to the sensor geometry
        r_idx = np.linspace(0, full.shape[0] - 1, self.rows).round().astype(int)
        c_idx = np.linspace(0, full.shape[1] - 1, self.cols).round().astype(int)
        pixels = full[np.ix_(r_idx, c_idx)]
        frame = VideoFrame(
            pixels=np.clip(np.round(pixels), 0, 255).astype(np.uint8),
            timestamp_s=t_s,
            frame_id=self._frame_id,
            source="thermal",
            metadata={"profile": self.profile, "interface": "bt656/fmc"},
        )
        self._frame_id += 1
        return frame

    def capture_bt656(self) -> bytes:
        """Next frame as the BT.656 byte stream the PL decoder receives."""
        frame = self.capture()
        return encode_frame(frame.pixels, self.bt656_config,
                            field_bit=frame.frame_id % 2)
