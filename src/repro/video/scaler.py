"""Video scaler block (Fig. 7's ``Video_Scale``: 720x243 -> 640x480).

The thermal camera's decoded fields are NTSC-shaped (720 samples by 243
active lines); the PL scaler resamples them to the 640x480 @60 Hz frame
the rest of the pipeline consumes.  Bilinear interpolation in fixed
point (the hardware uses DSP multipliers) with a nearest-neighbour
option for the cheap configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import VideoError


@dataclass(frozen=True)
class VideoScaler:
    """Resamples frames between fixed geometries."""

    in_shape: Tuple[int, int] = (243, 720)   # (rows, cols)
    out_shape: Tuple[int, int] = (480, 640)
    method: str = "bilinear"

    def __post_init__(self) -> None:
        if self.method not in ("bilinear", "nearest"):
            raise VideoError(f"unknown scaling method {self.method!r}")
        for shape in (self.in_shape, self.out_shape):
            if len(shape) != 2 or shape[0] < 1 or shape[1] < 1:
                raise VideoError(f"bad scaler geometry {shape}")

    def scale(self, frame: np.ndarray) -> np.ndarray:
        """Resample ``frame`` (must match ``in_shape``) to ``out_shape``."""
        frame = np.asarray(frame)
        if frame.shape != self.in_shape:
            raise VideoError(
                f"scaler configured for {self.in_shape}, got {frame.shape}"
            )
        if self.method == "nearest":
            return self._nearest(frame)
        return self._bilinear(frame)

    def _nearest(self, frame: np.ndarray) -> np.ndarray:
        rows_out, cols_out = self.out_shape
        r_idx = np.linspace(0, frame.shape[0] - 1, rows_out).round().astype(int)
        c_idx = np.linspace(0, frame.shape[1] - 1, cols_out).round().astype(int)
        return frame[np.ix_(r_idx, c_idx)]

    def _bilinear(self, frame: np.ndarray) -> np.ndarray:
        rows_out, cols_out = self.out_shape
        rows_in, cols_in = frame.shape
        data = frame.astype(np.float64)

        r_pos = np.linspace(0, rows_in - 1, rows_out)
        c_pos = np.linspace(0, cols_in - 1, cols_out)
        r0 = np.floor(r_pos).astype(int)
        c0 = np.floor(c_pos).astype(int)
        r1 = np.minimum(r0 + 1, rows_in - 1)
        c1 = np.minimum(c0 + 1, cols_in - 1)
        wr = (r_pos - r0)[:, None]
        wc = (c_pos - c0)[None, :]

        top = data[np.ix_(r0, c0)] * (1 - wc) + data[np.ix_(r0, c1)] * wc
        bot = data[np.ix_(r1, c0)] * (1 - wc) + data[np.ix_(r1, c1)] * wc
        out = top * (1 - wr) + bot * wr
        if np.issubdtype(frame.dtype, np.integer):
            return np.clip(np.round(out), 0, 255).astype(frame.dtype)
        return out


def resize_to(frame: np.ndarray, shape: Tuple[int, int],
              method: str = "bilinear") -> np.ndarray:
    """Convenience: one-off resize of an arbitrary frame."""
    scaler = VideoScaler(in_shape=frame.shape[:2], out_shape=shape,
                         method=method)
    return scaler.scale(frame)
