"""USB webcam simulator (the paper's Logitech C160 on the PS USB-OTG).

Renders the shared scene in the visible band as an RGB frame, applies
simple camera behaviour (auto-exposure gain, sensor noise, 8-bit
quantization) and delivers frames at the configured rate on the
simulated clock.  The paper grayscales these frames before fusion;
:meth:`WebcamSimulator.capture_gray` does both steps.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import VideoError
from .frames import FrameSource, VideoFrame
from .scene import SyntheticScene


class WebcamSimulator(FrameSource):
    """Visible-band camera: VGA-ish sensor over USB.

    Parameters
    ----------
    scene:
        The shared world to image.
    width/height:
        Sensor geometry (default 352x288, CIF, like cheap USB cams).
    fps:
        Frame rate on the simulated clock.
    auto_exposure:
        When on, frames are gain-corrected toward a mid-gray target,
        mimicking the C160's AE loop.
    """

    def __init__(self, scene: Optional[SyntheticScene] = None,
                 width: int = 352, height: int = 288, fps: float = 30.0,
                 auto_exposure: bool = True, seed: int = 7):
        if fps <= 0:
            raise VideoError(f"fps must be positive, got {fps}")
        self.scene = scene if scene is not None else SyntheticScene()
        if (self.scene.width, self.scene.height) != (width, height):
            # render at scene resolution; the pipeline rescales anyway
            width, height = self.scene.width, self.scene.height
        self.width = width
        self.height = height
        self.fps = fps
        self.auto_exposure = auto_exposure
        self._rng = np.random.default_rng(seed)
        self._frame_id = 0

    def capture(self) -> VideoFrame:
        """Next RGB frame (channels-last uint8)."""
        t_s = self._frame_id / self.fps
        luma = self.scene.render_visible(t_s)
        if self.auto_exposure:
            mean = float(luma.mean())
            if mean > 1e-6:
                luma = np.clip(luma * (128.0 / mean), 0.0, 255.0)
        # a mild Bayer-ish chroma model: visible scene tinted by height
        r = np.clip(luma * 1.02, 0, 255)
        g = luma
        b = np.clip(luma * 0.96 + 4.0, 0, 255)
        rgb = np.stack([r, g, b], axis=-1)
        rgb += self._rng.normal(0.0, 1.0, rgb.shape)
        frame = VideoFrame(
            pixels=np.clip(np.round(rgb), 0, 255).astype(np.uint8),
            timestamp_s=t_s,
            frame_id=self._frame_id,
            source="webcam",
            metadata={"interface": "usb-otg", "format": "rgb"},
        )
        self._frame_id += 1
        return frame

    def capture_gray(self) -> VideoFrame:
        """Captured frame converted to luma (the fusion input)."""
        return self.capture().to_gray()
