"""Frame and stream types shared by the capture substrate."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..errors import VideoError


@dataclass
class VideoFrame:
    """One captured frame.

    ``pixels`` is a 2-D (grayscale) or 3-D (channels-last) uint8 array;
    ``timestamp_s`` the capture time on the simulated clock; ``source``
    a free-form tag ("webcam", "thermal", "fused", ...).
    """

    pixels: np.ndarray
    timestamp_s: float
    frame_id: int
    source: str = "unknown"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.pixels = np.asarray(self.pixels)
        if self.pixels.ndim not in (2, 3):
            raise VideoError(
                f"frame must be 2-D or 3-D, got shape {self.pixels.shape}"
            )

    @property
    def height(self) -> int:
        return self.pixels.shape[0]

    @property
    def width(self) -> int:
        return self.pixels.shape[1]

    @property
    def is_gray(self) -> bool:
        return self.pixels.ndim == 2

    def to_gray(self) -> "VideoFrame":
        """ITU-R BT.601 luma conversion (the paper grayscales the webcam)."""
        if self.is_gray:
            return self
        if self.pixels.shape[2] != 3:
            raise VideoError(
                f"expected 3 channels for gray conversion, got {self.pixels.shape}"
            )
        rgb = self.pixels.astype(np.float64)
        luma = 0.299 * rgb[..., 0] + 0.587 * rgb[..., 1] + 0.114 * rgb[..., 2]
        return VideoFrame(
            pixels=np.clip(np.round(luma), 0, 255).astype(np.uint8),
            timestamp_s=self.timestamp_s,
            frame_id=self.frame_id,
            source=self.source,
            metadata=dict(self.metadata),
        )

    def as_float(self) -> np.ndarray:
        """Float64 copy of the pixel data for transform input."""
        return self.pixels.astype(np.float64)


def center_crop(pixels: np.ndarray, rows: int, cols: int) -> np.ndarray:
    """Crop the central ``rows x cols`` window (pads by edge if short)."""
    if pixels.shape[0] < rows or pixels.shape[1] < cols:
        pad_r = max(0, rows - pixels.shape[0])
        pad_c = max(0, cols - pixels.shape[1])
        pixels = np.pad(pixels,
                        ((pad_r // 2, pad_r - pad_r // 2),
                         (pad_c // 2, pad_c - pad_c // 2)) +
                        (((0, 0),) if pixels.ndim == 3 else ()),
                        mode="edge")
    r0 = (pixels.shape[0] - rows) // 2
    c0 = (pixels.shape[1] - cols) // 2
    return pixels[r0: r0 + rows, c0: c0 + cols]


class FrameSource:
    """Minimal stream interface: ``capture()`` yields successive frames."""

    fps: float = 30.0

    def capture(self) -> VideoFrame:  # pragma: no cover - interface
        raise NotImplementedError

    def stream(self, count: int) -> Iterator[VideoFrame]:
        for _ in range(count):
            yield self.capture()
