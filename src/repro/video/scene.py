"""Synthetic multi-sensor scene model.

The paper's cameras watch a real scene (a person in a lab, Fig. 8); we
have no cameras, so this module renders a *shared world* into the two
modalities the system fuses:

* the **visible** rendering sees reflectance: textured background,
  high-frequency structure, illumination and shadows — but warm objects
  may be low contrast (a person in the dark);
* the **thermal** rendering sees temperature: warm bodies glow
  regardless of illumination, backgrounds are flat, optics are soft and
  the sensor adds NETD noise — but surface texture is invisible.

Because both renderings sample the same geometry, fusion genuinely adds
information (the motivating property of multi-sensor fusion), and the
ground-truth world lets tests assert that fused frames contain both the
visible-only texture and the thermal-only targets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..errors import VideoError


@dataclass
class WarmObject:
    """A moving warm target (person, vehicle) in world coordinates.

    Positions are fractions of the scene extent; velocity in fractions
    per second.  ``visible_contrast`` is deliberately small for people
    in low light — the case where fusion pays off.
    """

    x: float
    y: float
    vx: float
    vy: float
    radius: float
    temperature_c: float = 34.0
    visible_contrast: float = 10.0

    def position_at(self, t_s: float) -> Tuple[float, float]:
        """Bounce inside [0, 1] x [0, 1]."""
        def bounce(p0: float, v: float) -> float:
            p = p0 + v * t_s
            p = math.fmod(p, 2.0)
            if p < 0:
                p += 2.0
            return 2.0 - p if p > 1.0 else p
        return bounce(self.x, self.vx), bounce(self.y, self.vy)


@dataclass
class SyntheticScene:
    """A deterministic world renderable into visible and thermal frames."""

    width: int = 352
    height: int = 288
    seed: int = 2016
    ambient_c: float = 18.0
    illumination: float = 0.75
    objects: List[WarmObject] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.width < 8 or self.height < 8:
            raise VideoError("scene must be at least 8x8 pixels")
        if not self.objects:
            self.objects = [
                WarmObject(x=0.25, y=0.55, vx=0.05, vy=0.012, radius=0.06,
                           temperature_c=34.0, visible_contrast=8.0),
                WarmObject(x=0.70, y=0.35, vx=-0.03, vy=0.02, radius=0.10,
                           temperature_c=60.0, visible_contrast=25.0),
            ]
        rng = np.random.default_rng(self.seed)
        self._texture = rng.normal(0.0, 1.0, (self.height, self.width))
        # smooth the texture once so it has realistic spatial correlation
        self._texture = (self._texture
                         + np.roll(self._texture, 1, 0)
                         + np.roll(self._texture, 1, 1)
                         + np.roll(self._texture, (1, 1), (0, 1))) / 4.0
        self._grid_y, self._grid_x = np.mgrid[0:self.height, 0:self.width]
        self._gx = self._grid_x / max(1, self.width - 1)
        self._gy = self._grid_y / max(1, self.height - 1)
        self._noise_rng = np.random.default_rng(self.seed + 1)
        # the depth modality draws from its own stream so adding a
        # third render never perturbs the visible/thermal noise
        # sequence (N=2 streams stay bitwise-identical)
        self._depth_rng = np.random.default_rng(self.seed + 2)

    # ------------------------------------------------------------------
    def _object_masks(self, t_s: float) -> List[Tuple[np.ndarray, WarmObject]]:
        masks = []
        for obj in self.objects:
            ox, oy = obj.position_at(t_s)
            dist2 = ((self._gx - ox) ** 2 + (self._gy - oy) ** 2)
            masks.append((np.exp(-dist2 / (2.0 * obj.radius ** 2)), obj))
        return masks

    def render_visible(self, t_s: float, noise_sigma: float = 1.5) -> np.ndarray:
        """Visible-band frame (float, 0..255): texture + structure + objects."""
        base = 90.0 + 60.0 * self.illumination * self._gy
        # background structure: textured wall with strong vertical edge
        image = base + 18.0 * self._texture
        image += 35.0 * (self._gx > 0.62)              # bright doorway
        image += 12.0 * np.sin(2 * np.pi * self._gx * 12)  # blind slats
        for mask, obj in self._object_masks(t_s):
            image += obj.visible_contrast * mask
        image += self._noise_rng.normal(0.0, noise_sigma, image.shape)
        return np.clip(image, 0.0, 255.0)

    def render_thermal(self, t_s: float, netd_c: float = 0.08,
                       blur: int = 2) -> np.ndarray:
        """LWIR frame (float, 0..255): temperature map through soft optics.

        ``netd_c`` models the sensor's noise-equivalent temperature
        difference; ``blur`` the optics' softness in pixels.
        """
        temps = np.full((self.height, self.width), self.ambient_c)
        temps += 2.0 * self._gy                      # warm floor gradient
        for mask, obj in self._object_masks(t_s):
            temps += (obj.temperature_c - self.ambient_c) * mask
        temps += self._noise_rng.normal(0.0, netd_c, temps.shape)
        for _ in range(max(0, blur)):
            temps = (temps
                     + np.roll(temps, 1, 0) + np.roll(temps, -1, 0)
                     + np.roll(temps, 1, 1) + np.roll(temps, -1, 1)) / 5.0
        # radiometric mapping: ambient-20C .. ambient+50C onto 0..255
        lo, hi = self.ambient_c - 20.0, self.ambient_c + 50.0
        return np.clip((temps - lo) / (hi - lo) * 255.0, 0.0, 255.0)

    def render_depth(self, t_s: float, noise_mm: float = 4.0) -> np.ndarray:
        """Depth frame (float, 0..255, near = bright): ranging sensor.

        The world is a wall 4 m out behind a floor plane sloping toward
        the viewer; objects protrude in front of the wall in proportion
        to their radius (a person reads nearer than their silhouette on
        the wall).  ``noise_mm`` models the ranging sensor's per-pixel
        jitter.  Depth sees geometry the other two modalities cannot:
        it is blind to texture *and* temperature.
        """
        depth_m = np.full((self.height, self.width), 4.0)
        depth_m -= 1.5 * self._gy                  # floor slopes nearer
        depth_m += 0.4 * (self._gx > 0.62)         # doorway recess
        for mask, obj in self._object_masks(t_s):
            # an object stands 1..2 m in front of whatever is behind
            # it, with a hard silhouette the way a ranging sensor sees
            protrusion = 1.0 + 10.0 * obj.radius
            depth_m -= protrusion * (mask > 0.35)
        depth_m += self._depth_rng.normal(0.0, noise_mm / 1000.0,
                                          depth_m.shape)
        # map 0.2 m .. 4.5 m onto 255..0 (near = bright)
        lo, hi = 0.2, 4.5
        scaled = (np.clip(depth_m, lo, hi) - lo) / (hi - lo)
        return (1.0 - scaled) * 255.0

    def render(self, modality: str, t_s: float) -> np.ndarray:
        """Render one named modality — the N-way source entry point."""
        renderers = {
            "visible": self.render_visible,
            "thermal": self.render_thermal,
            "depth": self.render_depth,
        }
        try:
            renderer = renderers[modality]
        except KeyError:
            raise VideoError(
                f"unknown scene modality {modality!r}; expected one of "
                f"{sorted(renderers)}") from None
        return renderer(t_s)

    def hottest_position(self, t_s: float) -> Tuple[int, int]:
        """Pixel coordinates (row, col) of the hottest object center."""
        obj = max(self.objects, key=lambda o: o.temperature_c)
        ox, oy = obj.position_at(t_s)
        return int(round(oy * (self.height - 1))), int(round(ox * (self.width - 1)))
