"""The paper's Fig. 7 capture substrate, assembled once.

:class:`CaptureChain` wires webcam + thermal camera + BT.656 decoder +
scaler + handshaked FIFO exactly like the hardware architecture
section describes.  It is the single construction site for that wiring:
:class:`repro.video.FusionPipeline` composes it for the legacy batch
pipeline and :class:`repro.session.CaptureChainSource` wraps it as a
frame source for the session API — a change to the transport model
lands in both automatically.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .bt656 import Bt656Decoder
from .fifo import FrameFifo
from .frames import VideoFrame
from .scaler import VideoScaler
from .scene import SyntheticScene
from .thermal import ThermalCameraSimulator
from .webcam import WebcamSimulator


class CaptureChain:
    """Webcam over USB plus thermal over BT.656 -> decode -> scale -> FIFO."""

    def __init__(self, scene: Optional[SyntheticScene] = None,
                 fifo_capacity: int = 1):
        self.scene = scene if scene is not None else SyntheticScene()
        self.webcam = WebcamSimulator(self.scene)
        self.thermal = ThermalCameraSimulator(self.scene)
        self.decoder = Bt656Decoder(self.thermal.bt656_config)
        self.scaler = VideoScaler(
            in_shape=(self.thermal.bt656_config.active_lines,
                      self.thermal.bt656_config.active_width),
            out_shape=(480, 640),
        )
        self.fifo = FrameFifo(capacity=fifo_capacity)

    # ------------------------------------------------------------------
    @property
    def fifo_dropped(self) -> int:
        return self.fifo.stats.dropped

    @property
    def decode_errors(self) -> int:
        return self.decoder.stats.xy_errors + self.decoder.stats.resyncs

    def acquire_thermal(self) -> Optional[np.ndarray]:
        """One camera field through decode -> scale -> FIFO."""
        stream = self.thermal.capture_bt656()
        for decoded in self.decoder.push_bytes(stream):
            self.fifo.push(self.scaler.scale(decoded))
        return self.fifo.pop()

    def capture_pair(self) -> Optional[Tuple[VideoFrame, np.ndarray]]:
        """One (webcam frame, scaled thermal field) pair, or ``None``
        when the FIFO starved this field."""
        visible = self.webcam.capture()
        thermal_scaled = self.acquire_thermal()
        if thermal_scaled is None:
            return None
        return visible, thermal_scaled
