"""Fault injection for the capture substrate.

A fielded fusion system sees imperfect inputs: analog video picks up
bit errors, connectors drop bytes, cameras stall.  These injectors wrap
the clean models so the tests can verify the failure behaviour the
hardware blocks advertise (the BT.656 decoder's error counting and
resynchronization, the FIFO's producer-drop policy, the pipeline's
ability to keep producing frames).

All injectors are deterministic given their seed.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..errors import VideoError


@dataclass
class FaultStats:
    bytes_seen: int = 0
    bits_flipped: int = 0
    bytes_dropped: int = 0
    bursts: int = 0


class NoisyByteChannel:
    """Random bit flips on a byte stream (analog capture noise).

    ``bit_error_rate`` is per *bit*; typical coax interference sits in
    the 1e-7..1e-5 band, where the decoder should sail through, while
    1e-3 visibly corrupts timing codes and exercises resync.
    """

    def __init__(self, bit_error_rate: float, seed: int = 0):
        if not 0.0 <= bit_error_rate <= 1.0:
            raise VideoError("bit error rate must be within [0, 1]")
        self.bit_error_rate = bit_error_rate
        self._rng = np.random.default_rng(seed)
        self.stats = FaultStats()

    def transmit(self, data: bytes) -> bytes:
        arr = np.frombuffer(data, dtype=np.uint8).copy()
        self.stats.bytes_seen += len(arr)
        if self.bit_error_rate <= 0.0 or not len(arr):
            return arr.tobytes()
        flips = self._rng.random((len(arr), 8)) < self.bit_error_rate
        if flips.any():
            masks = (flips * (1 << np.arange(8))).sum(axis=1).astype(np.uint8)
            arr ^= masks
            self.stats.bits_flipped += int(flips.sum())
        return arr.tobytes()


class DropoutChannel:
    """Contiguous byte loss (loose connector, FIFO underrun upstream).

    Semantics contract: the *expected* byte-loss fraction equals
    ``dropout_rate``, independent of ``burst_bytes`` and of how the
    stream is chunked into ``transmit`` calls; ``burst_bytes`` only
    sets how the loss clusters (one decision drops a whole burst).
    The channel walks the stream as a renewal process — each decision
    either drops the next ``burst_bytes`` bytes with probability
    ``p = rate / (burst*(1-rate) + rate)`` or passes one byte through
    — so a dropped decision consumes ``burst`` bytes and a kept one
    consumes 1, giving E[lost]/E[consumed] = ``p*burst / (p*burst +
    (1-p))`` = ``dropout_rate`` exactly.  The :class:`FaultStats`
    ledger is exact per call: ``bytes_seen`` grows by ``len(data)``
    and equals ``bytes_dropped + len(returned)`` accumulated over the
    stream.
    """

    def __init__(self, dropout_rate: float, burst_bytes: int = 64,
                 seed: int = 0):
        if not 0.0 <= dropout_rate <= 1.0:
            raise VideoError("dropout rate must be within [0, 1]")
        if burst_bytes < 1:
            raise VideoError("burst length must be >= 1 byte")
        self.dropout_rate = dropout_rate
        self.burst_bytes = burst_bytes
        self._rng = np.random.default_rng(seed)
        self.stats = FaultStats()

    def transmit(self, data: bytes) -> bytes:
        n = len(data)
        self.stats.bytes_seen += n
        if self.dropout_rate <= 0.0 or not data:
            return data
        rate = self.dropout_rate
        burst = self.burst_bytes
        if rate >= 1.0:
            self.stats.bytes_dropped += n
            self.stats.bursts += math.ceil(n / burst)
            return b""
        p = rate / (burst * (1.0 - rate) + rate)
        arr = np.frombuffer(data, dtype=np.uint8)
        pieces = []
        position = 0
        # expected bytes consumed per decision, used to size draws
        step = p * burst + (1.0 - p)
        while position < n:
            remaining = n - position
            count = max(16, int(remaining / step * 1.1) + 8)
            drops = self._rng.random(count) < p
            consumed = np.where(drops, burst, 1).astype(np.int64)
            ends = np.cumsum(consumed)
            starts = ends - consumed
            valid = starts < remaining
            drops, starts = drops[valid], starts[valid]
            keep = starts[~drops] + position
            if keep.size:
                pieces.append(arr[keep])
            drop_starts = starts[drops]
            if drop_starts.size:
                # only the final valid decision can overrun the end of
                # the stream, so this clamp is exact per burst
                self.stats.bytes_dropped += int(
                    np.minimum(burst, remaining - drop_starts).sum())
                self.stats.bursts += int(drop_starts.size)
            position += int(min(ends[valid][-1], remaining))
        if not pieces:
            return b""
        return np.concatenate(pieces).tobytes()


def _copy_frame(frame):
    """A defensive copy of whatever a camera hands back: a bare pixel
    array, or a frame object carrying a ``pixels`` array (copied along
    with its metadata dict so consumers can't scribble on the
    original)."""
    if isinstance(frame, np.ndarray):
        return np.copy(frame)
    if dataclasses.is_dataclass(frame) and hasattr(frame, "pixels"):
        replacements = {"pixels": np.copy(frame.pixels)}
        if hasattr(frame, "metadata"):
            replacements["metadata"] = dict(frame.metadata)
        return dataclasses.replace(frame, **replacements)
    return frame


class StallingCamera:
    """Wraps a frame source; every ``period``-th capture returns the
    previous frame again (sensor stall / USB hiccup).

    The stored stall frame and every returned frame are defensive
    copies: a consumer that mutates a captured frame in place (overlay
    painting, in-place normalization) must never corrupt the replay
    the next stall hands out.
    """

    def __init__(self, source, period: int = 5):
        if period < 2:
            raise VideoError("stall period must be >= 2")
        self.source = source
        self.period = period
        self._count = 0
        self._last = None
        self.stalls = 0

    def capture(self):
        self._count += 1
        if self._last is not None and self._count % self.period == 0:
            self.stalls += 1
            return _copy_frame(self._last)
        self._last = _copy_frame(self.source.capture())
        return _copy_frame(self._last)


def corrupt_stream(stream: bytes, channels: Iterable) -> bytes:
    """Pass a byte stream through a chain of fault channels."""
    data = stream
    for channel in channels:
        data = channel.transmit(data)
    return data
