"""Fault injection for the capture substrate.

A fielded fusion system sees imperfect inputs: analog video picks up
bit errors, connectors drop bytes, cameras stall.  These injectors wrap
the clean models so the tests can verify the failure behaviour the
hardware blocks advertise (the BT.656 decoder's error counting and
resynchronization, the FIFO's producer-drop policy, the pipeline's
ability to keep producing frames).

All injectors are deterministic given their seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..errors import VideoError


@dataclass
class FaultStats:
    bytes_seen: int = 0
    bits_flipped: int = 0
    bytes_dropped: int = 0
    bursts: int = 0


class NoisyByteChannel:
    """Random bit flips on a byte stream (analog capture noise).

    ``bit_error_rate`` is per *bit*; typical coax interference sits in
    the 1e-7..1e-5 band, where the decoder should sail through, while
    1e-3 visibly corrupts timing codes and exercises resync.
    """

    def __init__(self, bit_error_rate: float, seed: int = 0):
        if not 0.0 <= bit_error_rate <= 1.0:
            raise VideoError("bit error rate must be within [0, 1]")
        self.bit_error_rate = bit_error_rate
        self._rng = np.random.default_rng(seed)
        self.stats = FaultStats()

    def transmit(self, data: bytes) -> bytes:
        arr = np.frombuffer(data, dtype=np.uint8).copy()
        self.stats.bytes_seen += len(arr)
        if self.bit_error_rate <= 0.0 or not len(arr):
            return arr.tobytes()
        flips = self._rng.random((len(arr), 8)) < self.bit_error_rate
        if flips.any():
            masks = (flips * (1 << np.arange(8))).sum(axis=1).astype(np.uint8)
            arr ^= masks
            self.stats.bits_flipped += int(flips.sum())
        return arr.tobytes()


class DropoutChannel:
    """Contiguous byte loss (loose connector, FIFO underrun upstream)."""

    def __init__(self, dropout_rate: float, burst_bytes: int = 64,
                 seed: int = 0):
        if not 0.0 <= dropout_rate <= 1.0:
            raise VideoError("dropout rate must be within [0, 1]")
        if burst_bytes < 1:
            raise VideoError("burst length must be >= 1 byte")
        self.dropout_rate = dropout_rate
        self.burst_bytes = burst_bytes
        self._rng = np.random.default_rng(seed)
        self.stats = FaultStats()

    def transmit(self, data: bytes) -> bytes:
        self.stats.bytes_seen += len(data)
        if self.dropout_rate <= 0.0 or not data:
            return data
        out = bytearray()
        position = 0
        while position < len(data):
            if self._rng.random() < self.dropout_rate:
                lost = min(self.burst_bytes, len(data) - position)
                position += lost
                self.stats.bytes_dropped += lost
                self.stats.bursts += 1
            else:
                chunk_end = min(position + self.burst_bytes, len(data))
                out.extend(data[position:chunk_end])
                position = chunk_end
        return bytes(out)


class StallingCamera:
    """Wraps a frame source; every ``period``-th capture returns the
    previous frame again (sensor stall / USB hiccup)."""

    def __init__(self, source, period: int = 5):
        if period < 2:
            raise VideoError("stall period must be >= 2")
        self.source = source
        self.period = period
        self._count = 0
        self._last = None
        self.stalls = 0

    def capture(self):
        self._count += 1
        if self._last is not None and self._count % self.period == 0:
            self.stalls += 1
            return self._last
        self._last = self.source.capture()
        return self._last


def corrupt_stream(stream: bytes, channels: Iterable) -> bytes:
    """Pass a byte stream through a chain of fault channels."""
    data = stream
    for channel in channels:
        data = channel.transmit(data)
    return data
