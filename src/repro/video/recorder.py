"""Stream recording and playback.

Captured runs become reproducible assets: :class:`StreamRecorder`
writes a frame sequence as numbered PGM files plus a small text
manifest; :class:`PgmSequenceSource` plays a recorded directory back
through the standard :class:`~repro.video.frames.FrameSource`
interface, so a recorded session can drive the fusion pipeline exactly
like a live camera — the usual workflow for tuning a vision system.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

import numpy as np

from ..errors import VideoError
from ..io import read_pgm, write_pgm
from .frames import FrameSource, VideoFrame

PathLike = Union[str, Path]
_MANIFEST = "manifest.txt"


class StreamRecorder:
    """Writes frames to ``<dir>/<prefix>_<index>.pgm`` plus a manifest."""

    def __init__(self, directory: PathLike, prefix: str = "frame",
                 fps: float = 30.0):
        if fps <= 0:
            raise VideoError("fps must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.prefix = prefix
        self.fps = fps
        self._names: List[str] = []

    def write(self, frame: Union[VideoFrame, np.ndarray]) -> Path:
        pixels = frame.pixels if isinstance(frame, VideoFrame) else frame
        pixels = np.asarray(pixels)
        if pixels.ndim == 3:
            # store luma; the recorder archives fusion inputs/outputs
            weights = np.array([0.299, 0.587, 0.114])
            pixels = pixels.astype(np.float64) @ weights
        name = f"{self.prefix}_{len(self._names):05d}.pgm"
        write_pgm(self.directory / name, pixels)
        self._names.append(name)
        return self.directory / name

    def close(self) -> Path:
        """Write the manifest; returns its path."""
        manifest = self.directory / _MANIFEST
        lines = [f"fps {self.fps}", f"frames {len(self._names)}"]
        lines.extend(self._names)
        manifest.write_text("\n".join(lines) + "\n")
        return manifest

    @property
    def frames_written(self) -> int:
        return len(self._names)

    def __enter__(self) -> "StreamRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class PgmSequenceSource(FrameSource):
    """Plays a recorded directory back as a frame source.

    ``loop=True`` wraps around at the end (useful for soak tests);
    otherwise :meth:`capture` raises :class:`VideoError` when exhausted.
    """

    def __init__(self, directory: PathLike, loop: bool = False):
        self.directory = Path(directory)
        manifest = self.directory / _MANIFEST
        if not manifest.exists():
            raise VideoError(f"no manifest in {self.directory}")
        lines = [ln.strip() for ln in manifest.read_text().splitlines()
                 if ln.strip()]
        header = dict(ln.split(" ", 1) for ln in lines[:2])
        try:
            self.fps = float(header["fps"])
            declared = int(header["frames"])
        except (KeyError, ValueError) as exc:
            raise VideoError(f"malformed manifest in {self.directory}") from exc
        self._names = lines[2:]
        if len(self._names) != declared:
            raise VideoError(
                f"manifest declares {declared} frames but lists "
                f"{len(self._names)}"
            )
        if not self._names:
            raise VideoError(f"recording in {self.directory} is empty")
        self.loop = loop
        self._index = 0

    def __len__(self) -> int:
        return len(self._names)

    def capture(self) -> VideoFrame:
        if self._index >= len(self._names):
            if not self.loop:
                raise VideoError("recorded sequence exhausted")
            self._index = 0
        name = self._names[self._index]
        pixels = read_pgm(self.directory / name)
        frame = VideoFrame(
            pixels=pixels,
            timestamp_s=self._index / self.fps,
            frame_id=self._index,
            source=f"playback:{name}",
        )
        self._index += 1
        return frame

    def rewind(self) -> None:
        self._index = 0
