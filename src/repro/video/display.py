"""Display composition (the paper's Fig. 8 presentation path).

The original system shows the webcam frame, the thermal frame and the
fused result on screen through OpenCV.  This module reproduces that
presentation without any imaging dependency: a triptych compositor with
separators and captions rendered by a built-in 5x7 bitmap font, plus a
small histogram strip — everything a demo screenshot needs, as plain
numpy arrays ready for :func:`repro.io.write_pgm`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import VideoError

#: Minimal 5x7 bitmap font for captions (digits, capitals, few symbols).
_FONT: Dict[str, Tuple[int, ...]] = {
    "A": (0x0E, 0x11, 0x11, 0x1F, 0x11, 0x11, 0x11),
    "B": (0x1E, 0x11, 0x11, 0x1E, 0x11, 0x11, 0x1E),
    "C": (0x0E, 0x11, 0x10, 0x10, 0x10, 0x11, 0x0E),
    "D": (0x1E, 0x11, 0x11, 0x11, 0x11, 0x11, 0x1E),
    "E": (0x1F, 0x10, 0x10, 0x1E, 0x10, 0x10, 0x1F),
    "F": (0x1F, 0x10, 0x10, 0x1E, 0x10, 0x10, 0x10),
    "G": (0x0E, 0x11, 0x10, 0x17, 0x11, 0x11, 0x0E),
    "H": (0x11, 0x11, 0x11, 0x1F, 0x11, 0x11, 0x11),
    "I": (0x0E, 0x04, 0x04, 0x04, 0x04, 0x04, 0x0E),
    "J": (0x07, 0x02, 0x02, 0x02, 0x02, 0x12, 0x0C),
    "K": (0x11, 0x12, 0x14, 0x18, 0x14, 0x12, 0x11),
    "L": (0x10, 0x10, 0x10, 0x10, 0x10, 0x10, 0x1F),
    "M": (0x11, 0x1B, 0x15, 0x15, 0x11, 0x11, 0x11),
    "N": (0x11, 0x19, 0x15, 0x13, 0x11, 0x11, 0x11),
    "O": (0x0E, 0x11, 0x11, 0x11, 0x11, 0x11, 0x0E),
    "P": (0x1E, 0x11, 0x11, 0x1E, 0x10, 0x10, 0x10),
    "Q": (0x0E, 0x11, 0x11, 0x11, 0x15, 0x12, 0x0D),
    "R": (0x1E, 0x11, 0x11, 0x1E, 0x14, 0x12, 0x11),
    "S": (0x0F, 0x10, 0x10, 0x0E, 0x01, 0x01, 0x1E),
    "T": (0x1F, 0x04, 0x04, 0x04, 0x04, 0x04, 0x04),
    "U": (0x11, 0x11, 0x11, 0x11, 0x11, 0x11, 0x0E),
    "V": (0x11, 0x11, 0x11, 0x11, 0x11, 0x0A, 0x04),
    "W": (0x11, 0x11, 0x11, 0x15, 0x15, 0x1B, 0x11),
    "X": (0x11, 0x11, 0x0A, 0x04, 0x0A, 0x11, 0x11),
    "Y": (0x11, 0x11, 0x0A, 0x04, 0x04, 0x04, 0x04),
    "Z": (0x1F, 0x01, 0x02, 0x04, 0x08, 0x10, 0x1F),
    "0": (0x0E, 0x11, 0x13, 0x15, 0x19, 0x11, 0x0E),
    "1": (0x04, 0x0C, 0x04, 0x04, 0x04, 0x04, 0x0E),
    "2": (0x0E, 0x11, 0x01, 0x02, 0x04, 0x08, 0x1F),
    "3": (0x1F, 0x02, 0x04, 0x02, 0x01, 0x11, 0x0E),
    "4": (0x02, 0x06, 0x0A, 0x12, 0x1F, 0x02, 0x02),
    "5": (0x1F, 0x10, 0x1E, 0x01, 0x01, 0x11, 0x0E),
    "6": (0x06, 0x08, 0x10, 0x1E, 0x11, 0x11, 0x0E),
    "7": (0x1F, 0x01, 0x02, 0x04, 0x08, 0x08, 0x08),
    "8": (0x0E, 0x11, 0x11, 0x0E, 0x11, 0x11, 0x0E),
    "9": (0x0E, 0x11, 0x11, 0x0F, 0x01, 0x02, 0x0C),
    " ": (0, 0, 0, 0, 0, 0, 0),
    ".": (0, 0, 0, 0, 0, 0x0C, 0x0C),
    ":": (0, 0x0C, 0x0C, 0, 0x0C, 0x0C, 0),
    "-": (0, 0, 0, 0x1F, 0, 0, 0),
    "+": (0, 0x04, 0x04, 0x1F, 0x04, 0x04, 0),
    "/": (0x01, 0x02, 0x02, 0x04, 0x08, 0x08, 0x10),
    "%": (0x19, 0x19, 0x02, 0x04, 0x08, 0x13, 0x13),
}

GLYPH_ROWS, GLYPH_COLS = 7, 5


def render_text(text: str, intensity: int = 255) -> np.ndarray:
    """Rasterize a caption with the built-in font (1 px letter spacing)."""
    text = text.upper()
    glyphs = [_FONT.get(ch, _FONT[" "]) for ch in text]
    width = len(glyphs) * (GLYPH_COLS + 1) - 1 if glyphs else 0
    canvas = np.zeros((GLYPH_ROWS, max(width, 0)), dtype=np.uint8)
    for index, rows in enumerate(glyphs):
        x0 = index * (GLYPH_COLS + 1)
        for r, bits in enumerate(rows):
            for c in range(GLYPH_COLS):
                if bits & (1 << (GLYPH_COLS - 1 - c)):
                    canvas[r, x0 + c] = intensity
    return canvas


def stamp_text(image: np.ndarray, text: str, row: int = 2, col: int = 2,
               intensity: int = 255) -> np.ndarray:
    """Blit a caption onto a copy of ``image`` (clipped at borders)."""
    out = np.asarray(image).copy()
    glyphs = render_text(text, intensity)
    rows = min(glyphs.shape[0], out.shape[0] - row)
    cols = min(glyphs.shape[1], out.shape[1] - col)
    if rows <= 0 or cols <= 0:
        raise VideoError("caption does not fit on the frame")
    region = out[row: row + rows, col: col + cols]
    mask = glyphs[:rows, :cols] > 0
    region[mask] = glyphs[:rows, :cols][mask]
    return out


def histogram_strip(image: np.ndarray, height: int = 24,
                    bins: int = 64) -> np.ndarray:
    """Tiny intensity histogram rendered as a bar strip (OSD element)."""
    if height < 4:
        raise VideoError("histogram strip needs at least 4 rows")
    data = np.asarray(image, dtype=np.float64).ravel()
    hist, _ = np.histogram(data, bins=bins, range=(0, 255))
    peak = hist.max() if hist.max() > 0 else 1
    strip = np.zeros((height, bins), dtype=np.uint8)
    for b, count in enumerate(hist):
        bar = int(round((height - 1) * count / peak))
        if bar:
            strip[height - bar:, b] = 200
    return strip


def triptych(visible: np.ndarray, thermal: np.ndarray, fused: np.ndarray,
             captions: Sequence[str] = ("WEBCAM", "THERMAL", "FUSED"),
             separator: int = 4, with_histograms: bool = True) -> np.ndarray:
    """Compose the Fig. 8 panel: webcam | thermal | fused.

    All frames must share a shape; output is uint8 grayscale.
    """
    panels = [np.asarray(p) for p in (visible, thermal, fused)]
    shape = panels[0].shape
    if any(p.shape != shape or p.ndim != 2 for p in panels):
        raise VideoError("triptych needs three equal 2-D frames")
    if len(captions) != 3:
        raise VideoError("triptych needs exactly three captions")

    processed: List[np.ndarray] = []
    for panel, caption in zip(panels, captions):
        frame = np.clip(np.round(panel.astype(np.float64)), 0,
                        255).astype(np.uint8)
        frame = stamp_text(frame, caption, row=2, col=2)
        if with_histograms:
            strip = histogram_strip(frame)
            pad = np.zeros((strip.shape[0], frame.shape[1]), dtype=np.uint8)
            pad[:, : strip.shape[1]] = strip
            frame = np.vstack([frame, np.full((1, frame.shape[1]), 90,
                                              dtype=np.uint8), pad])
        processed.append(frame)

    sep = np.full((processed[0].shape[0], separator), 255, dtype=np.uint8)
    columns: List[np.ndarray] = []
    for i, frame in enumerate(processed):
        if i:
            columns.append(sep)
        columns.append(frame)
    return np.hstack(columns)
