"""ITU-R BT.656 stream encoder/decoder (the PL-side camera interface).

The paper's thermal camera emits analog video digitized as a BT.656
byte stream, decoded by a custom ``BT656_Decoder`` block on the FPGA
(Fig. 7).  This module implements the standard faithfully enough to
exercise the same logic in simulation:

* **Timing reference codes**: every line starts/ends with the 4-byte
  sequences ``FF 00 00 XY``.  ``XY = 1 F V H P3 P2 P1 P0`` carries the
  field bit, vertical-blanking bit and H bit (0 = SAV, start of active
  video; 1 = EAV, end of active video); ``P3..P0`` are the standard
  Hamming protection bits, which the decoder checks.
* **Payload**: 4:2:2 multiplexed ``Cb Y Cr Y`` samples during active
  video; blanking intervals carry the idle pattern ``80 10``.

:class:`Bt656Decoder` is a byte-at-a-time state machine mirroring the
hardware block: it hunts for the preamble, validates the XY code,
tracks V transitions to delimit frames and accumulates active lines.
Protection-bit failures are corrected (3-bit Hamming distance allows
single-bit repair) or counted as errors, like the ``Error`` output pin
of the paper's decoder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..errors import DecodeError

#: Idle (blanking) chroma/luma levels.
_BLANK_CHROMA = 0x80
_BLANK_LUMA = 0x10


def _xy_code(f: int, v: int, h: int) -> int:
    """Timing reference byte with ITU protection bits."""
    p3 = v ^ h
    p2 = f ^ h
    p1 = f ^ v
    p0 = f ^ v ^ h
    return (0x80 | (f << 6) | (v << 5) | (h << 4)
            | (p3 << 3) | (p2 << 2) | (p1 << 1) | p0)


#: All eight valid XY codes, for single-error correction in the decoder.
_VALID_XY = {(_xy_code(f, v, h)): (f, v, h)
             for f in (0, 1) for v in (0, 1) for h in (0, 1)}


def _clip_video(values: np.ndarray) -> np.ndarray:
    """BT.656 reserves 0x00 and 0xFF for sync codes; clip payload."""
    return np.clip(values, 0x01, 0xFE).astype(np.uint8)


@dataclass
class Bt656Config:
    """Stream geometry.  Defaults follow the paper's 720x243 @60 Hz
    field format (NTSC-style) feeding the video scaler."""

    active_width: int = 720
    active_lines: int = 243
    vblank_lines: int = 20
    #: blanking lines after the active region (closes the frame so a
    #: standalone field decodes without waiting for the next one)
    post_blank_lines: int = 3
    hblank_samples: int = 64  # payload words during horizontal blanking


def encode_frame(luma: np.ndarray, config: Bt656Config = Bt656Config(),
                 field_bit: int = 0) -> bytes:
    """Encode one grayscale frame as a BT.656 byte stream.

    The luma plane is resized by sampling/replication to the configured
    active geometry; chroma is set to the neutral value (the thermal
    camera is monochrome).
    """
    luma = np.asarray(luma)
    if luma.ndim != 2:
        raise DecodeError(f"encoder expects a 2-D luma plane, got {luma.shape}")
    rows, cols = config.active_lines, config.active_width
    # nearest-neighbour fit to the active geometry
    row_idx = np.linspace(0, luma.shape[0] - 1, rows).round().astype(int)
    col_idx = np.linspace(0, luma.shape[1] - 1, cols).round().astype(int)
    active = _clip_video(luma[np.ix_(row_idx, col_idx)])

    out = bytearray()

    def emit_line(line: Optional[np.ndarray], v: int) -> None:
        # EAV of previous line, horizontal blanking, SAV, payload
        out.extend((0xFF, 0x00, 0x00, _xy_code(field_bit, v, 1)))
        out.extend((_BLANK_CHROMA, _BLANK_LUMA) * (config.hblank_samples // 2))
        out.extend((0xFF, 0x00, 0x00, _xy_code(field_bit, v, 0)))
        if line is None:
            out.extend((_BLANK_CHROMA, _BLANK_LUMA) * cols)
        else:
            payload = np.empty(cols * 2, dtype=np.uint8)
            payload[0::2] = _BLANK_CHROMA  # Cb / Cr neutral
            payload[1::2] = line
            out.extend(payload.tobytes())

    for _ in range(config.vblank_lines):
        emit_line(None, v=1)
    for r in range(rows):
        emit_line(active[r], v=0)
    for _ in range(config.post_blank_lines):
        emit_line(None, v=1)
    return bytes(out)


@dataclass
class DecoderStats:
    """Counters mirroring the hardware block's status outputs."""

    frames: int = 0
    lines: int = 0
    xy_errors: int = 0
    corrected_xy: int = 0
    resyncs: int = 0


class Bt656Decoder:
    """Byte-at-a-time BT.656 decoder state machine."""

    _HUNT, _P1, _P2, _ACTIVE = range(4)

    def __init__(self, config: Bt656Config = Bt656Config()):
        self.config = config
        self.stats = DecoderStats()
        self._state = self._HUNT
        self._line: List[int] = []
        self._lines: List[np.ndarray] = []
        self._frames: List[np.ndarray] = []
        self._in_active_video = False
        self._prev_v = 1
        self._payload_phase = 0

    # ------------------------------------------------------------------
    def push_bytes(self, data: bytes) -> List[np.ndarray]:
        """Feed stream bytes; returns any frames completed by this chunk."""
        completed: List[np.ndarray] = []
        for byte in data:
            frame = self._push_byte(byte)
            if frame is not None:
                completed.append(frame)
        return completed

    def _push_byte(self, byte: int) -> Optional[np.ndarray]:
        if self._state == self._HUNT:
            if byte == 0xFF:
                self._state = self._P1
            elif self._in_active_video:
                self._payload(byte)
            return None
        if self._state == self._P1:
            self._state = self._P2 if byte == 0x00 else self._HUNT
            if byte == 0xFF:  # FF FF ... stay hunting on the new FF
                self._state = self._P1
            return None
        if self._state == self._P2:
            if byte == 0x00:
                self._state = self._ACTIVE
            else:
                self._state = self._HUNT
            return None
        # _ACTIVE: this byte is the XY code
        self._state = self._HUNT
        return self._timing_code(byte)

    # ------------------------------------------------------------------
    def _timing_code(self, xy: int) -> Optional[np.ndarray]:
        decoded = self._decode_xy(xy)
        if decoded is None:
            self.stats.xy_errors += 1
            self.stats.resyncs += 1
            self._in_active_video = False
            self._line.clear()
            return None
        _f, v, h = decoded
        frame: Optional[np.ndarray] = None
        if h == 0:  # SAV
            if v == 0:
                self._in_active_video = True
                self._line.clear()
                self._payload_phase = 0
            else:
                self._in_active_video = False
        else:  # EAV
            if self._in_active_video and self._line:
                self._finish_line()
            self._in_active_video = False
            if v == 1 and self._prev_v == 0 and self._lines:
                frame = self._finish_frame()
        self._prev_v = v
        return frame

    def _decode_xy(self, xy: int) -> Optional[Tuple[int, int, int]]:
        if xy in _VALID_XY:
            return _VALID_XY[xy]
        # attempt single-bit correction against the valid code set
        for valid, decoded in _VALID_XY.items():
            if bin(valid ^ xy).count("1") == 1:
                self.stats.corrected_xy += 1
                return decoded
        return None

    def _payload(self, byte: int) -> None:
        # 4:2:2 order Cb Y Cr Y: keep every second byte (luma)
        if self._payload_phase % 2 == 1:
            self._line.append(byte)
        self._payload_phase += 1

    def _finish_line(self) -> None:
        width = self.config.active_width
        line = np.asarray(self._line[:width], dtype=np.uint8)
        if len(line) == width:
            self._lines.append(line)
            self.stats.lines += 1
        else:
            self.stats.resyncs += 1
        self._line.clear()

    def _finish_frame(self) -> Optional[np.ndarray]:
        expected = self.config.active_lines
        lines = self._lines
        self._lines = []
        if len(lines) != expected:
            self.stats.resyncs += 1
            if not lines:
                return None
        self.stats.frames += 1
        return np.stack(lines)
