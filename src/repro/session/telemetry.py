"""Runtime telemetry: latency, jitter and energy-budget tracking.

A deployed fusion system (the paper's surveillance use case) cares
about more than mean throughput: per-frame latency percentiles, jitter
against the camera period, and whether a battery budget survives the
mission.  :class:`FrameTelemetry` accumulates those from per-frame
(seconds, millijoules) observations — the model's outputs or real
measurements alike.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..errors import ConfigurationError

#: signature of a telemetry sink: (seconds, millijoules, wall_seconds)
TelemetrySink = Callable[[float, float, Optional[float]], None]


@dataclass
class TelemetrySummary:
    frames: int
    fps: float
    latency_mean_s: float
    latency_p50_s: float
    latency_p95_s: float
    latency_max_s: float
    jitter_rms_s: float
    deadline_misses: int
    millijoules_total: float
    #: measured wall-clock per-frame latency (ingest -> report), where
    #: observed; 0.0 when the caller never supplied wall timings
    wall_latency_mean_s: float = 0.0
    wall_latency_p95_s: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "frames": self.frames,
            "fps": self.fps,
            "latency_mean_ms": self.latency_mean_s * 1e3,
            "latency_p50_ms": self.latency_p50_s * 1e3,
            "latency_p95_ms": self.latency_p95_s * 1e3,
            "latency_max_ms": self.latency_max_s * 1e3,
            "jitter_rms_ms": self.jitter_rms_s * 1e3,
            "deadline_misses": self.deadline_misses,
            "millijoules_total": self.millijoules_total,
            "wall_latency_mean_ms": self.wall_latency_mean_s * 1e3,
            "wall_latency_p95_ms": self.wall_latency_p95_s * 1e3,
        }


class FrameTelemetry:
    """Accumulates per-frame cost observations.

    Parameters
    ----------
    target_fps:
        The camera rate; frames slower than ``1/target_fps`` count as
        deadline misses and feed the jitter statistic.
    energy_budget_mj:
        Optional mission energy budget; :meth:`frames_remaining`
        extrapolates how many more frames fit.
    sink:
        Optional per-frame observer called *after* each successful
        :meth:`record` with ``(seconds, millijoules, wall_seconds)``.
        The serving layer attaches one to feed its live metrics
        (latency histograms, energy counters) without polling; a sink
        must be fast and must not raise.
    """

    def __init__(self, target_fps: float = 25.0,
                 energy_budget_mj: Optional[float] = None,
                 sink: Optional[TelemetrySink] = None):
        if target_fps <= 0:
            raise ConfigurationError("target_fps must be positive")
        if energy_budget_mj is not None and energy_budget_mj <= 0:
            raise ConfigurationError("energy budget must be positive")
        self.target_fps = target_fps
        self.energy_budget_mj = energy_budget_mj
        self.sink = sink
        self._latencies: List[float] = []
        self._millijoules: List[float] = []
        self._wall: List[float] = []

    # ------------------------------------------------------------------
    def record(self, seconds: float, millijoules: float = 0.0,
               wall_seconds: Optional[float] = None) -> None:
        """Record one frame: modelled seconds/energy, and optionally
        the *measured* wall-clock latency the frame spent in flight
        (capture to report) under the active executor."""
        if seconds < 0 or millijoules < 0:
            raise ConfigurationError("observations cannot be negative")
        if wall_seconds is not None and wall_seconds < 0:
            raise ConfigurationError("observations cannot be negative")
        self._latencies.append(seconds)
        self._millijoules.append(millijoules)
        if wall_seconds is not None:
            self._wall.append(wall_seconds)
        if self.sink is not None:
            self.sink(seconds, millijoules, wall_seconds)

    @property
    def frames(self) -> int:
        return len(self._latencies)

    @property
    def millijoules_total(self) -> float:
        return float(sum(self._millijoules))

    def frames_remaining(self) -> Optional[int]:
        """Frames the remaining energy budget can still pay for."""
        if self.energy_budget_mj is None or not self._millijoules:
            return None
        spent = self.millijoules_total
        remaining = self.energy_budget_mj - spent
        if remaining <= 0:
            return 0
        per_frame = spent / len(self._millijoules)
        return int(remaining / per_frame) if per_frame > 0 else None

    # ------------------------------------------------------------------
    @staticmethod
    def _percentile(values: List[float], q: float) -> float:
        if not values:
            return 0.0
        ordered = sorted(values)
        position = (len(ordered) - 1) * q
        lower = math.floor(position)
        upper = math.ceil(position)
        if lower == upper:
            return ordered[lower]
        fraction = position - lower
        return ordered[lower] * (1 - fraction) + ordered[upper] * fraction

    def summary(self) -> TelemetrySummary:
        if not self._latencies:
            raise ConfigurationError("no frames recorded yet")
        lat = self._latencies
        total = sum(lat)
        period = 1.0 / self.target_fps
        jitter_sq = [(v - period) ** 2 for v in lat]
        wall = self._wall
        return TelemetrySummary(
            frames=len(lat),
            fps=len(lat) / total if total > 0 else 0.0,
            latency_mean_s=total / len(lat),
            latency_p50_s=self._percentile(lat, 0.50),
            latency_p95_s=self._percentile(lat, 0.95),
            latency_max_s=max(lat),
            jitter_rms_s=math.sqrt(sum(jitter_sq) / len(jitter_sq)),
            deadline_misses=sum(1 for v in lat if v > period),
            millijoules_total=self.millijoules_total,
            wall_latency_mean_s=(sum(wall) / len(wall)) if wall else 0.0,
            wall_latency_p95_s=self._percentile(wall, 0.95) if wall else 0.0,
        )
