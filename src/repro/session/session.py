"""The fusion session facade: one object, every way to run the system.

:class:`FusionSession` subsumes the old ``VideoFusionSystem`` (batch
runs over the modelled capture chain) and ``AdvancedFusionSession``
(online scheduling, registration, temporal fusion, monitoring,
telemetry) behind one configured object with three entry points:

* :meth:`process` — fuse one (visible, thermal) pair;
* :meth:`stream` — iterate any :class:`FrameSource`, yielding a
  :class:`FusedFrameResult` per frame (the continuous loop the paper's
  system runs);
* :meth:`run` — fuse ``n`` frames from the built-in capture chain and
  return an aggregate :class:`FusionReport`.

Everything optional — registration, temporal fusion, quality
monitoring, per-frame metrics — is switched by the
:class:`FusionConfig`, so ablations change a flag, not a class.

*How* frames are driven is equally pluggable — and *what* is driven is
declarative: the session constructs its pipeline as a
:class:`repro.graph.FusionGraph` (ingest → register → forward ×2 →
fuse/temporal → finalize), lowers it through the
:class:`repro.graph.Planner`, and :meth:`stream`/:meth:`run` route
every frame through the :mod:`repro.exec` executor the config names —
the serial reference loop, the double-buffered thread pipeline,
heterogeneous engine co-scheduling, or micro-batched NumPy
vectorization — each interpreting the same lowered plan via the
:class:`_SessionProcessor` below.  Users extend the dataflow with
custom stages (``session.canonical_graph()`` + ``run(graph=...)``, or
``FusionConfig.graph_overrides``) and inspect it
(``session.plan.describe()``, the CLI's ``plan`` subcommand).  The
stateful stages (ingest: engine selection; register: rig calibration;
finalize: monitoring + telemetry) always run in frame order on one
thread, so every executor yields bitwise-identical results for a
fixed seed (for bounded or fully consumed drives; see
:meth:`FusionSession.stream` on the read-ahead of abandoned
concurrent streams).
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..core.adaptive import (CostModelScheduler, Decision, OnlineScheduler)
from ..core.fusion import ImageFusion
from ..core.metrics import fusion_report
from ..core.quality_monitor import ACTION_FUSE, QualityMonitor
from ..core.registration import DtcwtRegistration
from ..core.video_fusion import TemporalFusion
from ..dtcwt.backend import ScratchPool
from ..errors import ConfigurationError, FusionError
from ..exec import Executor, FrameProcessor, make_executor
from ..graph import FusionGraph, FusionPlan, Planner, Stage
from ..hw.engine import Engine
from ..hw.registry import (create_engine, create_engine_pool,
                           precision_candidates)
from ..video.frames import VideoFrame
from ..video.scaler import resize_to
from .config import FusionConfig
from .report import FusedFrameResult, FusionReport
from .sources import (CaptureChainSource, ClosedAwareIterator, FrameGroup,
                      FramePair, FrameSource, as_frame_source)
from .telemetry import FrameTelemetry


class _RigCalibrator:
    """Static-rig calibration: apply the median shift once it is stable.

    A co-located camera pair has one fixed offset; per-frame estimates
    that saturate the search bound or disagree with the consensus are
    measurement noise, not motion, and applying them would misalign a
    well-aligned rig.
    """

    def __init__(self, levels: int):
        self.registration = DtcwtRegistration(levels=max(2, levels),
                                              max_shift=6)
        self._estimates: List[Tuple[float, float]] = []

    def offset(self, visible: np.ndarray,
               thermal: np.ndarray) -> Optional[Tuple[int, int]]:
        result = self.registration.estimate(visible, thermal)
        bound = self.registration.max_shift
        if abs(result.dy) < bound and abs(result.dx) < bound:
            self._estimates.append((result.dy, result.dx))
        if len(self._estimates) < 3:
            return None
        recent = self._estimates[-5:]
        dy = float(np.median([e[0] for e in recent]))
        dx = float(np.median([e[1] for e in recent]))
        spread = max(abs(e[0] - dy) + abs(e[1] - dx) for e in recent)
        if spread > 2.0:
            return None  # estimates disagree: no confident calibration
        if round(dy) == 0 and round(dx) == 0:
            return None  # rig already aligned
        return int(round(dy)), int(round(dx))


@dataclass
class _FrameTask:
    """One frame group in flight between the processor's stages.

    ``frames[s]`` / ``pyramids[s]`` hold source ``s``'s normalized
    frame and forward pyramid; the ``visible`` / ``thermal`` /
    ``pyr_visible`` / ``pyr_thermal`` accessors keep the pairwise
    stage API (and custom ``map`` stages written against it) working
    on any group.
    """

    index: int
    timestamp_s: float
    frames: List[np.ndarray]
    engine: Engine
    model_seconds: float
    applied_shift: Optional[Tuple[int, int]] = None
    started: float = 0.0
    pyramids: List[object] = dataclass_field(default_factory=list)
    fused: Optional[np.ndarray] = None
    #: stage -> engine assigned by a co-scheduling executor
    stage_engines: Dict[str, Engine] = dataclass_field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.pyramids:
            self.pyramids = [None] * len(self.frames)

    @property
    def visible(self) -> np.ndarray:
        return self.frames[0]

    @visible.setter
    def visible(self, value: np.ndarray) -> None:
        self.frames[0] = value

    @property
    def thermal(self) -> np.ndarray:
        return self.frames[1]

    @thermal.setter
    def thermal(self, value: np.ndarray) -> None:
        self.frames[1] = value

    @property
    def pyr_visible(self) -> object:
        return self.pyramids[0]

    @pyr_visible.setter
    def pyr_visible(self, value: object) -> None:
        self.pyramids[0] = value

    @property
    def pyr_thermal(self) -> object:
        return self.pyramids[1]

    @pyr_thermal.setter
    def pyr_thermal(self, value: object) -> None:
        self.pyramids[1] = value


class _WorkerContext:
    """Per-worker compute state handed to concurrent stage calls.

    Engines carry non-thread-safe backend state (the FPGA driver's
    buffers, coefficient caches), so each concurrent worker gets its
    own :class:`ImageFusion` lane per engine *name*, built from that
    engine's own transform factory.  Lanes are functionally identical
    to the session's serial fusers, which is what keeps concurrent
    schedules bitwise-equal to the serial loop.
    """

    def __init__(self, session: "FusionSession",
                 engine: Optional[Engine] = None,
                 co_schedule: bool = False):
        self._session = session
        self.engine = engine
        self.co_schedule = co_schedule
        self._lanes: Dict[str, ImageFusion] = {}
        #: per-worker scratch buffers (single-threaded, like the lanes)
        self.scratch = ScratchPool()

    def lane(self, engine: Engine) -> ImageFusion:
        fuser = self._lanes.get(engine.name)
        if fuser is None:
            fuser = self._session._new_fuser(engine)
            self._lanes[engine.name] = fuser
        return fuser


class _SessionProcessor(FrameProcessor):
    """The session's fusion dataflow: an interpreter for one lowered
    :class:`~repro.graph.FusionPlan`.

    The processor binds the plan's built-in stage kinds to the
    session's own implementations (normalisation + scheduling for
    ``ingest``, rig calibration for ``register``, the DT-CWT forwards,
    coefficient fusion + inverse, stateful temporal fusion, and
    monitoring/telemetry for ``finalize``) and calls custom ``map``
    stages' ``fn(task)`` directly.  Executors never see stage
    semantics — they drive the plan's stage *names* through
    :meth:`run_stage`.
    """

    def __init__(self, session: "FusionSession", plan: "FusionPlan"):
        self._session = session
        self.plan = plan
        self._head_rest = plan.head[1:]
        # ordered stages may never execute concurrently; a violated
        # guard is an executor bug (or a user driving run_stage by
        # hand from several threads) and raises instead of corrupting
        # cross-frame state.  Built over the schedule (every original
        # stage name), because an optimized plan's compute tuple may
        # carry fused dispatch units instead of raw stage names.
        head_tail = set(plan.head) | set(plan.tail)
        self._guards: Dict[str, threading.Lock] = {
            name: threading.Lock() for name in plan.schedule
            if name not in head_tail and plan.stage(name).ordered
        }
        # loop-invariant hoisting: the per-frame model cost table the
        # optimization pass evaluated at plan time (empty -> compute
        # per frame, the unoptimized behaviour)
        self._hoisted: Dict[str, float] = dict(plan.hoisted_frame_seconds)
        # scratch buffers for the serial lane (ctx=None paths); worker
        # contexts carry their own pools
        self._scratch = ScratchPool()
        # measured per-stage wall-time attribution (stage or unit name
        # -> seconds); executors of every kind funnel through
        # run_stage, so one accumulator covers them all
        self._stage_wall: Dict[str, float] = {}
        self._wall_lock = threading.Lock()
        # the plan's forward stages in schedule order: ("visible",
        # "thermal") for the paper pair, plus "source2", ... for N-way
        # graphs; empty on temporal plans (which decompose internally)
        self._forward_names: Tuple[str, ...] = tuple(
            name for name in plan.schedule
            if name in plan and plan.stage(name).kind == "forward")
        self._forward_index: Dict[str, int] = {
            name: i for i, name in enumerate(self._forward_names)}
        self._modelled_stages: Tuple[str, ...] = \
            self._forward_names + ("fuse",)
        # modelled stages with a forced placement: their time/energy is
        # billed to the forced engine (matching the lowered plan), not
        # to the frame's selected engine
        self._forced_engines: Dict[str, Engine] = {
            name: session._placement_engine(plan.stage(name).placement)
            for name in self._modelled_stages
            if name in plan and plan.stage(name).placement != "auto"
        }

    # -- plan hints the executors interpret -----------------------------
    @property
    def sequential_fuse(self) -> bool:
        return self.plan.sequential_mid

    @property
    def sequential_mid(self) -> bool:
        return self.plan.sequential_mid

    def parallel_stages(self):
        return self.plan.parallel

    def mid_stages(self):
        return self.plan.mid

    def stage_bucket(self, name: str) -> str:
        if self.plan.is_unit(name):
            return name  # a fused unit is its own stats bucket
        kind = self.plan.stage(name).kind
        if kind == "forward":
            return "forward"
        if kind == "temporal":
            return "fuse"  # the stats key the mid lane always used
        return name

    # -- measured per-stage wall time ----------------------------------
    def _record_wall(self, name: str, seconds: float) -> None:
        with self._wall_lock:
            self._stage_wall[name] = \
                self._stage_wall.get(name, 0.0) + seconds

    def stage_wall_snapshot(self) -> Dict[str, float]:
        """Cumulative measured seconds per stage/unit since this
        processor was built (copy; safe to keep as a mark)."""
        with self._wall_lock:
            return dict(self._stage_wall)

    def stage_wall_since(self, mark: Dict[str, float]
                         ) -> Dict[str, float]:
        """Per-stage wall seconds accumulated since ``mark`` (one
        drive's attribution; processors outlive drives)."""
        now = self.stage_wall_snapshot()
        return {name: seconds - mark.get(name, 0.0)
                for name, seconds in now.items()
                if seconds - mark.get(name, 0.0) > 0.0}

    def make_contexts(self, n, engines=None):
        session = self._session
        if engines is None:
            return [_WorkerContext(session) for _ in range(n)]
        co = session.config.engine_team is not None
        return [_WorkerContext(session, engine=engine, co_schedule=co)
                for engine in engines]

    def assign(self, task: _FrameTask, stage: str, engine: Engine) -> None:
        """Dispatch-time hook: a co-scheduling executor pins ``stage``
        of ``task`` to ``engine`` (deterministically, in frame order).

        Attribution must agree with the lowered plan: custom map
        stages run host-side NumPy on whichever worker executes them,
        so they are never attributed to an engine; and a forced
        placement overrides the dispatch assignment, because the stage
        *computes* on the forced engine whatever worker thread runs
        it.
        """
        if stage in self.plan:
            planned = self.plan.stage(stage)
            if planned.kind == "map":
                return
            if planned.placement != "auto":
                engine = self._session._placement_engine(planned.placement)
        task.stage_engines[stage] = engine

    # -- stages ---------------------------------------------------------
    def ingest(self, pair: FrameGroup, index: int) -> _FrameTask:
        """The plan's head: the ingest stage plus every ordered stage
        glued to it (canonically rig registration), run inline on the
        capturing thread so frame order is inherent."""
        started = time.perf_counter()
        session = self._session
        expected = len(self._forward_names) or 2
        incoming = getattr(pair, "frames", None)
        if incoming is None:  # a bare (visible, thermal, ...) tuple
            incoming = tuple(pair)
        if len(incoming) != expected:
            raise FusionError(
                f"this session's plan fuses {expected} sources per "
                f"frame, but the source delivered {len(incoming)} "
                f"(configure FusionConfig(n_sources={len(incoming)}) "
                f"to match the stream)")
        frames = [session._normalize(frame) for frame in incoming]

        engine = session._select_engine()
        # loop-invariant hoisting: the optimized plan carries this
        # model evaluation (a pure function of engine/shape/levels),
        # so the steady-state frame path only does a dict lookup
        seconds = self._hoisted.get(engine.name)
        if seconds is None:
            seconds = engine.frame_time(session.config.fusion_shape,
                                        session.config.levels).total_s
        if session.scheduler is not None:
            # the observation is the modelled cost, known at selection
            # time; feeding it here keeps the probe/exploit sequence
            # identical no matter how far an executor reads ahead
            session.scheduler.observe(engine, seconds)

        task = _FrameTask(
            index=session._next_index,
            timestamp_s=getattr(pair, "timestamp_s", 0.0),
            frames=frames,
            engine=engine,
            model_seconds=seconds,
            started=time.perf_counter(),
        )
        session._next_index += 1
        self._record_wall("ingest", time.perf_counter() - started)
        for name in self._head_rest:
            self.run_stage(name, task)
        return task

    def _register(self, task: _FrameTask) -> None:
        """Apply each rig calibrator's consensus shift to its source
        (ordered: every consensus accumulates across frames).  Source
        0 is the reference; sources 1..N-1 are aligned onto it.
        ``applied_shift`` keeps reporting the thermal (source 1)
        shift, as the pairwise reports always did."""
        session = self._session
        if session.calibrators is None:
            return
        for s, calibrator in enumerate(session.calibrators, start=1):
            if s >= len(task.frames):
                break
            offset = calibrator.offset(task.frames[0], task.frames[s])
            if offset is not None:
                task.frames[s] = np.roll(
                    np.roll(task.frames[s], offset[0], axis=0),
                    offset[1], axis=1)
                session._shift_total += float(np.hypot(*offset))
                if s == 1:
                    task.applied_shift = offset

    def run_stage(self, name: str, task: _FrameTask,
                  ctx: Optional[_WorkerContext] = None) -> None:
        started = time.perf_counter()
        try:
            if self.plan.is_unit(name):
                self._run_unit(name, task, ctx)
            else:
                self._run_single(name, task, ctx)
        finally:
            self._record_wall(name, time.perf_counter() - started)

    def _run_single(self, name: str, task: _FrameTask,
                    ctx: Optional[_WorkerContext]) -> None:
        stage = self.plan.stage(name)
        guard = self._guards.get(name)
        if guard is not None and not guard.acquire(blocking=False):
            raise FusionError(
                f"ordered stage {name!r} was driven from two threads "
                f"concurrently; ordered stages carry cross-frame state "
                f"and must run on a single ordered lane")
        try:
            kind = stage.kind
            if kind == "forward":
                fuser, _ = self._stage_lane(task, stage, ctx)
                idx = self._forward_index[name]
                task.pyramids[idx] = fuser.decompose(task.frames[idx])
            elif kind == "fuse":
                fuser, _ = self._stage_lane(task, stage, ctx)
                if len(task.pyramids) == 2:
                    pyramid = fuser.combine(task.pyramids[0],
                                            task.pyramids[1])
                else:
                    pyramid = fuser.combine_many(task.pyramids)
                task.fused = fuser.reconstruct(pyramid)
            elif kind == "temporal":
                session = self._session
                fuser = session._fusers[task.engine.name]
                session.temporal.fusion = fuser
                task.fused = session.temporal.fuse(task.visible,
                                                   task.thermal)
            elif kind == "register":
                self._register(task)
            else:  # "map": a user stage mutating the in-flight task
                stage.fn(task)
        finally:
            if guard is not None:
                guard.release()

    # -- fused dispatch units (the stateless-fusion pass) ---------------
    def _run_unit(self, name: str, task: _FrameTask,
                  ctx: Optional[_WorkerContext]) -> None:
        """Execute a fused dispatch unit: the stacked specializations
        when the unit starts with the canonical transform chain, then
        any remaining members in schedule order.

        ``visible+thermal+fuse`` rides one ``(2, H, W)`` stacked
        forward, vectorized coefficient fusion and one stacked inverse
        (the arithmetic :meth:`ImageFusion.fuse_batch` pins
        bitwise-equal to the per-stage path); ``visible+thermal``
        alone rides the stacked forward.  Members beyond the
        specialized prefix run exactly as their per-stage dispatch
        would — fusion never changes what executes, only how many
        dispatches carry it.
        """
        members = self.plan.units[name]
        rest = members
        forwards = self._forward_names
        k = len(forwards)
        if k >= 2:
            if members[:k + 1] == forwards + ("fuse",) \
                    and self._canonical_kinds(members[:k + 1]):
                self._stacked_chain(task, ctx, with_fuse=True)
                rest = members[k + 1:]
            elif members[:k] == forwards \
                    and self._canonical_kinds(members[:k]):
                self._stacked_chain(task, ctx, with_fuse=False)
                rest = members[k:]
        for member in rest:
            self._run_single(member, task, ctx)

    def _canonical_kinds(self, names: Tuple[str, ...]) -> bool:
        """True when the named stages really are the canonical
        forwards (and fuse) — a custom ``map`` stage may reuse the
        names, and must then take the generic member-by-member path."""
        return all(
            self.plan.stage(n).kind == ("fuse" if n == "fuse"
                                        else "forward")
            for n in names)

    def _stacked_chain(self, task: _FrameTask,
                       ctx: Optional[_WorkerContext],
                       with_fuse: bool) -> None:
        # one lane computes the whole chain: members of a fused unit
        # are placement-compatible by construction (all auto -> the
        # frame's engine, or all forced onto one engine)
        anchor = self.plan.stage("fuse" if with_fuse else "visible")
        fuser, _ = self._stage_lane(task, anchor, ctx)
        shape = task.visible.shape
        k = len(task.frames)
        if self.plan.scratch:
            pool = ctx.scratch if ctx is not None else self._scratch
            # pool the stack in the lane's working dtype: assigning the
            # float64 host frames into it rounds exactly once, the same
            # rounding forward_batch's cast performed on a float64
            # stack — values are bitwise-identical, and the backend's
            # own cast becomes a no-op (no hidden per-frame copy)
            stack = pool.take(("group-stack", k, shape), (k,) + shape,
                              dtype=fuser.transform.backend.dtype)
        else:
            stack = np.empty((k,) + shape)
        for s, frame in enumerate(task.frames):
            stack[s] = frame
        stacked = fuser.decompose_batch(stack)
        slices = [stacked.slice(s, s + 1) for s in range(k)]
        for s in range(k):
            task.pyramids[s] = slices[s][0]
        if with_fuse:
            if k == 2:
                combined = fuser.combine_stack(slices[0], slices[1])
            else:
                combined = fuser.combine_stack_many(slices)
            task.fused = fuser.reconstruct_batch(combined)[0]

    def _stage_lane(self, task: _FrameTask, stage, ctx
                    ) -> Tuple[ImageFusion, Engine]:
        """The :class:`ImageFusion` lane (and engine) ``stage`` must
        compute with for ``task`` — forced placement first, then the
        co-scheduled assignment, then the frame's selected engine."""
        if stage.placement != "auto":
            engine = self._session._placement_engine(stage.placement)
            if ctx is not None:
                return ctx.lane(engine), engine
            return self._session._fuser_for(engine), engine
        return self._lane_for(task, stage.name, ctx)

    def _lane_for(self, task: _FrameTask, stage: str,
                  ctx: Optional[_WorkerContext]
                  ) -> Tuple[ImageFusion, Engine]:
        if ctx is None:
            return self._session._fusers[task.engine.name], task.engine
        engine = task.stage_engines.get(stage) if ctx.co_schedule else None
        if engine is None:
            engine = task.engine
            if ctx.engine is not None and ctx.engine.name == engine.name:
                # a homogeneous team member computes on its own pool
                # instance (same registry factory, same arithmetic)
                engine = ctx.engine
        return ctx.lane(engine), engine

    # legacy per-stage entry points (the ABC contract); plan-driven
    # executors go through run_stage with the plan's own names
    def forward_visible(self, task: _FrameTask,
                        ctx: Optional[_WorkerContext] = None) -> None:
        self.run_stage("visible", task, ctx)

    def forward_thermal(self, task: _FrameTask,
                        ctx: Optional[_WorkerContext] = None) -> None:
        self.run_stage("thermal", task, ctx)

    def fuse(self, task: _FrameTask,
             ctx: Optional[_WorkerContext] = None) -> None:
        name = "temporal" if "temporal" in self.plan else "fuse"
        self.run_stage(name, task, ctx)

    def process_batch(self, tasks) -> None:
        """Batch-executor hook, interpreting the plan's batch groups.

        A sequential mid chain (stateful temporal fusion, or a custom
        ordered stage) keeps the strict per-frame order — the whole
        chain runs frame-major, exactly as the serial loop.  Otherwise
        the canonical ``visible+thermal+fuse`` core (when the plan
        flags it fusable) rides one :meth:`ImageFusion.fuse_batch`
        call per assigned engine — each engine's tasks in frame order,
        so a mixed schedule from the online scheduler stays
        deterministic: all of the group's visible *and* thermal frames
        through a single stacked forward, vectorized coefficient
        fusion, one stacked inverse.  Every other compute stage runs
        in schedule order with its declared granularity: *batchable*
        stages go stage-major (the whole micro-batch through one stage
        before the next), while contiguous runs of non-batchable
        stages go frame-major — each frame passes through the whole
        run before the next frame enters it, so a latency-sensitive
        sink declared ``batchable=False`` keeps its per-frame cadence.
        Either way each stage sees frames in index order, per-frame
        arithmetic is bound to the frame's assigned engine, and
        batched results stay bitwise-identical to the serial executor.
        """
        plan = self.plan
        if plan.sequential_mid:
            for task in tasks:
                for name in plan.compute:
                    self.run_stage(name, task)
            return
        # the plan's batch schedule is the single source of truth for
        # micro-batch execution order — what `repro plan` prints is
        # exactly what runs here
        for names, mode in plan.batch_schedule:
            if mode == "core":
                self._fuse_batch_core(tasks)
            elif mode == "stacked":
                for name in names:
                    for task in tasks:
                        self.run_stage(name, task)
            else:  # "frame": frame-major run of non-batchable stages
                for task in tasks:
                    for name in names:
                        self.run_stage(name, task)

    def _fuse_batch_core(self, tasks) -> None:
        started = time.perf_counter()
        session = self._session
        groups: Dict[str, List[_FrameTask]] = {}
        for task in tasks:
            groups.setdefault(task.engine.name, []).append(task)
        for name, group in groups.items():
            fuser = session._fusers[name]
            k = len(group[0].frames)
            if self.plan.scratch:
                # materialization elimination: the (N*B, H, W) input
                # stack rides one pooled buffer per engine lane; the
                # math below is fuse_batch verbatim minus its
                # concatenate (the buffer already holds each source's
                # frames contiguously, source-major)
                count = len(group)
                shape = group[0].visible.shape
                stack = self._scratch.take(("batch-stack", name, k,
                                            count, shape),
                                           (k * count,) + shape,
                                           dtype=fuser.transform
                                           .backend.dtype)
                for i, task in enumerate(group):
                    for s in range(k):
                        stack[s * count + i] = task.frames[s]
                stacked = fuser.decompose_batch(stack)
                slices = [stacked.slice(s * count, (s + 1) * count)
                          for s in range(k)]
                if k == 2:
                    combined = fuser.combine_stack(slices[0], slices[1])
                else:
                    combined = fuser.combine_stack_many(slices)
                fused = fuser.reconstruct_batch(combined)
                for i, task in enumerate(group):
                    for s in range(k):
                        task.pyramids[s] = slices[s][i]
                    task.fused = fused[i]
            else:
                batch = fuser.fuse_batch(
                    *(np.stack([t.frames[s] for t in group])
                      for s in range(k)))
                for i, task in enumerate(group):
                    for s in range(k):
                        task.pyramids[s] = batch.pyramids[s][i]
                    task.fused = batch.fused[i]
        self._record_wall("batch-core", time.perf_counter() - started)

    # -- accounting -----------------------------------------------------
    def _frame_cost(self, task: _FrameTask) -> Tuple[float, float, str]:
        """(modelled seconds, millijoules, engine label) of one frame.

        Default: the selected engine's whole-frame model — exactly the
        serial session accounting.  Under a co-scheduling executor
        (explicit mixed ``engine_team``), or when the plan forces a
        modelled stage onto a named engine, each stage is billed to
        the engine that actually computed it — so the run report
        always agrees with the lowered plan.
        """
        session = self._session
        power = session.config.power_model
        shape = session.config.fusion_shape
        levels = session.config.levels
        # only the canonical modelled stages participate in per-stage
        # attribution; custom map stages have no hardware model
        co = {stage: engine for stage, engine in task.stage_engines.items()
              if stage in self._modelled_stages}
        if len(co) < len(self._modelled_stages):
            if not self._forced_engines:
                seconds = task.model_seconds
                mj = seconds * power.power_w(task.engine.power_mode) * 1e3
                return seconds, mj, task.engine.name
            co = {stage: self._forced_engines.get(stage, task.engine)
                  for stage in self._modelled_stages
                  if stage in self.plan}

        seconds = 0.0
        mj = 0.0
        for stage, engine in co.items():
            if stage == "fuse":
                stage_s = (engine.fusion_time(shape, levels).total_s
                           + engine.inverse_time(shape, levels).total_s)
            else:
                stage_s = engine.forward_time(shape, levels).total_s
            seconds += stage_s
            mj += stage_s * power.power_w(engine.power_mode) * 1e3
        label = co["fuse"].name if "fuse" in co else task.engine.name
        return seconds, mj, label

    def finalize(self, task: _FrameTask) -> FusedFrameResult:
        started = time.perf_counter()
        session = self._session
        fused = task.fused

        action = ACTION_FUSE
        if session.monitor is not None:
            action = session.monitor.observe(task.visible, task.thermal,
                                             fused).action

        seconds, mj, engine_label = self._frame_cost(task)
        wall = time.perf_counter() - task.started if task.started else None
        session.telemetry.record(seconds, mj, wall_seconds=wall)

        quality: Dict[str, float] = {}
        if session.config.quality_metrics:
            quality = fusion_report(task.visible, task.thermal, fused)
            for key, value in quality.items():
                session._quality_sums[key] = \
                    session._quality_sums.get(key, 0.0) + value
            session._quality_frames += 1

        metadata = {"engine": engine_label, "action": action}
        if len([s for s in task.stage_engines
                if s in self._modelled_stages]) \
                >= len(self._modelled_stages):
            metadata["stages"] = {stage: eng.name for stage, eng
                                  in task.stage_engines.items()}
        result = FusedFrameResult(
            frame=VideoFrame(
                pixels=np.clip(np.round(fused), 0, 255).astype(np.uint8),
                timestamp_s=task.timestamp_s,
                frame_id=task.index,
                source="fused",
                metadata=metadata,
            ),
            visible=task.visible,
            thermal=task.thermal,
            engine=engine_label,
            action=action,
            model_seconds=seconds,
            model_millijoules=mj,
            index=task.index,
            timestamp_s=task.timestamp_s,
            applied_shift=task.applied_shift,
            quality=quality,
            extra_sources=tuple(task.frames[2:]),
        )

        session._frames += 1
        session._engine_usage[engine_label] = \
            session._engine_usage.get(engine_label, 0) + 1
        session._actions[action] = session._actions.get(action, 0) + 1
        session._seconds_total += seconds
        session._millijoules_total += mj
        # records are retained only for the run() batch in flight:
        # stream() already hands each result to the caller, and a
        # session-lifetime list would grow without bound
        if session._batch_records is not None:
            session._batch_records.append(result)
        self._record_wall("finalize", time.perf_counter() - started)
        return result


def _precision_candidates(config: FusionConfig):
    """The scheduler candidate set honoring the config's precision: the
    paper-default trio, minus engines whose datapath cannot run the
    requested dtype (the float32-only FPGA under ``float64``).  With no
    explicit precision every engine qualifies, so default scheduling is
    untouched."""
    return precision_candidates(config.precision)


def build_session_graph(config: FusionConfig) -> FusionGraph:
    """The canonical session dataflow for ``config``, with its
    ``graph_overrides`` applied — the exact graph a
    :class:`FusionSession` on this config lowers.  Shared with the
    :class:`~repro.graph.autotune.PlanAutotuner`, whose cache keys
    hash this graph's structure."""
    graph = FusionGraph.canonical(
        registration=config.registration,
        temporal=config.temporal,
        n_sources=config.n_sources,
    )
    overrides = config.graph_overrides or {}
    for name in overrides.get("drop", ()):
        graph.drop(name)
    for name, engine in (overrides.get("place") or {}).items():
        graph.place(name, engine)
    for anchor, stages in (overrides.get("insert_after") or {}).items():
        if isinstance(stages, Stage):
            stages = (stages,)
        for stage in stages:
            graph.insert_after(anchor, stage)
            anchor = stage.name
    return graph


class FusionSession:
    """A configured capture->register->fuse->monitor loop.

    Parameters
    ----------
    config:
        The session description; defaults to ``FusionConfig()``.
    **overrides:
        Convenience: field overrides applied on top of ``config`` (so
        ``FusionSession(engine="fpga")`` works without building a
        config by hand).

    The session is a context manager: ``with FusionSession(...) as s``
    guarantees :meth:`close` runs, releasing the built-in capture
    source.  Executor worker threads never outlive a single
    :meth:`stream`/:meth:`run` call either way.
    """

    def __init__(self, config: Optional[FusionConfig] = None, **overrides):
        if config is None:
            config = FusionConfig(**overrides)
        elif overrides:
            config = config.with_overrides(**overrides)
        self.autotune_decision = None
        if config.autotune:
            from ..graph.autotune import PlanAutotuner
            tuner = PlanAutotuner(cache_dir=config.plan_cache_dir)
            self.autotune_decision = tuner.decide(config)
            config = self.autotune_decision.apply(config)
        self.config = config

        shape = config.fusion_shape
        self.decision: Optional[Decision] = None
        self.scheduler: Optional[OnlineScheduler] = None
        if config.engine == "online":
            engines = _precision_candidates(config)
            self.scheduler = OnlineScheduler(
                engines, probe_frames=config.probe_frames,
                reprobe_every=config.reprobe_every)
            self._engine = engines[0]
        elif config.engine == "adaptive":
            chooser = CostModelScheduler(
                engines=_precision_candidates(config),
                objective=config.objective,
                power_model=config.power_model)
            self.decision = chooser.choose(shape, config.levels)
            self._engine = self.decision.engine
            engines = (self._engine,)
        else:
            self._engine = create_engine(config.engine)
            engines = (self._engine,)

        rule = config.make_rule()
        self._fusers: Dict[str, ImageFusion] = {
            engine.name: ImageFusion(
                transform=engine.transform(config.levels,
                                           precision=config.precision),
                rule=rule)
            for engine in engines
        }
        self._placement_engines: Dict[str, Engine] = {}

        # one calibrator per non-reference source: each consensus is
        # its own cross-frame state (source s is aligned onto source 0)
        self.calibrators = ([_RigCalibrator(config.levels)
                             for _ in range(config.n_sources - 1)]
                            if config.registration else None)
        self.calibrator = self.calibrators[0] if self.calibrators else None
        self.temporal = (TemporalFusion(fusion=self._fusers[self._engine.name])
                         if config.temporal else None)
        self.monitor = QualityMonitor() if config.monitor else None
        self.telemetry = FrameTelemetry(
            target_fps=config.target_fps,
            energy_budget_mj=config.energy_budget_mj)

        self._planner = Planner()
        self._graph = self._build_graph()
        self.plan = self._lower(self._graph)
        if self.plan.hoisted_frame_seconds:
            for fuser in self._fusers.values():
                fuser.transform.backend.enable_tap_cache()
        self._processor = _SessionProcessor(self, self.plan)
        self._default_source: Optional[CaptureChainSource] = None
        self._frames = 0
        self._next_index = 0
        self._engine_usage: Dict[str, int] = {}
        self._actions: Dict[str, int] = {}
        self._seconds_total = 0.0
        self._millijoules_total = 0.0
        self._shift_total = 0.0
        self._quality_sums: Dict[str, float] = {}
        self._quality_frames = 0
        self._fifo_dropped = 0
        self._decode_errors = 0
        self._batch_records: Optional[List[FusedFrameResult]] = None
        self._last_throughput: Dict[str, object] = {}
        self._concurrent_drive = False
        self._closed = False

    # -- the declarative plan ------------------------------------------
    def _build_graph(self) -> FusionGraph:
        """The canonical pipeline for this config, with the config's
        ``graph_overrides`` applied."""
        return build_session_graph(self.config)

    @property
    def graph(self) -> FusionGraph:
        """The session's standing dataflow, as a *defensive copy*: the
        plan was lowered at construction, so edits here would be
        silently dead — customize via :meth:`canonical_graph` plus
        ``run(graph=...)``/``stream(graph=...)``, or carry edits in
        :attr:`FusionConfig.graph_overrides`."""
        return self._graph.copy()

    def canonical_graph(self) -> FusionGraph:
        """A fresh copy of this session's graph for customization:
        extend it (:meth:`FusionGraph.insert_after`,
        :meth:`FusionGraph.add`), drop or re-place stages, then pass
        it to :meth:`run`/:meth:`stream` as ``graph=``."""
        return self._graph.copy()

    def _lower(self, graph: FusionGraph) -> "FusionPlan":
        """Lower ``graph`` against this config, applying the
        optimization pipeline when the config asks for it."""
        plan = self._planner.lower(graph, self.config)
        if self.config.optimize:
            from ..graph.passes import optimize_plan
            plan = optimize_plan(plan, self.config)
        return plan

    def _processor_for(self, graph: Optional[FusionGraph]
                       ) -> "_SessionProcessor":
        """The session's standing processor, or a one-drive processor
        interpreting ``graph`` lowered against this config."""
        if graph is None:
            return self._processor
        return _SessionProcessor(self, self._lower(graph))

    # ------------------------------------------------------------------
    @property
    def engine(self) -> Engine:
        """The engine in use (most recently selected, if scheduled)."""
        return self._engine

    def _placement_engine(self, name: str) -> Engine:
        """The session-owned engine instance backing a forced stage
        placement (created once per engine name)."""
        engine = self._placement_engines.get(name)
        if engine is None:
            engine = create_engine(name)
            self._placement_engines[name] = engine
        return engine

    def _new_fuser(self, engine: Engine) -> ImageFusion:
        """A fresh fusion lane on ``engine``, inheriting the plan's
        hoisting decisions (worker contexts and late placements build
        their lanes here so optimized plans stay uniform)."""
        fuser = ImageFusion(
            transform=engine.transform(self.config.levels,
                                       precision=self.config.precision),
            rule=self.config.make_rule())
        if self.plan.hoisted_frame_seconds:
            fuser.transform.backend.enable_tap_cache()
        return fuser

    def _fuser_for(self, engine: Engine) -> ImageFusion:
        """The serial-lane fuser for ``engine``, created on first use
        (forced placements may name engines outside the scheduler's
        set)."""
        fuser = self._fusers.get(engine.name)
        if fuser is None:
            fuser = self._new_fuser(engine)
            self._fusers[engine.name] = fuser
        return fuser

    @property
    def frames_processed(self) -> int:
        return self._frames

    def capture_source(self) -> CaptureChainSource:
        """The built-in capture chain :meth:`run` consumes (created
        lazily, persisted so repeated runs continue the same stream)."""
        if self._default_source is None:
            self._default_source = CaptureChainSource(
                scene=self.config.make_scene())
        return self._default_source

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release session-owned resources (idempotent).

        Executor workers are joined at the end of each stream; this
        closes what outlives streams — the persistent capture source.
        """
        if self._closed:
            return
        self._closed = True
        if self._default_source is not None:
            self._default_source.close()

    def __enter__(self) -> "FusionSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _normalize(self, image: np.ndarray) -> np.ndarray:
        """Register one modality onto the fusion geometry."""
        data = np.asarray(image, dtype=np.float64)
        if data.ndim != 2:
            raise ConfigurationError(
                f"session input frames must be 2-D grayscale, got shape "
                f"{data.shape}"
            )
        target = self.config.fusion_shape.array_shape
        if data.shape != target:
            data = resize_to(data, target)
        return data

    def _select_engine(self) -> Engine:
        if self.scheduler is not None:
            self._engine = self.scheduler.next_engine()
        return self._engine

    @staticmethod
    def _validate_drive(executor: str, config: FusionConfig,
                        per_call: bool) -> None:
        """Reject conflicting executor/tuning combinations loudly.

        Field-level validity is checked eagerly by
        :class:`FusionConfig`; this guards the *combinations* a drive
        is about to run with — which a mutated config or a per-call
        ``executor=`` override can put into conflict — so the failure
        is a clear :class:`FusionError` here instead of a stack trace
        deep inside an executor thread.  (``per_call`` overrides away
        from ``hetero`` deliberately drop a configured ``engine_team``
        for that drive, so the team/executor conflict only applies to
        the config's own pairing.)
        """
        if executor == "batch" and config.batch_size < 1:
            raise FusionError(
                f"executor='batch' conflicts with "
                f"batch_size={config.batch_size}: the batch executor "
                f"needs batch_size >= 1")
        if executor in ("pipeline", "hetero") and config.workers < 1:
            raise FusionError(
                f"executor={executor!r} conflicts with "
                f"workers={config.workers}: concurrent executors need "
                f"workers >= 1")
        if executor != "serial" and config.queue_depth < 1:
            raise FusionError(
                f"executor={executor!r} conflicts with "
                f"queue_depth={config.queue_depth}: frames in flight "
                f"must be bounded by at least 1")
        if (config.engine_team is not None and executor != "hetero"
                and not per_call):
            raise FusionError(
                f"engine_team={config.engine_team} conflicts with "
                f"executor={executor!r}: a team only drives the "
                f"'hetero' executor")

    def _make_executor(self, processor: "_SessionProcessor",
                       name: Optional[str] = None) -> Executor:
        """Build the configured executor for one stream drive.

        ``name`` overrides the config's executor for this drive only
        (the config's ``workers``/``queue_depth`` tuning still applies;
        a configured ``engine_team`` only applies when this drive is
        heterogeneous).  The drive's lowered plan supplies the stage
        names and the fuse affinity of a co-scheduled team.
        """
        self._validate_drive(name or self.config.executor, self.config,
                             per_call=name is not None)
        if name is None:
            config = self.config
        else:
            overrides = {"executor": name}
            if name != "hetero":
                overrides["engine_team"] = None
            config = self.config.with_overrides(**overrides)
        plan = processor.plan
        if config.executor == "hetero":
            stages = (*plan.parallel, *plan.mid)
            if config.engine_team is not None:
                team = tuple(create_engine(name)
                             for name in config.engine_team)
                return make_executor("hetero", engines=team,
                                     queue_depth=config.queue_depth,
                                     co_schedule=True,
                                     affinity=plan.affinity,
                                     stages=stages)
            team = create_engine_pool(self._engine.name, config.workers)
            return make_executor("hetero", engines=team,
                                 queue_depth=config.queue_depth,
                                 stages=stages)
        return make_executor(config.executor, workers=config.workers,
                             queue_depth=config.queue_depth,
                             batch_size=config.batch_size)

    def process(self, *frames: np.ndarray,
                timestamp_s: float = 0.0,
                index: Optional[int] = None) -> FusedFrameResult:
        """Fuse one frame group under the configured policies.

        Positional arguments are the source frames in source order —
        the historical ``process(visible, thermal)`` pair, or N frames
        matching ``FusionConfig(n_sources=N)``.  Always executes
        inline on the calling thread (the serial path), whatever
        executor the config names for streams.  It cannot run while a
        *concurrent* stream is driving this session: the executor's
        capture thread mutates the same ordered state (frame indices,
        scheduler, calibration), so the call is rejected rather than
        racing it.
        """
        if self._concurrent_drive:
            raise ConfigurationError(
                "process() cannot run while a concurrent executor is "
                "driving a stream on this session; finish or abandon "
                "the stream first"
            )
        if len(frames) == 2:
            pair = FramePair(visible=frames[0], thermal=frames[1],
                             timestamp_s=timestamp_s)
        else:
            pair = FrameGroup(frames=tuple(frames),
                              timestamp_s=timestamp_s)
        processor = self._processor
        task = processor.ingest(pair, index=0)
        if index is not None:
            task.index = index
        for name in processor.plan.compute:
            processor.run_stage(name, task)
        return processor.finalize(task)

    # ------------------------------------------------------------------
    def stream(self, source, limit: Optional[int] = None,
               executor: Optional[str] = None,
               graph: Optional[FusionGraph] = None
               ) -> Iterator[FusedFrameResult]:
        """Fuse every pair ``source`` yields, as a lazy stream.

        ``source`` may be any :class:`FrameSource` or a plain iterable
        of ``(visible, thermal)`` pairs; ``limit`` stops after that
        many fused frames (needed for infinite sources).  Frames are
        driven by the configured executor (or the ``executor`` named
        here, for this stream only); results arrive in frame order
        regardless of executor.  ``graph`` swaps in a customized
        :class:`~repro.graph.FusionGraph` (usually built from
        :meth:`canonical_graph`) for this stream only — it is lowered
        through the planner against this session's config, and every
        executor interprets the same lowered plan.  The source and any
        executor worker threads are released when the stream ends —
        normally, on error, or when the caller abandons the iterator.

        The stream owns its source for cleanup: ``source.close()``
        runs when the stream ends.  :class:`FrameSource` objects
        default to a no-op close, so the built-in sources (synthetic,
        cameras, capture chain) stay reusable across streams; a plain
        generator passed directly is *closed with the stream* — wrap
        it in a :class:`FrameSource` whose ``close`` you control to
        keep it alive for a later stream.

        A concurrent executor also reads ahead: abandoning its stream
        mid-way (without ``limit``) leaves the source and the
        session's ordered policies (frame indices, scheduler
        observations, calibration) advanced by up to ``queue_depth``
        ingested-but-undelivered frames.  Pass ``limit`` when the
        session continues afterwards — a bounded drive never reads
        past its last delivered frame.
        """
        if limit is not None and limit < 1:
            raise ConfigurationError(
                f"limit must be >= 1 or None, got {limit}"
            )
        src = as_frame_source(source)
        fifo_start = getattr(src, "fifo_dropped", None)
        decode_start = getattr(src, "decode_errors", None)
        driver: Optional[Executor] = None
        try:
            processor = self._processor_for(graph)
            wall_mark = processor.stage_wall_snapshot()
            driver = self._make_executor(processor, executor)
            self._concurrent_drive = driver.concurrent
            # a closed-aware iterator keeps the executor contract
            # (pairs is a real Iterator) while letting the drive see a
            # mid-stream close() and fail loudly instead of pulling
            # from a dead source
            yield from driver.run(processor, ClosedAwareIterator(src),
                                  limit=limit)
        finally:
            self._concurrent_drive = False
            if driver is not None:
                driver.close()
                # every drive overwrites the block, a zero-frame drive
                # included — a batch report must never carry the
                # previous batch's wall-clock numbers
                driver.stats.stage_wall_s = \
                    processor.stage_wall_since(wall_mark)
                self._last_throughput = driver.stats.as_dict()
            # fold the transport health of whichever source fed this
            # stream into the session's counters
            if fifo_start is not None:
                self._fifo_dropped += src.fifo_dropped - fifo_start
            if decode_start is not None:
                self._decode_errors += src.decode_errors - decode_start
            src.close()

    def run(self, n_frames: int = 10,
            source: Optional[FrameSource] = None,
            executor: Optional[str] = None,
            graph: Optional[FusionGraph] = None) -> FusionReport:
        """Fuse ``n_frames`` from ``source`` (default: the built-in
        capture chain) and report aggregates for exactly that batch.

        ``executor`` names an execution strategy for this batch only
        (e.g. ``run(64, executor="pipeline")``), otherwise the config's
        executor drives.  ``graph`` swaps in a customized dataflow for
        this batch (see :meth:`stream`).  A finite ``source`` may be
        exhausted before ``n_frames`` are fused; the report's
        ``frames`` then tells the truth and a :class:`RuntimeWarning`
        flags the shortfall.
        """
        if n_frames < 1:
            raise ConfigurationError(
                f"n_frames must be >= 1, got {n_frames}"
            )
        mark = self._snapshot()
        stream_source = source if source is not None else self.capture_source()
        self._batch_records = [] if self.config.keep_records else None
        try:
            for _ in self.stream(stream_source, limit=n_frames,
                                 executor=executor, graph=graph):
                pass
            report = self._report_since(mark)
            report.records = self._batch_records or []
        finally:
            self._batch_records = None
        if report.frames < n_frames:
            warnings.warn(
                f"source exhausted after {report.frames} of the "
                f"{n_frames} requested frames",
                RuntimeWarning, stacklevel=2,
            )
        return report

    def serve(self, source: Optional[FrameSource] = None,
              frames: int = 10,
              pool: Optional[object] = None,
              priority: float = 1.0,
              **service_kwargs) -> FusionReport:
        """Drive this session's *configuration* through the serving
        layer as a single-tenant :class:`repro.serve.FusionService`.

        The N=1 interop with multi-stream serving: the same config,
        graph and plan are served over an engine pool (default: one
        instance of every engine this session may select), and the
        stream's :class:`FusionReport` comes back — bitwise-identical
        frames to :meth:`run` on the same seeded source.  The service
        builds its own private session from the config, so this
        session's accumulated counters stay untouched; ``pool`` and
        ``service_kwargs`` (``max_in_flight``, ``stream_queue_depth``,
        ``workers``) expose the serving knobs for experimentation.
        """
        from ..serve import FusionService

        if source is None:
            source = CaptureChainSource(scene=self.config.make_scene())
        if pool is None:
            if self.scheduler is not None:
                names = [engine.name for engine in self.scheduler.engines]
            else:
                names = [self._engine.name]
            pool = {name: 1 for name in names}
        with FusionService(pool=pool, **service_kwargs) as service:
            service.add_stream("session", config=self.config,
                               source=source, frames=frames,
                               priority=priority)
            report = service.serve()
        return report.streams["session"]

    # ------------------------------------------------------------------
    def _snapshot(self) -> Dict[str, object]:
        return {
            "frames": self._frames,
            "engine_usage": dict(self._engine_usage),
            "actions": dict(self._actions),
            "seconds": self._seconds_total,
            "millijoules": self._millijoules_total,
            "shift": self._shift_total,
            "quality_sums": dict(self._quality_sums),
            "quality_frames": self._quality_frames,
            "fifo": self._fifo_dropped,
            "decode": self._decode_errors,
        }

    def _report_since(self, mark: Dict[str, object]) -> FusionReport:
        frames = self._frames - mark["frames"]
        usage = {
            name: count - mark["engine_usage"].get(name, 0)
            for name, count in self._engine_usage.items()
            if count - mark["engine_usage"].get(name, 0) > 0
        }
        actions = {
            name: count - mark["actions"].get(name, 0)
            for name, count in self._actions.items()
            if count - mark["actions"].get(name, 0) > 0
        }
        quality_frames = self._quality_frames - mark["quality_frames"]
        quality: Dict[str, float] = {}
        if quality_frames:
            quality = {
                key: (total - mark["quality_sums"].get(key, 0.0))
                / quality_frames
                for key, total in self._quality_sums.items()
            }
        return FusionReport(
            frames=frames,
            engine_usage=usage,
            actions=actions,
            model_seconds_total=self._seconds_total - mark["seconds"],
            model_millijoules_total=(self._millijoules_total
                                     - mark["millijoules"]),
            quality=quality,
            alarms=self.monitor.alarms if self.monitor else 0,
            mean_qabf=(self.monitor.mean_qabf()
                       if self.monitor and self.monitor.history else 0.0),
            telemetry=(self.telemetry.summary().as_dict()
                       if self.telemetry.frames else {}),
            registered_shift_px=((self._shift_total - mark["shift"]) / frames
                                 if frames else 0.0),
            fifo_dropped=self._fifo_dropped - mark["fifo"],
            decode_errors=self._decode_errors - mark["decode"],
            # wall-clock stats describe the most recent executor drive
            # (they are measured, not additive across intervals)
            throughput=dict(self._last_throughput),
        )

    def report(self) -> FusionReport:
        """Aggregate report over every frame this session has fused.

        Per-frame records live on each :meth:`run` report (and with
        the consumer of each :meth:`stream`), not here — a lifetime
        list would grow without bound on long-running sessions.
        """
        return self._report_since({
            "frames": 0, "engine_usage": {}, "actions": {},
            "seconds": 0.0, "millijoules": 0.0, "shift": 0.0,
            "quality_sums": {}, "quality_frames": 0,
            "fifo": 0, "decode": 0,
        })
