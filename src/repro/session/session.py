"""The fusion session facade: one object, every way to run the system.

:class:`FusionSession` subsumes the old ``VideoFusionSystem`` (batch
runs over the modelled capture chain) and ``AdvancedFusionSession``
(online scheduling, registration, temporal fusion, monitoring,
telemetry) behind one configured object with three entry points:

* :meth:`process` — fuse one (visible, thermal) pair;
* :meth:`stream` — iterate any :class:`FrameSource`, yielding a
  :class:`FusedFrameResult` per frame (the continuous loop the paper's
  system runs);
* :meth:`run` — fuse ``n`` frames from the built-in capture chain and
  return an aggregate :class:`FusionReport`.

Everything optional — registration, temporal fusion, quality
monitoring, per-frame metrics — is switched by the
:class:`FusionConfig`, so ablations change a flag, not a class.

*How* frames are driven is equally pluggable: :meth:`stream` and
:meth:`run` route every frame through the :mod:`repro.exec` executor
the config names — the serial reference loop, the double-buffered
thread pipeline, heterogeneous engine co-scheduling, or micro-batched
NumPy vectorization — via the staged :class:`_SessionProcessor`
below.  The stateful stages (ingest:
calibration + engine selection; finalize: monitoring + telemetry)
always run in frame order on one thread, so every executor yields
bitwise-identical results for a fixed seed (for bounded or fully
consumed drives; see :meth:`FusionSession.stream` on the read-ahead
of abandoned concurrent streams).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..core.adaptive import (CostModelScheduler, Decision, OnlineScheduler,
                             PerLevelScheduler)
from ..core.fusion import ImageFusion
from ..core.metrics import fusion_report
from ..core.quality_monitor import ACTION_FUSE, QualityMonitor
from ..core.registration import DtcwtRegistration
from ..core.video_fusion import TemporalFusion
from ..errors import ConfigurationError
from ..exec import Executor, FrameProcessor, make_executor
from ..hw.engine import Engine
from ..hw.registry import create_engine, create_engine_pool, default_engines
from ..video.frames import VideoFrame
from ..video.scaler import resize_to
from .config import FusionConfig
from .report import FusedFrameResult, FusionReport
from .sources import CaptureChainSource, FramePair, FrameSource, as_frame_source
from .telemetry import FrameTelemetry


class _RigCalibrator:
    """Static-rig calibration: apply the median shift once it is stable.

    A co-located camera pair has one fixed offset; per-frame estimates
    that saturate the search bound or disagree with the consensus are
    measurement noise, not motion, and applying them would misalign a
    well-aligned rig.
    """

    def __init__(self, levels: int):
        self.registration = DtcwtRegistration(levels=max(2, levels),
                                              max_shift=6)
        self._estimates: List[Tuple[float, float]] = []

    def offset(self, visible: np.ndarray,
               thermal: np.ndarray) -> Optional[Tuple[int, int]]:
        result = self.registration.estimate(visible, thermal)
        bound = self.registration.max_shift
        if abs(result.dy) < bound and abs(result.dx) < bound:
            self._estimates.append((result.dy, result.dx))
        if len(self._estimates) < 3:
            return None
        recent = self._estimates[-5:]
        dy = float(np.median([e[0] for e in recent]))
        dx = float(np.median([e[1] for e in recent]))
        spread = max(abs(e[0] - dy) + abs(e[1] - dx) for e in recent)
        if spread > 2.0:
            return None  # estimates disagree: no confident calibration
        if round(dy) == 0 and round(dx) == 0:
            return None  # rig already aligned
        return int(round(dy)), int(round(dx))


@dataclass
class _FrameTask:
    """One frame in flight between the processor's stages."""

    index: int
    timestamp_s: float
    visible: np.ndarray
    thermal: np.ndarray
    engine: Engine
    model_seconds: float
    applied_shift: Optional[Tuple[int, int]] = None
    started: float = 0.0
    pyr_visible: object = None
    pyr_thermal: object = None
    fused: Optional[np.ndarray] = None
    #: stage -> engine assigned by a co-scheduling executor
    stage_engines: Dict[str, Engine] = dataclass_field(default_factory=dict)


class _WorkerContext:
    """Per-worker compute state handed to concurrent stage calls.

    Engines carry non-thread-safe backend state (the FPGA driver's
    buffers, coefficient caches), so each concurrent worker gets its
    own :class:`ImageFusion` lane per engine *name*, built from that
    engine's own transform factory.  Lanes are functionally identical
    to the session's serial fusers, which is what keeps concurrent
    schedules bitwise-equal to the serial loop.
    """

    def __init__(self, session: "FusionSession",
                 engine: Optional[Engine] = None,
                 co_schedule: bool = False):
        self._session = session
        self.engine = engine
        self.co_schedule = co_schedule
        self._lanes: Dict[str, ImageFusion] = {}

    def lane(self, engine: Engine) -> ImageFusion:
        fuser = self._lanes.get(engine.name)
        if fuser is None:
            config = self._session.config
            fuser = ImageFusion(transform=engine.transform(config.levels),
                                rule=config.make_rule())
            self._lanes[engine.name] = fuser
        return fuser


class _SessionProcessor(FrameProcessor):
    """The session's fusion dataflow, expressed as executor stages."""

    def __init__(self, session: "FusionSession"):
        self._session = session

    # -- scheduling hints ----------------------------------------------
    @property
    def sequential_fuse(self) -> bool:
        # temporal fusion carries state (smoothed masks) across frames
        # and decomposes internally: the whole transform must run in
        # frame order on a single thread
        return self._session.temporal is not None

    def make_contexts(self, n, engines=None):
        session = self._session
        if engines is None:
            return [_WorkerContext(session) for _ in range(n)]
        co = session.config.engine_team is not None
        return [_WorkerContext(session, engine=engine, co_schedule=co)
                for engine in engines]

    def assign(self, task: _FrameTask, stage: str, engine: Engine) -> None:
        """Dispatch-time hook: a co-scheduling executor pins ``stage``
        of ``task`` to ``engine`` (deterministically, in frame order)."""
        task.stage_engines[stage] = engine

    # -- stages ---------------------------------------------------------
    def ingest(self, pair: FramePair, index: int) -> _FrameTask:
        session = self._session
        vis = session._normalize(pair.visible)
        th = session._normalize(pair.thermal)

        applied_shift = None
        if session.calibrator is not None:
            offset = session.calibrator.offset(vis, th)
            if offset is not None:
                th = np.roll(np.roll(th, offset[0], axis=0),
                             offset[1], axis=1)
                session._shift_total += float(np.hypot(*offset))
                applied_shift = offset

        engine = session._select_engine()
        seconds = engine.frame_time(session.config.fusion_shape,
                                    session.config.levels).total_s
        if session.scheduler is not None:
            # the observation is the modelled cost, known at selection
            # time; feeding it here keeps the probe/exploit sequence
            # identical no matter how far an executor reads ahead
            session.scheduler.observe(engine, seconds)

        task = _FrameTask(
            index=session._next_index,
            timestamp_s=pair.timestamp_s,
            visible=vis,
            thermal=th,
            engine=engine,
            model_seconds=seconds,
            applied_shift=applied_shift,
            started=time.perf_counter(),
        )
        session._next_index += 1
        return task

    def _lane_for(self, task: _FrameTask, stage: str,
                  ctx: Optional[_WorkerContext]
                  ) -> Tuple[ImageFusion, Engine]:
        if ctx is None:
            return self._session._fusers[task.engine.name], task.engine
        engine = task.stage_engines.get(stage) if ctx.co_schedule else None
        if engine is None:
            engine = task.engine
            if ctx.engine is not None and ctx.engine.name == engine.name:
                # a homogeneous team member computes on its own pool
                # instance (same registry factory, same arithmetic)
                engine = ctx.engine
        return ctx.lane(engine), engine

    def forward_visible(self, task: _FrameTask,
                        ctx: Optional[_WorkerContext] = None) -> None:
        fuser, _ = self._lane_for(task, "visible", ctx)
        task.pyr_visible = fuser.decompose(task.visible)

    def forward_thermal(self, task: _FrameTask,
                        ctx: Optional[_WorkerContext] = None) -> None:
        fuser, _ = self._lane_for(task, "thermal", ctx)
        task.pyr_thermal = fuser.decompose(task.thermal)

    def fuse(self, task: _FrameTask,
             ctx: Optional[_WorkerContext] = None) -> None:
        session = self._session
        if session.temporal is not None:
            fuser = session._fusers[task.engine.name]
            session.temporal.fusion = fuser
            task.fused = session.temporal.fuse(task.visible, task.thermal)
            return
        fuser, _ = self._lane_for(task, "fuse", ctx)
        pyramid = fuser.combine(task.pyr_visible, task.pyr_thermal)
        task.fused = fuser.reconstruct(pyramid)

    def process_batch(self, tasks) -> None:
        """Batch-executor hook: stacked transforms per assigned engine.

        Temporal fusion is stateful across frames and decomposes
        internally, so it keeps the strict per-frame order (exactly
        the serial fuse stage).  Otherwise each engine's tasks — in
        frame order within the group, so a mixed schedule from the
        online scheduler stays deterministic — ride one
        :meth:`ImageFusion.fuse_batch` call: all of the group's
        visible *and* thermal frames through a single stacked forward,
        vectorized coefficient fusion, one stacked inverse.  Per-frame
        arithmetic is bound to the frame's assigned engine either way,
        which keeps batched results bitwise-identical to the serial
        loop.
        """
        session = self._session
        if session.temporal is not None:
            for task in tasks:
                self.fuse(task)
            return
        groups: Dict[str, List[_FrameTask]] = {}
        for task in tasks:
            groups.setdefault(task.engine.name, []).append(task)
        for name, group in groups.items():
            fuser = session._fusers[name]
            batch = fuser.fuse_batch(
                np.stack([t.visible for t in group]),
                np.stack([t.thermal for t in group]),
            )
            for i, task in enumerate(group):
                task.pyr_visible = batch.pyramids_a[i]
                task.pyr_thermal = batch.pyramids_b[i]
                task.fused = batch.fused[i]

    # -- accounting -----------------------------------------------------
    def _frame_cost(self, task: _FrameTask) -> Tuple[float, float, str]:
        """(modelled seconds, millijoules, engine label) of one frame.

        Default: the selected engine's whole-frame model — exactly the
        serial session accounting.  Under a co-scheduling executor
        (explicit mixed ``engine_team``) each stage is billed to its
        assigned engine instead.
        """
        session = self._session
        power = session.config.power_model
        shape = session.config.fusion_shape
        levels = session.config.levels
        if len(task.stage_engines) < 3:
            seconds = task.model_seconds
            mj = seconds * power.power_w(task.engine.power_mode) * 1e3
            return seconds, mj, task.engine.name

        seconds = 0.0
        mj = 0.0
        for stage, engine in task.stage_engines.items():
            if stage == "fuse":
                stage_s = (engine.fusion_time(shape, levels).total_s
                           + engine.inverse_time(shape, levels).total_s)
            else:
                stage_s = engine.forward_time(shape, levels).total_s
            seconds += stage_s
            mj += stage_s * power.power_w(engine.power_mode) * 1e3
        label = task.stage_engines["fuse"].name
        return seconds, mj, label

    def finalize(self, task: _FrameTask) -> FusedFrameResult:
        session = self._session
        fused = task.fused

        action = ACTION_FUSE
        if session.monitor is not None:
            action = session.monitor.observe(task.visible, task.thermal,
                                             fused).action

        seconds, mj, engine_label = self._frame_cost(task)
        wall = time.perf_counter() - task.started if task.started else None
        session.telemetry.record(seconds, mj, wall_seconds=wall)

        quality: Dict[str, float] = {}
        if session.config.quality_metrics:
            quality = fusion_report(task.visible, task.thermal, fused)
            for key, value in quality.items():
                session._quality_sums[key] = \
                    session._quality_sums.get(key, 0.0) + value
            session._quality_frames += 1

        metadata = {"engine": engine_label, "action": action}
        if len(task.stage_engines) >= 3:
            metadata["stages"] = {stage: eng.name for stage, eng
                                  in task.stage_engines.items()}
        result = FusedFrameResult(
            frame=VideoFrame(
                pixels=np.clip(np.round(fused), 0, 255).astype(np.uint8),
                timestamp_s=task.timestamp_s,
                frame_id=task.index,
                source="fused",
                metadata=metadata,
            ),
            visible=task.visible,
            thermal=task.thermal,
            engine=engine_label,
            action=action,
            model_seconds=seconds,
            model_millijoules=mj,
            index=task.index,
            timestamp_s=task.timestamp_s,
            applied_shift=task.applied_shift,
            quality=quality,
        )

        session._frames += 1
        session._engine_usage[engine_label] = \
            session._engine_usage.get(engine_label, 0) + 1
        session._actions[action] = session._actions.get(action, 0) + 1
        session._seconds_total += seconds
        session._millijoules_total += mj
        # records are retained only for the run() batch in flight:
        # stream() already hands each result to the caller, and a
        # session-lifetime list would grow without bound
        if session._batch_records is not None:
            session._batch_records.append(result)
        return result


class FusionSession:
    """A configured capture->register->fuse->monitor loop.

    Parameters
    ----------
    config:
        The session description; defaults to ``FusionConfig()``.
    **overrides:
        Convenience: field overrides applied on top of ``config`` (so
        ``FusionSession(engine="fpga")`` works without building a
        config by hand).

    The session is a context manager: ``with FusionSession(...) as s``
    guarantees :meth:`close` runs, releasing the built-in capture
    source.  Executor worker threads never outlive a single
    :meth:`stream`/:meth:`run` call either way.
    """

    def __init__(self, config: Optional[FusionConfig] = None, **overrides):
        if config is None:
            config = FusionConfig(**overrides)
        elif overrides:
            config = config.with_overrides(**overrides)
        self.config = config

        shape = config.fusion_shape
        self.decision: Optional[Decision] = None
        self.scheduler: Optional[OnlineScheduler] = None
        if config.engine == "online":
            engines = default_engines()
            self.scheduler = OnlineScheduler(
                engines, probe_frames=config.probe_frames,
                reprobe_every=config.reprobe_every)
            self._engine = engines[0]
        elif config.engine == "adaptive":
            chooser = CostModelScheduler(objective=config.objective,
                                         power_model=config.power_model)
            self.decision = chooser.choose(shape, config.levels)
            self._engine = self.decision.engine
            engines = (self._engine,)
        else:
            self._engine = create_engine(config.engine)
            engines = (self._engine,)

        rule = config.make_rule()
        self._fusers: Dict[str, ImageFusion] = {
            engine.name: ImageFusion(transform=engine.transform(config.levels),
                                     rule=rule)
            for engine in engines
        }

        self.calibrator = (_RigCalibrator(config.levels)
                           if config.registration else None)
        self.temporal = (TemporalFusion(fusion=self._fusers[self._engine.name])
                         if config.temporal else None)
        self.monitor = QualityMonitor() if config.monitor else None
        self.telemetry = FrameTelemetry(
            target_fps=config.target_fps,
            energy_budget_mj=config.energy_budget_mj)

        self._processor = _SessionProcessor(self)
        self._default_source: Optional[CaptureChainSource] = None
        self._frames = 0
        self._next_index = 0
        self._engine_usage: Dict[str, int] = {}
        self._actions: Dict[str, int] = {}
        self._seconds_total = 0.0
        self._millijoules_total = 0.0
        self._shift_total = 0.0
        self._quality_sums: Dict[str, float] = {}
        self._quality_frames = 0
        self._fifo_dropped = 0
        self._decode_errors = 0
        self._batch_records: Optional[List[FusedFrameResult]] = None
        self._last_throughput: Dict[str, object] = {}
        self._concurrent_drive = False
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def engine(self) -> Engine:
        """The engine in use (most recently selected, if scheduled)."""
        return self._engine

    @property
    def frames_processed(self) -> int:
        return self._frames

    def capture_source(self) -> CaptureChainSource:
        """The built-in capture chain :meth:`run` consumes (created
        lazily, persisted so repeated runs continue the same stream)."""
        if self._default_source is None:
            self._default_source = CaptureChainSource(
                scene=self.config.make_scene())
        return self._default_source

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release session-owned resources (idempotent).

        Executor workers are joined at the end of each stream; this
        closes what outlives streams — the persistent capture source.
        """
        if self._closed:
            return
        self._closed = True
        if self._default_source is not None:
            self._default_source.close()

    def __enter__(self) -> "FusionSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _normalize(self, image: np.ndarray) -> np.ndarray:
        """Register one modality onto the fusion geometry."""
        data = np.asarray(image, dtype=np.float64)
        if data.ndim != 2:
            raise ConfigurationError(
                f"session input frames must be 2-D grayscale, got shape "
                f"{data.shape}"
            )
        target = self.config.fusion_shape.array_shape
        if data.shape != target:
            data = resize_to(data, target)
        return data

    def _select_engine(self) -> Engine:
        if self.scheduler is not None:
            self._engine = self.scheduler.next_engine()
        return self._engine

    def _make_executor(self, name: Optional[str] = None) -> Executor:
        """Build the configured executor for one stream drive.

        ``name`` overrides the config's executor for this drive only
        (the config's ``workers``/``queue_depth`` tuning still applies;
        a configured ``engine_team`` only applies when this drive is
        heterogeneous).
        """
        if name is None:
            config = self.config
        else:
            overrides = {"executor": name}
            if name != "hetero":
                overrides["engine_team"] = None
            config = self.config.with_overrides(**overrides)
        if config.executor == "hetero":
            if config.engine_team is not None:
                team = tuple(create_engine(name)
                             for name in config.engine_team)
                return make_executor("hetero", engines=team,
                                     queue_depth=config.queue_depth,
                                     co_schedule=True,
                                     affinity=self._plan_affinity(team))
            team = create_engine_pool(self._engine.name, config.workers)
            return make_executor("hetero", engines=team,
                                 queue_depth=config.queue_depth)
        return make_executor(config.executor, workers=config.workers,
                             queue_depth=config.queue_depth,
                             batch_size=config.batch_size)

    def _plan_affinity(self, team: Tuple[Engine, ...]
                       ) -> Optional[Dict[str, str]]:
        """Pin the fuse/inverse stage where the per-level plan puts the
        bulk of the inverse transform; forwards stay round-robin so
        the two decompositions of a pair land on different engines."""
        try:
            plan = PerLevelScheduler(engines=team).plan(
                self.config.fusion_shape, self.config.levels)
        except ConfigurationError:
            return None  # team contains engines the planner cannot cost
        counts: Dict[str, int] = {}
        for name in plan.inverse_assignment:
            counts[name] = counts.get(name, 0) + 1
        return {"fuse": max(counts.items(), key=lambda kv: kv[1])[0]}

    def process(self, visible: np.ndarray, thermal: np.ndarray,
                timestamp_s: float = 0.0,
                index: Optional[int] = None) -> FusedFrameResult:
        """Fuse one frame pair under the configured policies.

        Always executes inline on the calling thread (the serial
        path), whatever executor the config names for streams.  It
        cannot run while a *concurrent* stream is driving this
        session: the executor's capture thread mutates the same
        ordered state (frame indices, scheduler, calibration), so the
        call is rejected rather than racing it.
        """
        if self._concurrent_drive:
            raise ConfigurationError(
                "process() cannot run while a concurrent executor is "
                "driving a stream on this session; finish or abandon "
                "the stream first"
            )
        pair = FramePair(visible=visible, thermal=thermal,
                         timestamp_s=timestamp_s)
        task = self._processor.ingest(pair, index=0)
        if index is not None:
            task.index = index
        self._processor.forward_visible(task)
        self._processor.forward_thermal(task)
        self._processor.fuse(task)
        return self._processor.finalize(task)

    # ------------------------------------------------------------------
    def stream(self, source, limit: Optional[int] = None,
               executor: Optional[str] = None
               ) -> Iterator[FusedFrameResult]:
        """Fuse every pair ``source`` yields, as a lazy stream.

        ``source`` may be any :class:`FrameSource` or a plain iterable
        of ``(visible, thermal)`` pairs; ``limit`` stops after that
        many fused frames (needed for infinite sources).  Frames are
        driven by the configured executor (or the ``executor`` named
        here, for this stream only); results arrive in frame order
        regardless of executor.  The source and any executor worker
        threads are released when the stream ends — normally, on
        error, or when the caller abandons the iterator.

        The stream owns its source for cleanup: ``source.close()``
        runs when the stream ends.  :class:`FrameSource` objects
        default to a no-op close, so the built-in sources (synthetic,
        cameras, capture chain) stay reusable across streams; a plain
        generator passed directly is *closed with the stream* — wrap
        it in a :class:`FrameSource` whose ``close`` you control to
        keep it alive for a later stream.

        A concurrent executor also reads ahead: abandoning its stream
        mid-way (without ``limit``) leaves the source and the
        session's ordered policies (frame indices, scheduler
        observations, calibration) advanced by up to ``queue_depth``
        ingested-but-undelivered frames.  Pass ``limit`` when the
        session continues afterwards — a bounded drive never reads
        past its last delivered frame.
        """
        if limit is not None and limit < 1:
            raise ConfigurationError(
                f"limit must be >= 1 or None, got {limit}"
            )
        src = as_frame_source(source)
        fifo_start = getattr(src, "fifo_dropped", None)
        decode_start = getattr(src, "decode_errors", None)
        driver: Optional[Executor] = None
        try:
            driver = self._make_executor(executor)
            self._concurrent_drive = driver.concurrent
            yield from driver.run(self._processor, iter(src), limit=limit)
        finally:
            self._concurrent_drive = False
            if driver is not None:
                driver.close()
                # every drive overwrites the block, a zero-frame drive
                # included — a batch report must never carry the
                # previous batch's wall-clock numbers
                self._last_throughput = driver.stats.as_dict()
            # fold the transport health of whichever source fed this
            # stream into the session's counters
            if fifo_start is not None:
                self._fifo_dropped += src.fifo_dropped - fifo_start
            if decode_start is not None:
                self._decode_errors += src.decode_errors - decode_start
            src.close()

    def run(self, n_frames: int = 10,
            source: Optional[FrameSource] = None,
            executor: Optional[str] = None) -> FusionReport:
        """Fuse ``n_frames`` from ``source`` (default: the built-in
        capture chain) and report aggregates for exactly that batch.

        ``executor`` names an execution strategy for this batch only
        (e.g. ``run(64, executor="pipeline")``), otherwise the config's
        executor drives.  A finite ``source`` may be exhausted before
        ``n_frames`` are fused; the report's ``frames`` then tells the
        truth and a :class:`RuntimeWarning` flags the shortfall.
        """
        if n_frames < 1:
            raise ConfigurationError(
                f"n_frames must be >= 1, got {n_frames}"
            )
        mark = self._snapshot()
        stream_source = source if source is not None else self.capture_source()
        self._batch_records = [] if self.config.keep_records else None
        try:
            for _ in self.stream(stream_source, limit=n_frames,
                                 executor=executor):
                pass
            report = self._report_since(mark)
            report.records = self._batch_records or []
        finally:
            self._batch_records = None
        if report.frames < n_frames:
            warnings.warn(
                f"source exhausted after {report.frames} of the "
                f"{n_frames} requested frames",
                RuntimeWarning, stacklevel=2,
            )
        return report

    # ------------------------------------------------------------------
    def _snapshot(self) -> Dict[str, object]:
        return {
            "frames": self._frames,
            "engine_usage": dict(self._engine_usage),
            "actions": dict(self._actions),
            "seconds": self._seconds_total,
            "millijoules": self._millijoules_total,
            "shift": self._shift_total,
            "quality_sums": dict(self._quality_sums),
            "quality_frames": self._quality_frames,
            "fifo": self._fifo_dropped,
            "decode": self._decode_errors,
        }

    def _report_since(self, mark: Dict[str, object]) -> FusionReport:
        frames = self._frames - mark["frames"]
        usage = {
            name: count - mark["engine_usage"].get(name, 0)
            for name, count in self._engine_usage.items()
            if count - mark["engine_usage"].get(name, 0) > 0
        }
        actions = {
            name: count - mark["actions"].get(name, 0)
            for name, count in self._actions.items()
            if count - mark["actions"].get(name, 0) > 0
        }
        quality_frames = self._quality_frames - mark["quality_frames"]
        quality: Dict[str, float] = {}
        if quality_frames:
            quality = {
                key: (total - mark["quality_sums"].get(key, 0.0))
                / quality_frames
                for key, total in self._quality_sums.items()
            }
        return FusionReport(
            frames=frames,
            engine_usage=usage,
            actions=actions,
            model_seconds_total=self._seconds_total - mark["seconds"],
            model_millijoules_total=(self._millijoules_total
                                     - mark["millijoules"]),
            quality=quality,
            alarms=self.monitor.alarms if self.monitor else 0,
            mean_qabf=(self.monitor.mean_qabf()
                       if self.monitor and self.monitor.history else 0.0),
            telemetry=(self.telemetry.summary().as_dict()
                       if self.telemetry.frames else {}),
            registered_shift_px=((self._shift_total - mark["shift"]) / frames
                                 if frames else 0.0),
            fifo_dropped=self._fifo_dropped - mark["fifo"],
            decode_errors=self._decode_errors - mark["decode"],
            # wall-clock stats describe the most recent executor drive
            # (they are measured, not additive across intervals)
            throughput=dict(self._last_throughput),
        )

    def report(self) -> FusionReport:
        """Aggregate report over every frame this session has fused.

        Per-frame records live on each :meth:`run` report (and with
        the consumer of each :meth:`stream`), not here — a lifetime
        list would grow without bound on long-running sessions.
        """
        return self._report_since({
            "frames": 0, "engine_usage": {}, "actions": {},
            "seconds": 0.0, "millijoules": 0.0, "shift": 0.0,
            "quality_sums": {}, "quality_frames": 0,
            "fifo": 0, "decode": 0,
        })
