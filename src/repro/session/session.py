"""The fusion session facade: one object, every way to run the system.

:class:`FusionSession` subsumes the old ``VideoFusionSystem`` (batch
runs over the modelled capture chain) and ``AdvancedFusionSession``
(online scheduling, registration, temporal fusion, monitoring,
telemetry) behind one configured object with three entry points:

* :meth:`process` — fuse one (visible, thermal) pair;
* :meth:`stream` — iterate any :class:`FrameSource`, yielding a
  :class:`FusedFrameResult` per frame (the continuous loop the paper's
  system runs);
* :meth:`run` — fuse ``n`` frames from the built-in capture chain and
  return an aggregate :class:`FusionReport`.

Everything optional — registration, temporal fusion, quality
monitoring, per-frame metrics — is switched by the
:class:`FusionConfig`, so ablations change a flag, not a class.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..core.adaptive import CostModelScheduler, Decision, OnlineScheduler
from ..core.fusion import ImageFusion
from ..core.metrics import fusion_report
from ..core.quality_monitor import ACTION_FUSE, QualityMonitor
from ..core.registration import DtcwtRegistration
from ..core.video_fusion import TemporalFusion
from ..errors import ConfigurationError
from ..hw.engine import Engine
from ..hw.registry import create_engine, default_engines
from ..video.frames import VideoFrame
from ..video.scaler import resize_to
from .config import FusionConfig
from .report import FusedFrameResult, FusionReport
from .sources import CaptureChainSource, FramePair, FrameSource, as_frame_source
from .telemetry import FrameTelemetry


class _RigCalibrator:
    """Static-rig calibration: apply the median shift once it is stable.

    A co-located camera pair has one fixed offset; per-frame estimates
    that saturate the search bound or disagree with the consensus are
    measurement noise, not motion, and applying them would misalign a
    well-aligned rig.
    """

    def __init__(self, levels: int):
        self.registration = DtcwtRegistration(levels=max(2, levels),
                                              max_shift=6)
        self._estimates: List[Tuple[float, float]] = []

    def offset(self, visible: np.ndarray,
               thermal: np.ndarray) -> Optional[Tuple[int, int]]:
        result = self.registration.estimate(visible, thermal)
        bound = self.registration.max_shift
        if abs(result.dy) < bound and abs(result.dx) < bound:
            self._estimates.append((result.dy, result.dx))
        if len(self._estimates) < 3:
            return None
        recent = self._estimates[-5:]
        dy = float(np.median([e[0] for e in recent]))
        dx = float(np.median([e[1] for e in recent]))
        spread = max(abs(e[0] - dy) + abs(e[1] - dx) for e in recent)
        if spread > 2.0:
            return None  # estimates disagree: no confident calibration
        if round(dy) == 0 and round(dx) == 0:
            return None  # rig already aligned
        return int(round(dy)), int(round(dx))


class FusionSession:
    """A configured capture->register->fuse->monitor loop.

    Parameters
    ----------
    config:
        The session description; defaults to ``FusionConfig()``.
    **overrides:
        Convenience: field overrides applied on top of ``config`` (so
        ``FusionSession(engine="fpga")`` works without building a
        config by hand).
    """

    def __init__(self, config: Optional[FusionConfig] = None, **overrides):
        if config is None:
            config = FusionConfig(**overrides)
        elif overrides:
            config = config.with_overrides(**overrides)
        self.config = config

        shape = config.fusion_shape
        self.decision: Optional[Decision] = None
        self.scheduler: Optional[OnlineScheduler] = None
        if config.engine == "online":
            engines = default_engines()
            self.scheduler = OnlineScheduler(
                engines, probe_frames=config.probe_frames,
                reprobe_every=config.reprobe_every)
            self._engine = engines[0]
        elif config.engine == "adaptive":
            chooser = CostModelScheduler(objective=config.objective,
                                         power_model=config.power_model)
            self.decision = chooser.choose(shape, config.levels)
            self._engine = self.decision.engine
            engines = (self._engine,)
        else:
            self._engine = create_engine(config.engine)
            engines = (self._engine,)

        rule = config.make_rule()
        self._fusers: Dict[str, ImageFusion] = {
            engine.name: ImageFusion(transform=engine.transform(config.levels),
                                     rule=rule)
            for engine in engines
        }

        self.calibrator = (_RigCalibrator(config.levels)
                           if config.registration else None)
        self.temporal = (TemporalFusion(fusion=self._fusers[self._engine.name])
                         if config.temporal else None)
        self.monitor = QualityMonitor() if config.monitor else None
        self.telemetry = FrameTelemetry(
            target_fps=config.target_fps,
            energy_budget_mj=config.energy_budget_mj)

        self._default_source: Optional[CaptureChainSource] = None
        self._frames = 0
        self._engine_usage: Dict[str, int] = {}
        self._actions: Dict[str, int] = {}
        self._seconds_total = 0.0
        self._millijoules_total = 0.0
        self._shift_total = 0.0
        self._quality_sums: Dict[str, float] = {}
        self._quality_frames = 0
        self._fifo_dropped = 0
        self._decode_errors = 0
        self._batch_records: Optional[List[FusedFrameResult]] = None

    # ------------------------------------------------------------------
    @property
    def engine(self) -> Engine:
        """The engine in use (most recently selected, if scheduled)."""
        return self._engine

    @property
    def frames_processed(self) -> int:
        return self._frames

    def capture_source(self) -> CaptureChainSource:
        """The built-in capture chain :meth:`run` consumes (created
        lazily, persisted so repeated runs continue the same stream)."""
        if self._default_source is None:
            self._default_source = CaptureChainSource(
                scene=self.config.make_scene())
        return self._default_source

    # ------------------------------------------------------------------
    def _normalize(self, image: np.ndarray) -> np.ndarray:
        """Register one modality onto the fusion geometry."""
        data = np.asarray(image, dtype=np.float64)
        if data.ndim != 2:
            raise ConfigurationError(
                f"session input frames must be 2-D grayscale, got shape "
                f"{data.shape}"
            )
        target = self.config.fusion_shape.array_shape
        if data.shape != target:
            data = resize_to(data, target)
        return data

    def _select_engine(self) -> Engine:
        if self.scheduler is not None:
            self._engine = self.scheduler.next_engine()
        return self._engine

    def process(self, visible: np.ndarray, thermal: np.ndarray,
                timestamp_s: float = 0.0,
                index: Optional[int] = None) -> FusedFrameResult:
        """Fuse one frame pair under the configured policies."""
        vis = self._normalize(visible)
        th = self._normalize(thermal)

        applied_shift = None
        if self.calibrator is not None:
            offset = self.calibrator.offset(vis, th)
            if offset is not None:
                th = np.roll(np.roll(th, offset[0], axis=0),
                             offset[1], axis=1)
                self._shift_total += float(np.hypot(*offset))
                applied_shift = offset

        engine = self._select_engine()
        fuser = self._fusers[engine.name]
        if self.temporal is not None:
            self.temporal.fusion = fuser
            fused = self.temporal.fuse(vis, th)
        else:
            fused = fuser.fuse(vis, th).fused

        action = ACTION_FUSE
        if self.monitor is not None:
            action = self.monitor.observe(vis, th, fused).action

        seconds = engine.frame_time(self.config.fusion_shape,
                                    self.config.levels).total_s
        if self.scheduler is not None:
            self.scheduler.observe(engine, seconds)
        mj = seconds * self.config.power_model.power_w(engine.power_mode) * 1e3
        self.telemetry.record(seconds, mj)

        quality: Dict[str, float] = {}
        if self.config.quality_metrics:
            quality = fusion_report(vis, th, fused)
            for key, value in quality.items():
                self._quality_sums[key] = \
                    self._quality_sums.get(key, 0.0) + value
            self._quality_frames += 1

        frame_index = self._frames if index is None else index
        result = FusedFrameResult(
            frame=VideoFrame(
                pixels=np.clip(np.round(fused), 0, 255).astype(np.uint8),
                timestamp_s=timestamp_s,
                frame_id=frame_index,
                source="fused",
                metadata={"engine": engine.name, "action": action},
            ),
            visible=vis,
            thermal=th,
            engine=engine.name,
            action=action,
            model_seconds=seconds,
            model_millijoules=mj,
            index=frame_index,
            timestamp_s=timestamp_s,
            applied_shift=applied_shift,
            quality=quality,
        )

        self._frames += 1
        self._engine_usage[engine.name] = \
            self._engine_usage.get(engine.name, 0) + 1
        self._actions[action] = self._actions.get(action, 0) + 1
        self._seconds_total += seconds
        self._millijoules_total += mj
        # records are retained only for the run() batch in flight:
        # stream() already hands each result to the caller, and a
        # session-lifetime list would grow without bound
        if self._batch_records is not None:
            self._batch_records.append(result)
        return result

    # ------------------------------------------------------------------
    def stream(self, source, limit: Optional[int] = None
               ) -> Iterator[FusedFrameResult]:
        """Fuse every pair ``source`` yields, as a lazy stream.

        ``source`` may be any :class:`FrameSource` or a plain iterable
        of ``(visible, thermal)`` pairs; ``limit`` stops after that
        many fused frames (needed for infinite sources).
        """
        if limit is not None and limit < 1:
            raise ConfigurationError(
                f"limit must be >= 1 or None, got {limit}"
            )
        src = as_frame_source(source)
        fifo_start = getattr(src, "fifo_dropped", None)
        decode_start = getattr(src, "decode_errors", None)
        produced = 0
        try:
            for pair in src:
                yield self.process(pair.visible, pair.thermal,
                                   timestamp_s=pair.timestamp_s)
                produced += 1
                if limit is not None and produced >= limit:
                    return
        finally:
            # fold the transport health of whichever source fed this
            # stream into the session's counters
            if fifo_start is not None:
                self._fifo_dropped += src.fifo_dropped - fifo_start
            if decode_start is not None:
                self._decode_errors += src.decode_errors - decode_start

    def run(self, n_frames: int = 10,
            source: Optional[FrameSource] = None) -> FusionReport:
        """Fuse ``n_frames`` from ``source`` (default: the built-in
        capture chain) and report aggregates for exactly that batch.

        A finite ``source`` may be exhausted before ``n_frames`` are
        fused; the report's ``frames`` then tells the truth and a
        :class:`RuntimeWarning` flags the shortfall.
        """
        if n_frames < 1:
            raise ConfigurationError(
                f"n_frames must be >= 1, got {n_frames}"
            )
        mark = self._snapshot()
        stream_source = source if source is not None else self.capture_source()
        self._batch_records = [] if self.config.keep_records else None
        try:
            for _ in self.stream(stream_source, limit=n_frames):
                pass
            report = self._report_since(mark)
            report.records = self._batch_records or []
        finally:
            self._batch_records = None
        if report.frames < n_frames:
            warnings.warn(
                f"source exhausted after {report.frames} of the "
                f"{n_frames} requested frames",
                RuntimeWarning, stacklevel=2,
            )
        return report

    # ------------------------------------------------------------------
    def _snapshot(self) -> Dict[str, object]:
        return {
            "frames": self._frames,
            "engine_usage": dict(self._engine_usage),
            "actions": dict(self._actions),
            "seconds": self._seconds_total,
            "millijoules": self._millijoules_total,
            "shift": self._shift_total,
            "quality_sums": dict(self._quality_sums),
            "quality_frames": self._quality_frames,
            "fifo": self._fifo_dropped,
            "decode": self._decode_errors,
        }

    def _report_since(self, mark: Dict[str, object]) -> FusionReport:
        frames = self._frames - mark["frames"]
        usage = {
            name: count - mark["engine_usage"].get(name, 0)
            for name, count in self._engine_usage.items()
            if count - mark["engine_usage"].get(name, 0) > 0
        }
        actions = {
            name: count - mark["actions"].get(name, 0)
            for name, count in self._actions.items()
            if count - mark["actions"].get(name, 0) > 0
        }
        quality_frames = self._quality_frames - mark["quality_frames"]
        quality: Dict[str, float] = {}
        if quality_frames:
            quality = {
                key: (total - mark["quality_sums"].get(key, 0.0))
                / quality_frames
                for key, total in self._quality_sums.items()
            }
        return FusionReport(
            frames=frames,
            engine_usage=usage,
            actions=actions,
            model_seconds_total=self._seconds_total - mark["seconds"],
            model_millijoules_total=(self._millijoules_total
                                     - mark["millijoules"]),
            quality=quality,
            alarms=self.monitor.alarms if self.monitor else 0,
            mean_qabf=(self.monitor.mean_qabf()
                       if self.monitor and self.monitor.history else 0.0),
            telemetry=(self.telemetry.summary().as_dict()
                       if self.telemetry.frames else {}),
            registered_shift_px=((self._shift_total - mark["shift"]) / frames
                                 if frames else 0.0),
            fifo_dropped=self._fifo_dropped - mark["fifo"],
            decode_errors=self._decode_errors - mark["decode"],
        )

    def report(self) -> FusionReport:
        """Aggregate report over every frame this session has fused.

        Per-frame records live on each :meth:`run` report (and with
        the consumer of each :meth:`stream`), not here — a lifetime
        list would grow without bound on long-running sessions.
        """
        return self._report_since({
            "frames": 0, "engine_usage": {}, "actions": {},
            "seconds": 0.0, "millijoules": 0.0, "shift": 0.0,
            "quality_sums": {}, "quality_frames": 0,
            "fifo": 0, "decode": 0,
        })
