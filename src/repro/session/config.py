"""Declarative configuration of a fusion session.

:class:`FusionConfig` is the single place a user describes *what* to
run — engine/scheduler, frame geometry, fusion algorithm, the optional
production features (registration, temporal fusion, quality
monitoring) and the accounting models.  The :class:`~repro.session.FusionSession`
facade turns one config into a running system; every field is validated
eagerly so a misconfiguration fails at construction, not mid-stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Optional, Tuple

from ..core.fusion_rules import (
    FusionRule,
    MaxMagnitudeRule,
    WeightedRule,
    WindowActivityRule,
)
from ..errors import ConfigurationError
from ..exec import executor_names
from ..graph import Stage
from ..hw.power import DEFAULT_POWER_MODEL, PowerModel
from ..hw.registry import create_engine, engine_names
from ..types import FULL_FRAME, FrameShape
from ..video.scene import SyntheticScene

#: Engine field values that select a scheduler instead of a fixed engine.
SCHEDULER_NAMES = ("adaptive", "online")

#: Fusion-rule names resolvable by :meth:`FusionConfig.make_rule`.
FUSION_RULES = {
    "max-magnitude": MaxMagnitudeRule,
    "weighted": WeightedRule,
    "window-activity": WindowActivityRule,
}


@dataclass
class FusionConfig:
    """Everything a :class:`~repro.session.FusionSession` needs to run.

    Parameters
    ----------
    engine:
        A registered engine name (``"arm"``, ``"neon"``, ``"fpga"``, or
        anything added via :func:`repro.hw.register_engine`), or a
        scheduler: ``"adaptive"`` picks the cost-model optimum once at
        construction (the paper's conclusion), ``"online"`` selects
        per-frame from live measurements (probe, exploit, re-probe).
    executor:
        How frame execution is driven (see :mod:`repro.exec`):
        ``"serial"`` fuses one frame at a time (the paper's baseline
        loop), ``"pipeline"`` overlaps capture/transform/fuse/report
        across threads with bounded queues (the double-buffering
        idea), ``"hetero"`` co-schedules a team of engine instances
        with work stealing, ``"batch"`` stacks ``batch_size`` frame
        pairs through single NumPy transform calls on one thread.
        All executors produce bitwise-identical frames and identical
        modelled costs for a fixed seed.
    precision:
        Working precision of the wavelet kernels: ``None`` (default)
        runs every engine at its native precision — bitwise-identical
        to historical behaviour — while ``"float32"``/``"float64"``
        force that dtype end-to-end (session, planner, executors,
        serving).  Engines that cannot run the requested precision are
        rejected eagerly (the FPGA datapath is float32-only), and the
        scheduler modes restrict their candidate set to engines that
        support it.  See README "Precision & compiled backends" for
        the tolerance-parity contract between the two precisions.
    workers:
        Concurrent stage workers (``"pipeline"``: forward-transform
        pool size; ``"hetero"``: team size when ``engine_team`` is not
        given).
    queue_depth:
        Bound on frames in flight between stages — the analogue of the
        driver's buffer-area count.
    batch_size:
        Micro-batch size for the ``"batch"`` executor: how many frame
        pairs ride one stacked transform invocation (both modalities
        share the stack, so the transform sees ``2 x batch_size``
        frames).  Larger batches amortize more per-call overhead but
        add latency — the first frame of a batch is not reported until
        the whole batch has computed — and a bounded run's last batch
        is simply smaller.  Ignored by the other executors.
    engine_team:
        Optional explicit engine names for the ``"hetero"`` executor
        (e.g. ``("fpga", "neon")``).  A mixed team enables
        co-scheduled modelled accounting: each stage's time/energy is
        attributed to the engine it was assigned.  Default: ``workers``
        instances of the session's engine, which keeps results
        bitwise-identical to the serial executor.
    fusion_shape:
        Geometry frames are fused at (the paper's 88x72 by default).
        A ``(width, height)`` tuple is accepted for convenience.
    levels:
        DT-CWT decomposition depth.
    fusion_rule:
        Coefficient-combination rule name (see :data:`FUSION_RULES`).
    objective:
        ``"energy"`` or ``"time"`` — what the adaptive scheduler
        minimises.
    registration:
        Calibrate the thermal camera onto the visible rig and apply the
        consensus shift.
    temporal:
        Flicker-suppressing temporal fusion instead of independent
        per-frame fusion.
    monitor:
        Runtime quality monitoring with sensor-failure detection.
    quality_metrics:
        Score every fused frame with the no-reference metric suite and
        report the mean (costs a few ms per frame).
    keep_records:
        Retain per-frame results on :meth:`FusionSession.run` reports.
        Streaming never retains results — :meth:`FusionSession.stream`
        yields each one to the consumer — so unbounded streams stay
        bounded in memory either way.
    target_fps / energy_budget_mj:
        Telemetry parameters: deadline for jitter/miss accounting and
        an optional mission energy budget.
    probe_frames / reprobe_every:
        Online-scheduler exploration parameters.
    power_model:
        Rail model used to turn modelled seconds into millijoules.
    seed:
        Seed for the default :class:`SyntheticScene` built when no
        ``scene`` is supplied — fixing it makes runs reproducible.
    scene:
        Optional explicit scene shared by the default frame sources.
    graph_overrides:
        Declarative edits applied to the session's canonical
        :class:`~repro.graph.FusionGraph` before lowering.  A dict
        with any of three keys: ``"drop"`` (tuple of stage names to
        remove, e.g. ``("register",)``), ``"place"`` (stage name ->
        engine name, forcing that stage's arithmetic and scheduling
        affinity onto one engine), and ``"insert_after"`` (anchor
        stage name -> a :class:`~repro.graph.Stage` or tuple of
        stages spliced in after it).  Equivalent to customizing
        :meth:`FusionSession.canonical_graph` by hand, but carried by
        the config so every drive of the session uses it.
    optimize:
        Run the plan-optimization pipeline
        (:mod:`repro.graph.passes`) on every lowered plan: stateless
        stage fusion, materialization elimination, loop-invariant
        hoisting.  Output frames and modelled costs are
        bitwise-identical to the unoptimized plan.
    autotune:
        Consult the :class:`~repro.graph.autotune.PlanAutotuner`
        before lowering: candidate plans (executor x batch x
        placement x optimize) are measured on a short calibration
        prefix and the winner is applied — and persisted in an
        on-disk cache so later sessions with the same key skip the
        measurement.
    plan_cache_dir:
        Directory for the autotuner's persistent plan cache
        (default: ``$REPRO_PLAN_CACHE`` or ``~/.cache/repro/plans``).
    n_sources:
        Number of co-registered source frames fused per output frame.
        The default 2 is the paper's visible+thermal pair; higher
        values add ``source2``, ``source3``, ... forward stages to
        the canonical graph and every executor fuses N-way through
        the same plan.  Temporal fusion is pairwise only.
    """

    engine: str = "adaptive"
    executor: str = "serial"
    precision: Optional[str] = None
    workers: int = 2
    queue_depth: int = 4
    batch_size: int = 8
    engine_team: Optional[Tuple[str, ...]] = None
    fusion_shape: FrameShape = FULL_FRAME
    levels: int = 3
    fusion_rule: str = "max-magnitude"
    objective: str = "energy"
    registration: bool = False
    temporal: bool = False
    monitor: bool = False
    quality_metrics: bool = True
    keep_records: bool = True
    target_fps: float = 25.0
    energy_budget_mj: Optional[float] = None
    probe_frames: int = 1
    reprobe_every: int = 20
    power_model: PowerModel = field(default_factory=lambda: DEFAULT_POWER_MODEL)
    seed: int = 2016
    scene: Optional[SyntheticScene] = None
    graph_overrides: Optional[dict] = None
    optimize: bool = False
    autotune: bool = False
    plan_cache_dir: Optional[str] = None
    n_sources: int = 2

    def __post_init__(self) -> None:
        if isinstance(self.fusion_shape, tuple):
            self.fusion_shape = FrameShape(*self.fusion_shape)
        if not isinstance(self.fusion_shape, FrameShape):
            raise ConfigurationError(
                f"fusion_shape must be a FrameShape or (width, height) "
                f"tuple, got {self.fusion_shape!r}"
            )
        known = engine_names() + SCHEDULER_NAMES
        if self.engine not in known:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; expected one of "
                f"{sorted(known)}"
            )
        if self.executor not in executor_names():
            raise ConfigurationError(
                f"unknown executor {self.executor!r}; expected one of "
                f"{sorted(executor_names())}"
            )
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}")
        if self.queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}")
        if self.engine_team is not None:
            if isinstance(self.engine_team, (list, tuple)):
                self.engine_team = tuple(self.engine_team)
            else:
                raise ConfigurationError(
                    f"engine_team must be a tuple of engine names, got "
                    f"{self.engine_team!r}")
            if not self.engine_team:
                raise ConfigurationError("engine_team cannot be empty")
            unknown = [n for n in self.engine_team
                       if n not in engine_names()]
            if unknown:
                raise ConfigurationError(
                    f"unknown engine(s) in engine_team: {unknown}; "
                    f"expected names from {sorted(engine_names())}")
            if self.executor != "hetero":
                raise ConfigurationError(
                    "engine_team is only meaningful with "
                    "executor='hetero'")
            if self.temporal:
                raise ConfigurationError(
                    "engine_team cannot be combined with temporal "
                    "fusion: the temporal fuse stage is sequential and "
                    "would silently bypass the co-scheduled team")
        if self.precision is not None:
            if self.precision not in ("float32", "float64"):
                raise ConfigurationError(
                    f"precision must be None, 'float32' or 'float64', "
                    f"got {self.precision!r}")
            # fail eagerly when a named engine cannot run the requested
            # precision (e.g. the float32-only FPGA datapath asked for
            # float64); scheduler modes filter candidates at runtime
            named = [self.engine] if self.engine in engine_names() else []
            named.extend(self.engine_team or ())
            for name in named:
                create_engine(name).working_dtype(self.precision)
        if self.levels < 1:
            raise ConfigurationError(f"levels must be >= 1, got {self.levels}")
        if self.fusion_rule not in FUSION_RULES:
            raise ConfigurationError(
                f"unknown fusion rule {self.fusion_rule!r}; expected one "
                f"of {sorted(FUSION_RULES)}"
            )
        if self.objective not in ("time", "energy"):
            raise ConfigurationError(
                f"objective must be 'time' or 'energy', got {self.objective!r}"
            )
        if self.target_fps <= 0:
            raise ConfigurationError(
                f"target_fps must be positive, got {self.target_fps}"
            )
        if self.energy_budget_mj is not None and self.energy_budget_mj <= 0:
            raise ConfigurationError("energy budget must be positive")
        if self.probe_frames < 1:
            raise ConfigurationError("probe_frames must be >= 1")
        if self.reprobe_every < 2:
            raise ConfigurationError("reprobe_every must be >= 2")
        if self.n_sources < 2:
            raise ConfigurationError(
                f"n_sources must be >= 2, got {self.n_sources}")
        if self.temporal and self.n_sources != 2:
            raise ConfigurationError(
                "temporal fusion is pairwise (visible + thermal); "
                f"n_sources={self.n_sources} cannot be combined with "
                f"temporal=True")
        if self.autotune and self.engine_team is not None:
            raise ConfigurationError(
                "autotune cannot be combined with an explicit "
                "engine_team: the tuner owns the executor/placement "
                "axes it searches over")
        self._validate_graph_overrides()

    def _validate_graph_overrides(self) -> None:
        """Structural validation of ``graph_overrides`` (the semantic
        checks — stage names, engine names, graph shape — happen when
        the session lowers the graph)."""
        if self.graph_overrides is None:
            return
        if not isinstance(self.graph_overrides, dict):
            raise ConfigurationError(
                f"graph_overrides must be a dict, got "
                f"{self.graph_overrides!r}")
        known = {"drop", "place", "insert_after"}
        bad = set(self.graph_overrides) - known
        if bad:
            raise ConfigurationError(
                f"unknown graph_overrides key(s) {sorted(bad)}; "
                f"expected a subset of {sorted(known)}")
        drop = self.graph_overrides.get("drop", ())
        if isinstance(drop, str) or not all(isinstance(n, str)
                                            for n in drop):
            raise ConfigurationError(
                "graph_overrides['drop'] must be an iterable of stage "
                "names")
        place = self.graph_overrides.get("place", {})
        if not isinstance(place, dict) or not all(
                isinstance(k, str) and isinstance(v, str)
                for k, v in place.items()):
            raise ConfigurationError(
                "graph_overrides['place'] must map stage names to "
                "engine names")
        inserts = self.graph_overrides.get("insert_after", {})
        if not isinstance(inserts, dict):
            raise ConfigurationError(
                "graph_overrides['insert_after'] must map anchor stage "
                "names to Stage(s)")
        for anchor, stages in inserts.items():
            if isinstance(stages, Stage):
                continue
            if not isinstance(stages, (list, tuple)) or not all(
                    isinstance(s, Stage) for s in stages):
                raise ConfigurationError(
                    f"graph_overrides['insert_after'][{anchor!r}] must "
                    f"be a Stage or a tuple of Stages")

    # ------------------------------------------------------------------
    def make_rule(self) -> FusionRule:
        """Instantiate the configured fusion rule."""
        return FUSION_RULES[self.fusion_rule]()

    def make_scene(self) -> SyntheticScene:
        """The configured scene, or a seeded default one."""
        return self.scene if self.scene is not None \
            else SyntheticScene(seed=self.seed)

    def with_overrides(self, **changes) -> "FusionConfig":
        """A copy of this config with ``changes`` applied (validated)."""
        bad = set(changes) - {f.name for f in fields(self)}
        if bad:
            raise ConfigurationError(
                f"unknown config field(s): {sorted(bad)}"
            )
        return replace(self, **changes)
