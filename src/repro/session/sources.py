"""Pluggable frame-pair sources for the fusion session.

The session fuses *pairs* of co-registered frames; where those pairs
come from is a :class:`FrameSource`.  New scenarios are new sources —
not new system classes:

* :class:`SyntheticSource` — renders the shared synthetic world
  directly in both modalities (fast; no capture modelling);
* :class:`ArraySource` — replays in-memory arrays (recorded footage,
  test fixtures, frames fetched from elsewhere);
* :class:`CameraPairSource` — the webcam + thermal camera simulators,
  with sensor behaviour (auto-exposure, NETD noise, native geometries)
  but without the BT.656 transport;
* :class:`CaptureChainSource` — the paper's full Fig. 7 capture chain:
  webcam over USB, thermal as BT.656 bytes through the PL decoder
  model, scaler and handshaked FIFO.  This is what
  :meth:`FusionSession.run` uses, so batch runs exercise the same data
  path the hardware would.

Sources yield frames at whatever geometry they natively produce; the
session registers both modalities onto the configured fusion shape.

Naming note: :class:`repro.video.frames.FrameSource` is the older
*single-camera* interface (``capture()`` yields one
:class:`VideoFrame`); this module's :class:`FrameSource` streams
co-captured *pairs*.  A single camera becomes session input by pairing
it with its counterpart — that is what :class:`CameraPairSource` does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from ..errors import FusionError, VideoError
from ..video.capture import CaptureChain
from ..video.frames import center_crop
from ..video.scene import SyntheticScene
from ..video.thermal import ThermalCameraSimulator
from ..video.webcam import WebcamSimulator


@dataclass
class FrameGroup:
    """One co-captured group of N >= 2 source frames, as float arrays.

    ``frames[0]`` is the reference modality (visible by convention),
    ``frames[1]`` its primary counterpart (thermal); any further
    entries are additional co-registered modalities (depth, SWIR, a
    second thermal band).  The :attr:`visible` / :attr:`thermal`
    accessors keep the whole pairwise API working on any group.
    """

    frames: Tuple[np.ndarray, ...]
    timestamp_s: float = 0.0
    index: int = 0

    def __post_init__(self) -> None:
        self.frames = tuple(self.frames)
        if len(self.frames) < 2:
            raise FusionError(
                f"a FrameGroup needs >= 2 source frames, got "
                f"{len(self.frames)}")

    def __len__(self) -> int:
        return len(self.frames)

    @property
    def visible(self) -> np.ndarray:
        return self.frames[0]

    @visible.setter
    def visible(self, value: np.ndarray) -> None:
        self.frames = (value,) + self.frames[1:]

    @property
    def thermal(self) -> np.ndarray:
        return self.frames[1]

    @thermal.setter
    def thermal(self, value: np.ndarray) -> None:
        self.frames = self.frames[:1] + (value,) + self.frames[2:]


class FramePair(FrameGroup):
    """One co-captured (visible, thermal) pair — the N=2 group.

    Kept as the pairwise constructor so every existing source and call
    site is untouched; it *is* a :class:`FrameGroup` of length two.
    """

    def __init__(self, visible: np.ndarray, thermal: np.ndarray,
                 timestamp_s: float = 0.0, index: int = 0):
        super().__init__(frames=(visible, thermal),
                         timestamp_s=timestamp_s, index=index)


class FrameSource:
    """Stream interface the session consumes: an iterator of pairs.

    Subclasses implement :meth:`frames`; it may be infinite (live
    cameras) or finite (recorded arrays).  Iterating the source object
    itself delegates to :meth:`frames`.

    Sources whose :meth:`close` really releases resources should set
    ``self.closed = True`` there: the executors check the flag before
    every pull, so closing such a source while a stream is still
    driving it fails loudly with :class:`FusionError` instead of
    replaying a dead device or deadlocking a capture thread against
    the bounded queues.  The default close is a no-op and leaves
    ``closed`` False, which is what keeps the built-in synthetic
    sources reusable across streams.
    """

    #: True once a resource-owning close() ran; executors refuse to
    #: pull from a closed source mid-drive
    closed: bool = False

    def frames(self) -> Iterator[FramePair]:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release whatever the source holds (files, devices, wrapped
        iterators).  Called by :meth:`FusionSession.stream` when a
        stream ends — normally, on error, or at an early ``limit``
        exit.  The default is a no-op so purely synthetic sources stay
        reusable across streams; stateful subclasses override it (and
        set ``self.closed = True``).
        """

    def __iter__(self) -> Iterator[FramePair]:
        return self.frames()

    def __enter__(self) -> "FrameSource":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SyntheticSource(FrameSource):
    """Render the shared scene straight into each modality.

    The cheapest source: no camera model, no transport — just the
    world sampled at ``fps``.  ``limit`` bounds the stream (``None``
    streams forever).  ``modalities`` selects which renders each group
    carries, in order — the default pair yields :class:`FramePair`
    objects bitwise-identical to the historical two-modality source;
    ``("visible", "thermal", "depth")`` makes this a three-source
    stream for N-way fusion.
    """

    def __init__(self, scene: Optional[SyntheticScene] = None,
                 seed: int = 2016, fps: float = 25.0,
                 limit: Optional[int] = None,
                 modalities: Sequence[str] = ("visible", "thermal")):
        if fps <= 0:
            raise VideoError(f"fps must be positive, got {fps}")
        if limit is not None and limit < 1:
            raise VideoError(f"limit must be >= 1 or None, got {limit}")
        if len(modalities) < 2:
            raise VideoError(
                f"SyntheticSource needs >= 2 modalities, got "
                f"{tuple(modalities)}")
        self.scene = scene if scene is not None else SyntheticScene(seed=seed)
        self.fps = fps
        self.limit = limit
        self.modalities = tuple(modalities)

    def frames(self) -> Iterator[FrameGroup]:
        index = 0
        pair = self.modalities == ("visible", "thermal")
        while self.limit is None or index < self.limit:
            t_s = index / self.fps
            rendered = tuple(self.scene.render(m, t_s)
                             for m in self.modalities)
            if pair:
                yield FramePair(visible=rendered[0], thermal=rendered[1],
                                timestamp_s=t_s, index=index)
            else:
                yield FrameGroup(frames=rendered, timestamp_s=t_s,
                                 index=index)
            index += 1


class ArraySource(FrameSource):
    """Replay in-memory (visible, thermal) arrays as a stream.

    Malformed *frames* (non-2-D data, empty lists, bad fps) raise
    :class:`VideoError` like every other source; malformed *pairings*
    — unequal sequence lengths, or a pair whose two frames disagree on
    shape — are fusion-contract violations and raise a
    :class:`FusionError` naming the offending index.  (The live camera
    sources legitimately yield differing native geometries that the
    session rescales; recorded arrays are expected to be co-registered
    already, so a shape mismatch here is a data bug, not a rig.)
    """

    def __init__(self, visible: Sequence[np.ndarray],
                 thermal: Sequence[np.ndarray],
                 fps: float = 25.0, loop: bool = False):
        visible = [np.asarray(v, dtype=np.float64) for v in visible]
        thermal = [np.asarray(t, dtype=np.float64) for t in thermal]
        # `or`, not `and`: a one-sided-empty recording is just as
        # unusable as a fully empty one, and must not fall through to
        # the confusing count-mismatch error below
        if not visible or not thermal:
            raise VideoError("ArraySource needs at least one frame pair")
        if len(visible) != len(thermal):
            raise FusionError(
                f"ArraySource pairs visible with thermal frames "
                f"one-to-one, but the counts differ: {len(visible)} "
                f"visible vs {len(thermal)} thermal"
            )
        for index, (v, t) in enumerate(zip(visible, thermal)):
            if v.ndim != 2 or t.ndim != 2:
                raise VideoError("array frames must be 2-D grayscale")
            if v.shape != t.shape:
                raise FusionError(
                    f"frame pair {index} mismatched: visible {v.shape} "
                    f"vs thermal {t.shape} — recorded arrays must be "
                    f"co-registered to a shared geometry"
                )
        if fps <= 0:
            raise VideoError(f"fps must be positive, got {fps}")
        self.visible = visible
        self.thermal = thermal
        self.fps = fps
        self.loop = loop

    def __len__(self) -> int:
        return len(self.visible)

    def frames(self) -> Iterator[FramePair]:
        index = 0
        while True:
            slot = index % len(self.visible)
            if not self.loop and index >= len(self.visible):
                return
            yield FramePair(
                visible=self.visible[slot],
                thermal=self.thermal[slot],
                timestamp_s=index / self.fps,
                index=index,
            )
            index += 1


class ArrayGroupSource(FrameSource):
    """Replay N >= 2 in-memory co-registered streams as frame groups.

    The N-way generalization of :class:`ArraySource`: each positional
    argument is one modality's frame sequence, and frame ``i`` of the
    group is drawn from position ``i`` of every stream.  The same
    contract applies — equal counts across streams (a
    :class:`FusionError` names the offenders otherwise), 2-D frames,
    and per-group shape agreement.
    """

    def __init__(self, *streams: Sequence[np.ndarray],
                 fps: float = 25.0, loop: bool = False):
        if len(streams) < 2:
            raise VideoError(
                f"ArrayGroupSource needs >= 2 streams, got {len(streams)}")
        streams = tuple(
            [np.asarray(f, dtype=np.float64) for f in stream]
            for stream in streams)
        if any(not stream for stream in streams):
            raise VideoError(
                "ArrayGroupSource needs at least one frame group")
        counts = {len(stream) for stream in streams}
        if len(counts) != 1:
            raise FusionError(
                f"ArrayGroupSource pairs streams frame-for-frame, but "
                f"the counts differ: "
                f"{tuple(len(stream) for stream in streams)}")
        for index, group in enumerate(zip(*streams)):
            if any(frame.ndim != 2 for frame in group):
                raise VideoError("array frames must be 2-D grayscale")
            shapes = {frame.shape for frame in group}
            if len(shapes) != 1:
                raise FusionError(
                    f"frame group {index} mismatched: "
                    f"{tuple(frame.shape for frame in group)} — "
                    f"recorded arrays must be co-registered to a "
                    f"shared geometry")
        if fps <= 0:
            raise VideoError(f"fps must be positive, got {fps}")
        self.streams = streams
        self.fps = fps
        self.loop = loop

    def __len__(self) -> int:
        return len(self.streams[0])

    def frames(self) -> Iterator[FrameGroup]:
        index = 0
        count = len(self.streams[0])
        while True:
            slot = index % count
            if not self.loop and index >= count:
                return
            yield FrameGroup(
                frames=tuple(stream[slot] for stream in self.streams),
                timestamp_s=index / self.fps,
                index=index,
            )
            index += 1


class CameraPairSource(FrameSource):
    """Webcam + thermal camera simulators, without the BT.656 link.

    Frames carry each sensor's native behaviour (auto-exposure,
    Bayer-ish chroma then BT.601 luma, microbolometer geometry and NETD
    noise); the BT.656 transport, decode and scaling are skipped — use
    :class:`CaptureChainSource` for the full Fig. 7 chain.
    """

    def __init__(self, scene: Optional[SyntheticScene] = None,
                 seed: int = 2016, thermal_profile: str = "microcam-384",
                 limit: Optional[int] = None):
        if limit is not None and limit < 1:
            raise VideoError(f"limit must be >= 1 or None, got {limit}")
        self.scene = scene if scene is not None else SyntheticScene(seed=seed)
        self.webcam = WebcamSimulator(self.scene)
        self.thermal = ThermalCameraSimulator(self.scene,
                                              profile=thermal_profile)
        self.limit = limit

    def frames(self) -> Iterator[FramePair]:
        index = 0
        while self.limit is None or index < self.limit:
            visible = self.webcam.capture_gray()
            thermal = self.thermal.capture()
            yield FramePair(
                visible=visible.as_float(),
                thermal=thermal.as_float(),
                timestamp_s=visible.timestamp_s,
                index=index,
            )
            index += 1


class CaptureChainSource(FrameSource):
    """The paper's complete capture substrate as a frame source.

    Visible frames arrive from the USB webcam simulator and are
    grayscaled on the PS; thermal frames are rendered, encoded as
    BT.656 bytes, decoded by the PL decoder model, scaled 720x243 ->
    640x480 and buffered through the handshaked output FIFO.  The
    wiring itself is the shared :class:`repro.video.CaptureChain` (the
    same object :class:`repro.video.FusionPipeline` drives), and its
    decoder/FIFO statistics are exposed so reports can include
    transport health.
    """

    def __init__(self, scene: Optional[SyntheticScene] = None,
                 seed: int = 2016, fifo_capacity: int = 1):
        if scene is None:
            scene = SyntheticScene(seed=seed)
        self.chain = CaptureChain(scene=scene, fifo_capacity=fifo_capacity)
        self.scene = self.chain.scene

    # ------------------------------------------------------------------
    @property
    def fifo_dropped(self) -> int:
        return self.chain.fifo_dropped

    @property
    def decode_errors(self) -> int:
        return self.chain.decode_errors

    def frames(self) -> Iterator[FramePair]:
        index = 0
        while True:
            captured = self.chain.capture_pair()
            if captured is None:
                continue  # FIFO starved this field; capture the next
            visible, thermal_scaled = captured
            crop = center_crop(thermal_scaled, 480, 640)
            yield FramePair(
                visible=visible.to_gray().as_float(),
                thermal=crop.astype(np.float64),
                timestamp_s=visible.timestamp_s,
                index=index,
            )
            index += 1


class ClosedAwareIterator:
    """A true iterator over one source's frames that still advertises
    the source's ``closed`` flag.

    :meth:`FusionSession.stream` hands this to the executor, so the
    documented ``Iterator`` contract of :meth:`repro.exec.Executor.run`
    holds for out-of-tree executors (``next()`` works, a single
    consumption position) while the drive can still see a mid-stream
    :meth:`FrameSource.close` and fail loudly.
    """

    __slots__ = ("_source", "_iterator")

    def __init__(self, source: FrameSource):
        self._source = source
        self._iterator = iter(source)

    @property
    def closed(self) -> bool:
        return bool(getattr(self._source, "closed", False))

    def __iter__(self) -> "ClosedAwareIterator":
        return self

    def __next__(self) -> FramePair:
        return next(self._iterator)


def as_frame_source(source) -> FrameSource:
    """Coerce plain iterables of frame tuples into a source.

    Accepts a :class:`FrameSource` (or anything with a ``frames()``
    method) unchanged, or any iterable yielding :class:`FrameGroup` /
    :class:`FramePair` objects or N-tuples of arrays (2-tuples become
    pairs, longer tuples become groups) — so callers can stream
    generator expressions without wrapping them themselves.
    """
    if isinstance(source, FrameSource):
        return source
    if callable(getattr(source, "frames", None)):
        return _IterableSource(source.frames())  # structural match
    if callable(getattr(source, "capture", None)):
        raise VideoError(
            f"{type(source).__name__} looks like a single-camera "
            f"repro.video source; the session fuses pairs — wrap the "
            f"rig in a pair source such as CameraPairSource"
        )
    if isinstance(source, Iterable):
        return _IterableSource(source)
    raise VideoError(
        f"cannot stream from {type(source).__name__}; expected a "
        f"FrameSource or an iterable of (visible, thermal) pairs"
    )


class _IterableSource(FrameSource):
    """Adapter wrapping a plain iterable of groups."""

    def __init__(self, iterable: Iterable):
        self._iterable = iterable

    def close(self) -> None:
        """Close the wrapped iterator (a half-consumed generator's
        ``finally`` blocks run now, not at interpreter exit)."""
        self.closed = True
        closer = getattr(self._iterable, "close", None)
        if callable(closer):
            closer()

    def frames(self) -> Iterator[FrameGroup]:
        for index, item in enumerate(self._iterable):
            if isinstance(item, FrameGroup):
                yield item
            else:
                frames = tuple(np.asarray(frame, dtype=np.float64)
                               for frame in item)
                if len(frames) == 2:
                    yield FramePair(visible=frames[0], thermal=frames[1],
                                    index=index)
                else:
                    yield FrameGroup(frames=frames, index=index)
