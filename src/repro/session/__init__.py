"""The unified streaming fusion API.

One validated :class:`FusionConfig` describes the whole system; one
:class:`FusionSession` facade runs it — per-pair (:meth:`~FusionSession.process`),
as a continuous stream over any :class:`FrameSource`
(:meth:`~FusionSession.stream`), or as a batch with an aggregate
:class:`FusionReport` (:meth:`~FusionSession.run`).  New capture
scenarios are new frame sources, not new system classes.

Quick start::

    from repro.session import FusionConfig, FusionSession, SyntheticSource

    session = FusionSession(FusionConfig(engine="adaptive", seed=7))
    for result in session.stream(SyntheticSource(seed=7), limit=10):
        print(result.engine, result.model_millijoules)
    print(session.report().as_dict())

The frame dataflow itself is declarative: the session builds its
pipeline as a :class:`repro.graph.FusionGraph`, lowers it through the
:class:`repro.graph.Planner`, and every executor interprets the
resulting plan.  ``session.plan.describe()`` shows the schedule and
placements; ``session.canonical_graph()`` returns a copy to extend
with custom stages for ``run(..., graph=...)``.
"""

from .config import FUSION_RULES, SCHEDULER_NAMES, FusionConfig
from .report import FusedFrameResult, FusionReport
from .session import FusionSession
from .sources import (
    ArrayGroupSource,
    ArraySource,
    CameraPairSource,
    CaptureChainSource,
    FrameGroup,
    FramePair,
    FrameSource,
    SyntheticSource,
    as_frame_source,
)
from .telemetry import FrameTelemetry, TelemetrySummary

__all__ = [
    "FUSION_RULES", "SCHEDULER_NAMES", "FusionConfig",
    "FusedFrameResult", "FusionReport",
    "FusionSession",
    "ArrayGroupSource", "ArraySource", "CameraPairSource",
    "CaptureChainSource", "FrameGroup", "FramePair", "FrameSource",
    "SyntheticSource", "as_frame_source",
    "FrameTelemetry", "TelemetrySummary",
]
