"""Unified per-frame results and run reports.

One result type and one report type replace the three overlapping
shapes the package grew (`PipelineReport`, `SystemReport`,
`SessionReport`): every consumer — CLI, examples, tests, the
deprecated shims — reads the same fields regardless of which engine,
scheduler or source produced the frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..video.frames import VideoFrame


@dataclass
class FusedFrameResult:
    """One fused output frame with its provenance and modelled cost."""

    frame: VideoFrame
    visible: np.ndarray
    thermal: np.ndarray
    engine: str
    action: str
    model_seconds: float
    model_millijoules: float
    index: int
    timestamp_s: float = 0.0
    applied_shift: Optional[Tuple[int, int]] = None
    quality: Dict[str, float] = field(default_factory=dict)
    #: sources beyond the (visible, thermal) pair, in input order —
    #: empty for the historical two-source pipeline
    extra_sources: Tuple[np.ndarray, ...] = ()

    @property
    def pixels(self) -> np.ndarray:
        """The fused uint8 pixel data."""
        return self.frame.pixels

    @property
    def sources(self) -> Tuple[np.ndarray, ...]:
        """All N input frames in source order."""
        return (self.visible, self.thermal) + tuple(self.extra_sources)


@dataclass
class FusionReport:
    """Aggregate outcome of a session run (or a streamed interval).

    All quantities cover the frames the report was built over; the
    telemetry / monitor blocks are session-cumulative, matching how a
    long-lived deployment reads them.
    """

    frames: int = 0
    engine_usage: Dict[str, int] = field(default_factory=dict)
    actions: Dict[str, int] = field(default_factory=dict)
    model_seconds_total: float = 0.0
    model_millijoules_total: float = 0.0
    quality: Dict[str, float] = field(default_factory=dict)
    alarms: int = 0
    mean_qabf: float = 0.0
    telemetry: Dict[str, float] = field(default_factory=dict)
    registered_shift_px: float = 0.0
    fifo_dropped: int = 0
    decode_errors: int = 0
    #: measured executor throughput (wall fps, per-stage occupancy,
    #: queue depth peaks, steals) — see :class:`repro.exec.ExecStats`.
    #: Scope: the most recent stream drive (batch-scoped on run()
    #: reports), unlike ``telemetry`` which is session-cumulative;
    #: empty when the frames were fused via :meth:`FusionSession.process`
    throughput: Dict[str, object] = field(default_factory=dict)
    records: List[FusedFrameResult] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def engine_used(self) -> str:
        """The engine that fused the most frames (sole engine if fixed)."""
        if not self.engine_usage:
            return "none"
        return max(self.engine_usage.items(), key=lambda kv: kv[1])[0]

    @property
    def model_fps(self) -> float:
        if self.model_seconds_total <= 0:
            return 0.0
        return self.frames / self.model_seconds_total

    @property
    def millijoules_per_frame(self) -> float:
        if self.frames == 0:
            return 0.0
        return self.model_millijoules_total / self.frames

    @property
    def wall_fps(self) -> float:
        """Measured end-to-end frames per wall-clock second (0.0 when
        no executor drove the batch)."""
        return float(self.throughput.get("wall_fps", 0.0))

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly summary (records omitted)."""
        return {
            "frames": self.frames,
            "engine_used": self.engine_used,
            "engine_usage": dict(self.engine_usage),
            "actions": dict(self.actions),
            "model_fps": self.model_fps,
            "millijoules_per_frame": self.millijoules_per_frame,
            "quality": dict(self.quality),
            "alarms": self.alarms,
            "mean_qabf": self.mean_qabf,
            "telemetry": dict(self.telemetry),
            "registered_shift_px": self.registered_shift_px,
            "fifo_dropped": self.fifo_dropped,
            "decode_errors": self.decode_errors,
            "throughput": dict(self.throughput),
        }
