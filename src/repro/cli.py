"""Command-line interface: ``repro-fusion``.

Subcommands
-----------
``demo``
    Run the complete capture->fuse session for N frames and report
    modelled fps, energy and fusion quality.
``fuse``
    Fuse one synthetic frame pair and write PGM images (visible,
    thermal, fused) — a dependency-free way to *see* the system work.
``sweep``
    Print the Fig. 9/Fig. 10 engine-comparison tables.
``schedule``
    Show the adaptive scheduler's decision for a frame size, including
    the per-level plan.
``plan``
    Lower the session's declarative :class:`~repro.graph.FusionGraph`
    through the planner and print the resulting
    :class:`~repro.graph.FusionPlan` — stage schedule, placements,
    batch groups and modelled per-stage cost — without fusing a frame.
``serve``
    Run many named streams concurrently over one shared engine pool
    (:class:`repro.serve.FusionService`) from a JSON spec — per-stream
    configs/sources/priorities, pool inventory, admission bounds — and
    print the aggregate :class:`~repro.serve.ServiceReport`.
``figures``
    Render the sweep tables as SVG charts.

Every subcommand accepts ``--seed``; ``demo`` and ``fuse`` thread it
into the synthetic scene so runs are exactly reproducible.  ``demo``
and ``fuse`` also accept ``--executor serial|pipeline|hetero|batch``
(with ``--workers``/``--queue-depth``/``--batch-size``) to pick the
execution strategy, ``--precision float32|float64`` to pin the kernel
datapath dtype end-to-end (default: each engine's native precision,
bitwise-identical to previous releases), and ``--json`` to emit the
full report machine-readably.

The CLI is reachable without the console-script install as
``python -m repro`` (see :mod:`repro.__main__`) or
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from .core.adaptive import CostModelScheduler, PerLevelScheduler
from .errors import ConfigurationError, ReproError
from .exec import executor_names
from .hw.registry import engine_names
from .session import SCHEDULER_NAMES, FusionConfig, FusionSession
from .types import FrameShape

#: Scene seed used when --seed is not given (the paper's year).
DEFAULT_SEED = 2016


def _parse_shape(text: str) -> FrameShape:
    try:
        width, height = text.lower().split("x")
        shape = FrameShape(int(width), int(height))
    except ConfigurationError as exc:  # parsed, but non-positive dims
        raise argparse.ArgumentTypeError(str(exc)) from exc
    except (ValueError, TypeError) as exc:
        raise argparse.ArgumentTypeError(
            f"frame size must look like 88x72, got {text!r}"
        ) from exc
    return shape


def write_pgm(path: Path, image: np.ndarray) -> None:
    """Write an 8-bit grayscale PGM (no imaging dependency needed)."""
    data = np.clip(np.round(np.asarray(image, dtype=np.float64)), 0, 255)
    data = data.astype(np.uint8)
    with open(path, "wb") as fh:
        fh.write(f"P5\n{data.shape[1]} {data.shape[0]}\n255\n".encode())
        fh.write(data.tobytes())


def _session(args: argparse.Namespace, **overrides) -> FusionSession:
    return FusionSession(FusionConfig(
        engine=args.engine,
        executor=args.executor,
        workers=args.workers,
        queue_depth=args.queue_depth,
        batch_size=args.batch_size,
        precision=args.precision,
        fusion_shape=args.size,
        levels=args.levels,
        seed=args.seed,
        **overrides,
    ))


def _emit_json(report) -> None:
    """Machine-readable FusionReport (throughput fields included)."""
    print(json.dumps(report.as_dict(), indent=2, sort_keys=True))


def cmd_demo(args: argparse.Namespace) -> int:
    with _session(args) as session:
        report = session.run(args.frames)
    if args.json:
        _emit_json(report)
        return 0
    print(f"engine used      : {report.engine_used}")
    print(f"frames fused     : {report.frames}")
    print(f"executor         : {args.executor}")
    print(f"modelled fps     : {report.model_fps:.1f}")
    if report.wall_fps:
        print(f"wall-clock fps   : {report.wall_fps:.1f}")
    print(f"energy per frame : {report.millijoules_per_frame:.2f} mJ")
    if report.quality:
        print("fusion quality   : "
              + ", ".join(f"{k}={v:.3f}" for k, v in report.quality.items()))
    return 0


def cmd_fuse(args: argparse.Namespace) -> int:
    with _session(args, quality_metrics=False) as session:
        report = session.run(1)
    result = report.records[0]
    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    write_pgm(out / "visible.pgm", result.visible)
    write_pgm(out / "thermal.pgm", result.thermal)
    write_pgm(out / "fused.pgm", result.pixels)
    if args.json:
        _emit_json(report)
        return 0
    print(f"wrote {out}/visible.pgm, thermal.pgm, fused.pgm "
          f"({args.size} px, engine {report.engine_used})")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from .system.runtime import (energy_sweep, format_rows,
                                 forward_stage_sweep, inverse_stage_sweep,
                                 total_time_sweep)
    tables = {
        "fig9a": (forward_stage_sweep, "seconds / 10 frames",
                  "Fig. 9(a) forward DT-CWT"),
        "fig9b": (total_time_sweep, "seconds / 10 frames",
                  "Fig. 9(b) total time"),
        "fig9c": (inverse_stage_sweep, "seconds / 10 frames",
                  "Fig. 9(c) inverse DT-CWT"),
        "fig10": (energy_sweep, "millijoules / 10 frames",
                  "Fig. 10 total energy"),
    }
    which = ("fig9a", "fig9b", "fig9c", "fig10") if args.table == "all" \
        else (args.table,)
    for key in which:
        fn, unit, title = tables[key]
        print(format_rows(fn(levels=args.levels), unit, title))
        print()
    return 0


def cmd_schedule(args: argparse.Namespace) -> int:
    scheduler = CostModelScheduler(objective=args.objective)
    decision = scheduler.choose(args.size, args.levels)
    print(f"frame size {args.size}, objective {args.objective}:")
    for name, value in sorted(decision.alternatives.items(),
                              key=lambda kv: kv[1]):
        unit = "s" if args.objective == "time" else "mJ"
        marker = " <= chosen" if name == decision.engine.name else ""
        print(f"  {name:>5}: {value:.6f} {unit}{marker}")
    plan = PerLevelScheduler().plan(args.size, args.levels)
    print(f"per-level plan (extension): forward {plan.forward_assignment}, "
          f"inverse {plan.inverse_assignment}, "
          f"predicted {plan.predicted_s * 1e3:.2f} ms/frame")
    return 0


def _explain_passes(plan) -> str:
    """The optimization pipeline's pass-by-pass diff, as text."""
    lines = ["optimization passes"]
    for report in plan.pass_reports:
        marker = "changed" if report["changed"] else "no change"
        lines.append(f"  {report['pass']} [{marker}]")
        for action in report["actions"]:
            lines.append(f"    - {action}")
    if not plan.pass_reports:
        lines.append("  (none ran — pass --optimize)")
    return "\n".join(lines)


def _explain_kernels(plan) -> str:
    """Per-stage kernel backend and working dtype, as text."""
    lines = ["kernel bindings"]
    for name in plan.schedule:
        node = plan.nodes[name]
        if node.kernel:
            lines.append(f"  {name:<12} {node.engine:<10} "
                         f"kernel={node.kernel} dtype={node.precision}")
        else:
            lines.append(f"  {name:<12} {node.engine:<10} "
                         f"host-side (no engine arithmetic)")
    return "\n".join(lines)


def cmd_plan(args: argparse.Namespace) -> int:
    config = FusionConfig(
        engine=args.engine,
        executor=args.executor,
        workers=args.workers,
        queue_depth=args.queue_depth,
        batch_size=args.batch_size,
        precision=args.precision,
        engine_team=(tuple(args.engine_team) if args.engine_team else None),
        fusion_shape=args.size,
        levels=args.levels,
        registration=args.registration,
        temporal=args.temporal,
        seed=args.seed,
        optimize=args.optimize,
    )
    with FusionSession(config) as session:
        plan = session.plan
        if args.json:
            print(json.dumps(plan.as_dict(), indent=2, sort_keys=True))
        else:
            print(session.graph.describe())
            print()
            print(plan.describe())
            if args.explain:
                print()
                print(_explain_kernels(plan))
                print()
                print(_explain_passes(plan))
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    from .graph.autotune import PlanAutotuner

    config = FusionConfig(
        engine=args.engine,
        executor=args.executor,
        workers=args.workers,
        queue_depth=args.queue_depth,
        batch_size=args.batch_size,
        precision=args.precision,
        fusion_shape=args.size,
        levels=args.levels,
        registration=args.registration,
        temporal=args.temporal,
        seed=args.seed,
        quality_metrics=False,
        keep_records=False,
    )
    tuner = PlanAutotuner(cache_dir=args.cache_dir,
                          calibration_frames=args.frames)
    if args.clear_cache:
        removed = tuner.clear_cache()
        print(f"cleared {removed} cached plan decision(s) from "
              f"{tuner.cache_dir}")
    decision = tuner.decide(config)
    if args.json:
        print(json.dumps(decision.as_dict(), indent=2, sort_keys=True))
        return 0
    print(f"plan decision [{decision.source}] key={decision.key}")
    overrides = ", ".join(f"{k}={v!r}" for k, v
                          in sorted(decision.overrides.items()))
    print(f"  winner   : {overrides or 'default configuration'}")
    when = (f"on {args.frames} calibration frame(s)"
            if decision.source == "tuned" else "at tuning time")
    print(f"  measured : {decision.fps:.2f} fps {when}")
    if decision.candidates:
        print("  candidates:")
        for row in decision.candidates:
            ov = ", ".join(f"{k}={v!r}" for k, v
                           in sorted(row["overrides"].items()))
            print(f"    {row['fps']:8.2f} fps  {ov or 'default'}")
    else:
        print(f"  (loaded from cache: {tuner.cache_path(decision.key)})")
    return 0


#: FusionConfig fields a serve-spec stream block may set directly.
_SERVE_CONFIG_FIELDS = (
    "engine", "executor", "batch_size", "levels", "fusion_rule",
    "objective", "registration", "temporal", "monitor",
    "quality_metrics", "keep_records", "seed", "precision",
)

#: keys a serve-spec stream block itself may carry.
_SERVE_STREAM_KEYS = ("name", "config", "seed", "frames", "priority",
                      "batch_frames", "slo")


def _serve_stream_config(name: str, block: dict) -> "FusionConfig":
    """Build one stream's FusionConfig from its spec block."""
    known = set(_SERVE_CONFIG_FIELDS) | {"size"}
    bad = set(block) - known
    if bad:
        raise ConfigurationError(
            f"stream {name!r}: unknown config key(s) {sorted(bad)}; "
            f"expected a subset of {sorted(known)}")
    fields = {key: block[key] for key in _SERVE_CONFIG_FIELDS
              if key in block}
    if "size" in block:
        fields["fusion_shape"] = _parse_shape(str(block["size"]))
    return FusionConfig(**fields)


def cmd_serve(args: argparse.Namespace) -> int:
    from .serve import FusionService
    from .serve.ops import ShedPolicy, StreamSLO
    from .session import SyntheticSource

    try:
        spec = json.loads(Path(args.streams).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read stream spec {args.streams!r}: {exc}",
              file=sys.stderr)
        return 1
    streams = spec.get("streams")
    if not streams:
        raise ConfigurationError(
            f"stream spec {args.streams!r} has no 'streams' entries")

    # spec values are the defaults; explicit CLI flags override them
    workers = args.workers if args.workers is not None \
        else spec.get("workers")
    shedding = spec.get("shedding")
    shards = args.shards if args.shards is not None \
        else spec.get("shards")
    service_kwargs = dict(
        pool=spec.get("pool", {"arm": 1, "neon": 1, "fpga": 1}),
        max_in_flight=int(spec.get("max_in_flight", 8)),
        stream_queue_depth=int(spec.get("stream_queue_depth", 4)),
        workers=int(workers) if workers is not None else None,
        shedding=ShedPolicy(**shedding) if shedding is not None else None,
        slo_headroom=float(spec.get("slo_headroom", 1.0)),
    )
    if shards is not None:
        from .serve import ShardedFusionService
        service = ShardedFusionService(shards=int(shards),
                                       **service_kwargs)
    else:
        service = FusionService(**service_kwargs)
    for index, block in enumerate(streams):
        name = block.get("name", f"stream{index}")
        bad = set(block) - set(_SERVE_STREAM_KEYS)
        if bad:
            # a typo'd knob must fail loudly, not silently run with
            # the default it was meant to override
            raise ConfigurationError(
                f"stream {name!r}: unknown key(s) {sorted(bad)}; "
                f"expected a subset of {sorted(_SERVE_STREAM_KEYS)}")
        config = _serve_stream_config(name, block.get("config", {}))
        seed = int(block.get("seed", config.seed))
        slo = block.get("slo")
        service.add_stream(
            name,
            config=config,
            source=SyntheticSource(seed=seed),
            frames=int(block.get("frames", args.frames)),
            priority=float(block.get("priority", 1.0)),
            batch_frames=block.get("batch_frames"),
            slo=StreamSLO.from_dict(slo) if slo is not None else None,
        )
    with service:
        report = service.serve()
        if args.metrics_out:
            Path(args.metrics_out).write_text(service.metrics_text())
            print(f"wrote metrics to {args.metrics_out}",
                  file=sys.stderr)
        if args.events_out:
            written = service.events.dump(args.events_out)
            print(f"wrote {written} event(s) to {args.events_out}",
                  file=sys.stderr)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.describe())
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from .figures import generate_figures
    for path in generate_figures(args.output, levels=args.levels):
        print(f"wrote {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fusion",
        description="Energy-efficient video fusion on a modelled "
                    "CPU-FPGA ZYNQ platform (DATE 2016 reproduction)",
    )
    # options shared by every subcommand, so scripts can append --seed
    # uniformly regardless of which command they drive
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="synthetic-scene seed; makes demo/fuse runs "
                             "reproducible (accepted but unused by the "
                             "model-only commands)")

    # options shared by the subcommands that actually execute frames:
    # executor selection and machine-readable output
    execution = argparse.ArgumentParser(add_help=False)
    execution.add_argument("--executor", default="serial",
                           choices=executor_names(),
                           help="how frames are driven: serial loop, "
                                "double-buffered thread pipeline, "
                                "heterogeneous engine co-scheduling, or "
                                "micro-batched NumPy vectorization")
    execution.add_argument("--workers", type=int, default=2,
                           help="concurrent stage workers / engine team "
                                "size (pipeline, hetero)")
    execution.add_argument("--queue-depth", type=int, default=4,
                           help="bound on frames in flight between stages")
    execution.add_argument("--batch-size", type=int, default=8,
                           help="frame pairs per stacked transform "
                                "invocation (batch executor only)")
    execution.add_argument("--precision", default=None,
                           choices=("float32", "float64"),
                           help="pin the kernel datapath dtype end-to-end "
                                "(default: each engine's native precision; "
                                "the FPGA datapath is float32-only)")
    execution.add_argument("--json", action="store_true",
                           help="emit the FusionReport as JSON on stdout")

    sub = parser.add_subparsers(dest="command", required=True)
    engines = engine_names() + SCHEDULER_NAMES

    demo = sub.add_parser("demo", parents=[common, execution],
                          help="run the capture->fuse session")
    demo.add_argument("--frames", type=int, default=10)
    demo.add_argument("--engine", default="adaptive", choices=engines)
    demo.add_argument("--size", type=_parse_shape, default=FrameShape(88, 72))
    demo.add_argument("--levels", type=int, default=3)
    demo.set_defaults(func=cmd_demo)

    fuse = sub.add_parser("fuse", parents=[common, execution],
                          help="fuse one frame pair to PGM files")
    fuse.add_argument("--engine", default="neon", choices=engines)
    fuse.add_argument("--size", type=_parse_shape, default=FrameShape(88, 72))
    fuse.add_argument("--levels", type=int, default=3)
    fuse.add_argument("--output", default="fusion_out")
    fuse.set_defaults(func=cmd_fuse)

    sweep = sub.add_parser("sweep", parents=[common],
                           help="print Fig. 9 / Fig. 10 tables")
    sweep.add_argument("--table", default="all",
                       choices=("all", "fig9a", "fig9b", "fig9c", "fig10"))
    sweep.add_argument("--levels", type=int, default=3)
    sweep.set_defaults(func=cmd_sweep)

    plan = sub.add_parser("plan", parents=[common, execution],
                          help="print the lowered FusionPlan (stages, "
                               "placements, batch groups, modelled cost)")
    plan.add_argument("--engine", default="adaptive", choices=engines)
    plan.add_argument("--size", type=_parse_shape, default=FrameShape(88, 72))
    plan.add_argument("--levels", type=int, default=3)
    plan.add_argument("--registration", action="store_true",
                      help="include the rig-calibration stage")
    plan.add_argument("--temporal", action="store_true",
                      help="plan the stateful temporal-fusion pipeline")
    plan.add_argument("--engine-team", nargs="+", default=None,
                      metavar="ENGINE",
                      help="explicit hetero engine team, e.g. fpga neon "
                           "(requires --executor hetero); shows the "
                           "planned fuse affinity")
    plan.add_argument("--optimize", action="store_true",
                      help="run the optimization pass pipeline (stage "
                           "fusion, materialization elimination, "
                           "loop-invariant hoisting) on the lowered plan")
    plan.add_argument("--explain", action="store_true",
                      help="print the pass-by-pass diff: fused units, "
                           "eliminated materializations, hoisted setup")
    plan.set_defaults(func=cmd_plan)

    tune = sub.add_parser("tune", parents=[common],
                          help="measure candidate plans on a calibration "
                               "prefix and persist the winner in the "
                               "plan cache")
    tune.add_argument("--engine", default="adaptive", choices=engines)
    tune.add_argument("--executor", default="serial",
                      choices=executor_names())
    tune.add_argument("--workers", type=int, default=2)
    tune.add_argument("--queue-depth", type=int, default=4)
    tune.add_argument("--batch-size", type=int, default=8)
    tune.add_argument("--precision", default=None,
                      choices=("float32", "float64"),
                      help="incumbent datapath dtype; an explicit "
                           "float64 lets the tuner offer the float32 "
                           "datapath as a candidate axis")
    tune.add_argument("--size", type=_parse_shape, default=FrameShape(88, 72))
    tune.add_argument("--levels", type=int, default=3)
    tune.add_argument("--registration", action="store_true")
    tune.add_argument("--temporal", action="store_true")
    tune.add_argument("--frames", type=int, default=6,
                      help="calibration prefix length each candidate "
                           "is measured on")
    tune.add_argument("--cache-dir", default=None,
                      help="plan-cache directory (default: "
                           "$REPRO_PLAN_CACHE or ~/.cache/repro/plans)")
    tune.add_argument("--clear-cache", action="store_true",
                      help="delete every cached decision first")
    tune.add_argument("--json", action="store_true",
                      help="emit the decision as JSON on stdout")
    tune.set_defaults(func=cmd_tune)

    serve = sub.add_parser("serve", parents=[common],
                           help="serve many streams concurrently over a "
                                "shared engine pool from a JSON spec")
    serve.add_argument("--streams", required=True, metavar="SPEC.json",
                       help="service spec: pool inventory, admission "
                            "bounds and per-stream config/seed/frames/"
                            "priority blocks")
    serve.add_argument("--frames", type=int, default=16,
                       help="default frames per stream when a block "
                            "does not set its own")
    serve.add_argument("--shards", type=int, default=None,
                       help="serve through N shard processes "
                            "(ShardedFusionService) instead of one "
                            "process; overrides the spec's 'shards' key")
    serve.add_argument("--workers", type=int, default=None,
                       help="service worker threads (default: the spec's "
                            "'workers', else the pool size); an explicit "
                            "flag overrides the spec")
    serve.add_argument("--metrics-out", metavar="PATH", default=None,
                       help="write the service's metrics as Prometheus "
                            "text exposition to PATH after the drive")
    serve.add_argument("--events-out", metavar="PATH", default=None,
                       help="write the service's structured event log "
                            "as JSON Lines to PATH after the drive")
    serve.add_argument("--json", action="store_true",
                       help="emit the ServiceReport as JSON on stdout")
    serve.set_defaults(func=cmd_serve)

    schedule = sub.add_parser("schedule", parents=[common],
                              help="adaptive engine choice")
    schedule.add_argument("--size", type=_parse_shape,
                          default=FrameShape(88, 72))
    schedule.add_argument("--levels", type=int, default=3)
    schedule.add_argument("--objective", default="time",
                          choices=("time", "energy"))
    schedule.set_defaults(func=cmd_schedule)

    figures = sub.add_parser("figures", parents=[common],
                             help="render Fig. 9/Fig. 10 as SVG charts")
    figures.add_argument("--output", default="figures")
    figures.add_argument("--levels", type=int, default=3)
    figures.set_defaults(func=cmd_figures)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
