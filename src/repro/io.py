"""Dependency-free image and data I/O.

The paper's demo displays frames through OpenCV; this reproduction has
no imaging dependency, so it reads and writes the Netpbm formats every
viewer understands:

* PGM (P5) — 8-bit grayscale, used for captured/fused frames,
* PPM (P6) — 24-bit color, used for the colorized fusion overlay,
* plus a raw little-endian float dump for coefficient archives.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from .errors import VideoError

PathLike = Union[str, Path]


def _clip_u8(image: np.ndarray) -> np.ndarray:
    return np.clip(np.round(np.asarray(image, dtype=np.float64)),
                   0, 255).astype(np.uint8)


def write_pgm(path: PathLike, image: np.ndarray) -> None:
    """Write an 8-bit grayscale PGM (binary P5)."""
    data = _clip_u8(image)
    if data.ndim != 2:
        raise VideoError(f"PGM wants a 2-D image, got shape {data.shape}")
    with open(path, "wb") as fh:
        fh.write(f"P5\n{data.shape[1]} {data.shape[0]}\n255\n".encode())
        fh.write(data.tobytes())


def read_pgm(path: PathLike) -> np.ndarray:
    """Read a binary (P5) PGM written by :func:`write_pgm`."""
    raw = Path(path).read_bytes()
    magic, rest = raw.split(b"\n", 1)
    if magic.strip() != b"P5":
        raise VideoError(f"{path}: not a binary PGM (magic {magic!r})")
    fields = []
    while len(fields) < 3:
        line, rest = rest.split(b"\n", 1)
        line = line.split(b"#")[0].strip()
        if line:
            fields.extend(line.split())
    cols, rows, maxval = (int(v) for v in fields[:3])
    if maxval != 255:
        raise VideoError(f"{path}: only 8-bit PGM supported, maxval={maxval}")
    pixels = np.frombuffer(rest[: rows * cols], dtype=np.uint8)
    if pixels.size != rows * cols:
        raise VideoError(f"{path}: truncated pixel data")
    return pixels.reshape(rows, cols).copy()


def write_ppm(path: PathLike, image: np.ndarray) -> None:
    """Write a 24-bit color PPM (binary P6), channels-last RGB."""
    data = _clip_u8(image)
    if data.ndim != 3 or data.shape[2] != 3:
        raise VideoError(f"PPM wants (H, W, 3), got shape {data.shape}")
    with open(path, "wb") as fh:
        fh.write(f"P6\n{data.shape[1]} {data.shape[0]}\n255\n".encode())
        fh.write(data.tobytes())


def read_ppm(path: PathLike) -> np.ndarray:
    """Read a binary (P6) PPM written by :func:`write_ppm`."""
    raw = Path(path).read_bytes()
    magic, rest = raw.split(b"\n", 1)
    if magic.strip() != b"P6":
        raise VideoError(f"{path}: not a binary PPM (magic {magic!r})")
    fields = []
    while len(fields) < 3:
        line, rest = rest.split(b"\n", 1)
        line = line.split(b"#")[0].strip()
        if line:
            fields.extend(line.split())
    cols, rows, maxval = (int(v) for v in fields[:3])
    if maxval != 255:
        raise VideoError(f"{path}: only 8-bit PPM supported")
    pixels = np.frombuffer(rest[: rows * cols * 3], dtype=np.uint8)
    if pixels.size != rows * cols * 3:
        raise VideoError(f"{path}: truncated pixel data")
    return pixels.reshape(rows, cols, 3).copy()


def write_float_raw(path: PathLike, array: np.ndarray) -> None:
    """Dump an array as little-endian float32 with a tiny header.

    Header: magic ``RPF1``, ndim, then each dimension as uint32 —
    enough to archive coefficient pyramids without pickling.
    """
    arr = np.ascontiguousarray(array, dtype="<f4")
    with open(path, "wb") as fh:
        fh.write(b"RPF1")
        fh.write(struct.pack("<I", arr.ndim))
        for dim in arr.shape:
            fh.write(struct.pack("<I", dim))
        fh.write(arr.tobytes())


def read_float_raw(path: PathLike) -> np.ndarray:
    """Read an array written by :func:`write_float_raw`."""
    raw = Path(path).read_bytes()
    if raw[:4] != b"RPF1":
        raise VideoError(f"{path}: bad magic {raw[:4]!r}")
    ndim = struct.unpack("<I", raw[4:8])[0]
    shape: Tuple[int, ...] = tuple(
        struct.unpack("<I", raw[8 + 4 * i: 12 + 4 * i])[0]
        for i in range(ndim)
    )
    offset = 8 + 4 * ndim
    count = int(np.prod(shape)) if shape else 0
    data = np.frombuffer(raw[offset:], dtype="<f4", count=count)
    return data.reshape(shape).copy()


def colorize_fusion(fused_luma: np.ndarray,
                    thermal: np.ndarray,
                    alpha: float = 0.5) -> np.ndarray:
    """Classic hot-overlay display: fused luma + thermal-driven chroma.

    The fused image carries the detail; the thermal intensity tints hot
    regions toward red/yellow the way fusion demos (including the
    paper's Fig. 8 video) present results.  Returns (H, W, 3) uint8.
    """
    if not 0.0 <= alpha <= 1.0:
        raise VideoError(f"alpha must be within [0, 1], got {alpha}")
    luma = _clip_u8(fused_luma).astype(np.float64)
    heat = _clip_u8(thermal).astype(np.float64) / 255.0
    if luma.shape != heat.shape:
        raise VideoError("fused and thermal frames must share a shape")
    red = luma + alpha * heat * (255.0 - luma)
    green = luma + alpha * np.clip(heat - 0.5, 0, 1) * (255.0 - luma)
    blue = luma * (1.0 - alpha * heat)
    return _clip_u8(np.stack([red, green, blue], axis=-1))
