"""Pluggable compute backends for the wavelet kernels.

The paper runs the *same* transform on three engines (ARM scalar code,
NEON SIMD intrinsics, FPGA wavelet hardware).  To mirror that, the
transforms in this package route every 1-D filtering primitive through a
:class:`KernelBackend`.  The default :class:`NumpyBackend` is the
reference implementation; the hardware models in :mod:`repro.hw` provide
backends that compute identical results while accounting cycles and
transfers (and, for the FPGA, using single-precision arithmetic like the
HLS datapath).

The primitives are *dual-channel* — each computes the low-pass and
high-pass outputs in one sweep, exactly like the paper's HLS engine
whose datapath holds one shift register feeding two MAC chains
(``hpAcc``/``lpAcc`` in Fig. 4).  One call therefore corresponds to
``n_lines`` hardware invocations, which is what the timing models count.

The primitives are also **shape-polymorphic**: inputs may carry any
number of leading (batch) axes ahead of the filtered one — a stacked
``(N, H, W)`` call filters all ``N`` frames' lines through the same
datapath sweep, accounting exactly like ``N`` separate calls.  The
batch transforms (:meth:`repro.dtcwt.Dtcwt2D.forward_batch`) rely on
this to amortize per-call overhead without changing a single output
bit; implementations must keep per-element arithmetic independent of
the leading axes.

========================  =================================================
``analysis_u``            undecimated centered filtering (DT-CWT level 1)
``synthesis_u``           undecimated dual synthesis (level-1 inverse)
``analysis_d``            causal filtering + decimation (levels >= 2, DWT)
``synthesis_d``           zero-stuffed dual synthesis (levels >= 2, DWT)
========================  =================================================
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from .util import cconv, cconv_causal, ccorr_causal, downsample2, upsample2


class ScratchPool:
    """Keyed, reusable scratch buffers for the steady-state frame path.

    The materialization-elimination pass
    (:class:`repro.graph.passes.MaterializationEliminationPass`) routes
    per-frame intermediates — canonically the ``(2, H, W)`` stack fed
    to the stacked forward transform — through one of these instead of
    allocating fresh arrays every frame.  ``take`` returns the cached
    buffer for ``key`` when shape and dtype still match, else
    (re)allocates it; callers must fully overwrite the buffer before
    use, which keeps pooling invisible to the arithmetic (bitwise).

    A pool is **single-threaded by contract**: it lives on a per-worker
    context (or the session's serial lane), exactly like the non-thread
    -safe compute lanes it feeds.

    A pool also carries one **working dtype per generation**: the first
    ``take`` pins it, and a ``take`` requesting a different dtype drops
    *every* cached buffer (not just the requested key) before
    reallocating.  Switching a session's precision mid-process would
    otherwise strand each old-dtype buffer until its own key happened
    to be requested again — paying the stale memory *and* the
    realloc-on-mismatch cost key by key.  Call :meth:`clear` explicitly
    when swapping backends or dtypes out-of-band.
    """

    def __init__(self) -> None:
        self._buffers: Dict[object, np.ndarray] = {}
        self._dtype: Optional[np.dtype] = None

    def take(self, key: object, shape: Tuple[int, ...],
             dtype: np.dtype = np.float64) -> np.ndarray:
        """The pooled buffer for ``key``, allocated on first use (or
        when ``shape``/``dtype`` changed).  Contents are undefined."""
        dtype = np.dtype(dtype)
        if self._dtype != dtype:
            # precision swap: one generation, one dtype — drop all
            # stale buffers at once instead of lazily per key
            self._buffers.clear()
            self._dtype = dtype
        buffer = self._buffers.get(key)
        if buffer is None or buffer.shape != tuple(shape):
            buffer = np.empty(shape, dtype=dtype)
            self._buffers[key] = buffer
        return buffer

    def __len__(self) -> int:
        return len(self._buffers)

    @property
    def nbytes(self) -> int:
        """Total bytes held by pooled buffers."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def clear(self) -> None:
        """Drop every cached buffer (the backend/dtype-swap hook)."""
        self._buffers.clear()
        self._dtype = None


class KernelBackend:
    """Reference (numpy) backend; subclass to instrument or accelerate.

    ``dtype`` controls the working precision: the reference uses float64;
    hardware-fidelity backends use float32 to match the HLS datapath.
    """

    name = "numpy"

    def __init__(self, dtype: np.dtype = np.float64):
        self.dtype = np.dtype(dtype)
        #: id(taps) -> (taps, converted) once the loop-invariant hoist
        #: pass enables caching; the strong reference to the original
        #: keeps its id() from being reused
        self._tap_cache: Optional[Dict[int, Tuple[np.ndarray,
                                                  np.ndarray]]] = None

    def enable_tap_cache(self) -> None:
        """Convert each filter bank to the working dtype once instead
        of on every primitive call (enabled by the hoist pass; the
        cached array is the exact array the per-call conversion
        produced, so outputs are bitwise-unchanged)."""
        if self._tap_cache is None:
            self._tap_cache = {}

    @property
    def tap_cache_enabled(self) -> bool:
        return self._tap_cache is not None

    # -- internal helpers ----------------------------------------------
    def _f(self, taps: np.ndarray) -> np.ndarray:
        cache = self._tap_cache
        if cache is None:
            return np.asarray(taps, dtype=self.dtype)
        entry = cache.get(id(taps))
        if entry is None or entry[0] is not taps:
            entry = (taps, np.asarray(taps, dtype=self.dtype))
            cache[id(taps)] = entry
        return entry[1]

    def _x(self, x: np.ndarray) -> np.ndarray:
        """Caller array in the working dtype.

        ``astype(copy=False)`` **aliases** the caller's array when the
        dtype already matches, so the value returned here may be the
        caller's own buffer.  Primitives must therefore treat it as
        read-only: build outputs in fresh (or pooled-internal) arrays
        and never pass it as an ``out=`` target.  Every backend in this
        package honors that contract — the regression tests assert the
        inputs are bit-unchanged after each primitive — and subclasses
        adding in-place kernels must copy first if they need to write.
        """
        return np.asarray(x).astype(self.dtype, copy=False)

    # -- level 1 (undecimated, centered) ---------------------------------
    def analysis_u(self, x: np.ndarray, h0: np.ndarray, c0: int,
                   h1: np.ndarray, c1: int, axis: int
                   ) -> Tuple[np.ndarray, np.ndarray]:
        """Dual undecimated centered circular convolution along ``axis``."""
        x = self._x(x)
        return (cconv(x, self._f(h0), c0, axis),
                cconv(x, self._f(h1), c1, axis))

    def synthesis_u(self, u0: np.ndarray, u1: np.ndarray,
                    g0: np.ndarray, c0: int, g1: np.ndarray, c1: int,
                    axis: int) -> np.ndarray:
        """Dual undecimated synthesis: ``conv(u0, g0) + conv(u1, g1)``."""
        return (cconv(self._x(u0), self._f(g0), c0, axis)
                + cconv(self._x(u1), self._f(g1), c1, axis))

    # -- levels >= 2 (decimated, causal) ----------------------------------
    def analysis_d(self, x: np.ndarray, h0: np.ndarray, h1: np.ndarray,
                   axis: int) -> Tuple[np.ndarray, np.ndarray]:
        """Dual causal circular convolution + downsample-by-2 (phase 0)."""
        x = self._x(x)
        lo = downsample2(cconv_causal(x, self._f(h0), axis), 0, axis)
        hi = downsample2(cconv_causal(x, self._f(h1), axis), 0, axis)
        return lo, hi

    def synthesis_d(self, lo: np.ndarray, hi: np.ndarray,
                    h0: np.ndarray, h1: np.ndarray, axis: int) -> np.ndarray:
        """Adjoint of :meth:`analysis_d`: upsample + circular correlation."""
        up_lo = upsample2(self._x(lo), 0, axis)
        up_hi = upsample2(self._x(hi), 0, axis)
        return (ccorr_causal(up_lo, self._f(h0), axis)
                + ccorr_causal(up_hi, self._f(h1), axis))


class NumpyBackend(KernelBackend):
    """Alias of the base class kept for explicitness at call sites."""


DEFAULT_BACKEND = NumpyBackend()
