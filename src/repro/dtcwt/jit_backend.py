"""JIT-compiled kernel backend: the same transform, lowered faster.

The paper's central move is re-expressing one wavelet datapath for a
faster engine (the HLS pipeline in Fig. 4).  This module is the
software analogue: :class:`JitBackend` implements the exact four
dual-channel primitives of :class:`~repro.dtcwt.backend.KernelBackend`
with a *halo-extension* formulation that a compiler can chew on —
and compiles it with Numba when the package is importable, falling
back to a pure-NumPy strided-slice evaluation of the *same*
per-element arithmetic when it is not.

Why the outputs are bitwise-identical to :class:`NumpyBackend`
--------------------------------------------------------------
The reference kernels accumulate ``out += tap * roll(x, ...)`` over
taps in ascending index order, skipping exact-zero taps.  Both paths
here replay exactly that per-element floating-point sequence:

* the circular wrap is materialized once as a halo-extended copy
  ``ext[m] = x[(m + shift) mod N]`` (one ``np.take``), after which
  each tap contributes a plain strided slice of ``ext``;
* taps are visited in the same ascending order with the same
  ``tap != 0.0`` skip (zero *data* terms are **never** skipped —
  dropping them could flip a ``-0.0`` to ``+0.0``);
* each contribution is ``acc + tap * value`` — multiply then add,
  the same two IEEE operations the reference performs elementwise;
* dual-output sums (``conv(u0,g0) + conv(u1,g1)``) accumulate each
  operand separately and add once at the end, like the reference.

Decimated analysis additionally evaluates only the even output
phase directly (the reference computes the full causal convolution
and then downsamples); per-element accumulation is independent of
neighbouring outputs, so the retained elements are bit-identical
while the discarded half is simply never computed.

Everything shape-derived — halo index tables, tap offset tables,
extension and scratch buffers — is cached on the backend (index
tables per ``(N, taps, shift)``, buffers in a private
:class:`~repro.dtcwt.backend.ScratchPool`), so the steady-state
frame path allocates nothing beyond the output arrays themselves.
Output buffers are deliberately *not* pooled: callers hold
references to returned subbands across calls, and recycling them
would overwrite live data.

Numba is optional.  Availability is probed once at import; set
``REPRO_NO_NUMBA=1`` to force the pure-NumPy fallback even when
Numba is installed (CI uses this to prove the fallback path).
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

import numpy as np

from .backend import KernelBackend, ScratchPool


def _load_numba():
    """The ``numba`` module, or ``None`` when absent or disabled."""
    if os.environ.get("REPRO_NO_NUMBA"):
        return None
    try:
        import numba
    except ImportError:
        return None
    return numba


_numba = _load_numba()

#: True when the compiled path is importable and not disabled.
NUMBA_AVAILABLE = _numba is not None


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only with numba installed
    @_numba.njit(cache=True, fastmath=False)
    def _accum_sheets(ext, taps, offs, step, out):
        """Tap accumulation over 2-D sheets (rows x filtered axis).

        Replays the reference per-element sequence: taps ascending,
        zero taps skipped, ``acc + tap * ext`` per contribution.
        ``fastmath=False`` keeps IEEE semantics (no reassociation),
        which is what makes the compiled path bitwise-equal.
        """
        rows, n_out = out.shape
        n_taps = taps.shape[0]
        for r in range(rows):
            for j in range(n_out):
                acc = out[r, j]
                base = j * step
                for k in range(n_taps):
                    tap = taps[k]
                    if tap != 0.0:
                        acc = acc + tap * ext[r, base + offs[k]]
                out[r, j] = acc
else:
    _accum_sheets = None


class JitBackend(KernelBackend):
    """Compiled halo-extension backend (Numba JIT, NumPy fallback).

    Parameters
    ----------
    dtype:
        Working precision.  Defaults to float32 — like the FPGA HLS
        datapath, the compiled engine is modelled as a
        single-precision device — but float64 is fully supported for
        the precision-selectable datapath.
    compiled:
        ``None`` (default) auto-selects: Numba when available, the
        NumPy fallback otherwise.  ``False`` forces the fallback;
        ``True`` requires Numba and raises ``RuntimeError`` when it
        is absent (tests use the explicit values to pin a path).
    """

    name = "jit"

    def __init__(self, dtype: np.dtype = np.float32,
                 compiled: Optional[bool] = None):
        super().__init__(dtype=dtype)
        if compiled is None:
            compiled = NUMBA_AVAILABLE
        elif compiled and not NUMBA_AVAILABLE:
            raise RuntimeError(
                "JitBackend(compiled=True) requires numba, which is not "
                "available (or disabled via REPRO_NO_NUMBA)")
        self.compiled = bool(compiled)
        self._pool = ScratchPool()
        #: (n, n_taps, shift) -> halo gather indices
        self._idx_cache: Dict[Tuple[int, int, int], np.ndarray] = {}
        #: (n_taps, correlate) -> per-tap ext offsets
        self._offs_cache: Dict[Tuple[int, bool], np.ndarray] = {}

    # -- plan tables ---------------------------------------------------
    def _indices(self, n: int, n_taps: int, shift: int) -> np.ndarray:
        key = (n, n_taps, shift)
        idx = self._idx_cache.get(key)
        if idx is None:
            idx = (np.arange(n + n_taps - 1, dtype=np.intp) + shift) % n
            self._idx_cache[key] = idx
        return idx

    def _offsets(self, n_taps: int, correlate: bool) -> np.ndarray:
        key = (n_taps, correlate)
        offs = self._offs_cache.get(key)
        if offs is None:
            ks = np.arange(n_taps, dtype=np.int64)
            offs = ks if correlate else (n_taps - 1 - ks)
            self._offs_cache[key] = offs
        return offs

    # -- workhorse -----------------------------------------------------
    def _apply(self, x: np.ndarray, taps: np.ndarray, shift: int,
               correlate: bool, step: int, axis: int,
               out: Optional[np.ndarray] = None) -> np.ndarray:
        """One filter application along ``axis``.

        ``shift`` positions the halo (``center - (K-1)`` for
        convolution, ``0`` for correlation); ``step=2`` evaluates the
        even output phase only (decimated analysis).  ``out=None``
        allocates a fresh zeroed output; passing a pooled buffer
        (synthesis second operand) reuses it after re-zeroing.
        """
        ax = axis % x.ndim
        n = x.shape[ax]
        n_taps = len(taps)
        n_out = (n + 1) // 2 if step == 2 else n
        idx = self._indices(n, n_taps, shift)
        offs = self._offsets(n_taps, correlate)
        if self.compiled:  # pragma: no cover - needs numba
            return self._apply_compiled(x, taps, idx, offs, step, ax,
                                        n_out, out)
        ext_shape = list(x.shape)
        ext_shape[ax] = len(idx)
        ext = self._pool.take(("ext", tuple(ext_shape)), tuple(ext_shape),
                              self.dtype)
        np.take(x, idx, axis=ax, out=ext)
        out_shape = list(x.shape)
        out_shape[ax] = n_out
        if out is None:
            out = np.zeros(out_shape, dtype=self.dtype)
        else:
            out.fill(0.0)
        tmp = self._pool.take(("tmp", tuple(out_shape)), tuple(out_shape),
                              self.dtype)
        sl = [slice(None)] * ext.ndim
        for k, tap in enumerate(taps):
            if tap != 0.0:
                o = int(offs[k])
                sl[ax] = slice(o, o + step * (n_out - 1) + 1, step)
                np.multiply(ext[tuple(sl)], tap, out=tmp)
                np.add(out, tmp, out=out)
        return out

    def _apply_compiled(self, x, taps, idx, offs, step, ax, n_out,
                        out):  # pragma: no cover - needs numba
        xm = np.moveaxis(x, ax, -1)
        rows = int(np.prod(xm.shape[:-1], dtype=np.int64))
        n_ext = len(idx)
        xc = self._pool.take(("xc", xm.shape), xm.shape, self.dtype)
        np.copyto(xc, xm)
        ext = self._pool.take(("ext2", rows, n_ext), (rows, n_ext),
                              self.dtype)
        np.take(xc.reshape(rows, xm.shape[-1]), idx, axis=1, out=ext)
        if out is None:
            out_m = np.zeros(xm.shape[:-1] + (n_out,), dtype=self.dtype)
        else:
            out_m = np.moveaxis(out, ax, -1)
            if not out_m.flags.c_contiguous:
                raise ValueError("pooled accumulator must be pooled in "
                                 "moved-axis layout")
            out_m.fill(0.0)
        _accum_sheets(ext, taps, offs, step, out_m.reshape(rows, n_out))
        return np.moveaxis(out_m, -1, ax)

    def _acc_buffer(self, like: np.ndarray, axis: int) -> np.ndarray:
        """Pooled accumulator for the second operand of a dual
        synthesis sum, pre-shaped so the compiled path sees a
        contiguous moved-axis layout."""
        ax = axis % like.ndim
        if self.compiled:  # pragma: no cover - needs numba
            moved = np.moveaxis(like, ax, -1)
            buf = self._pool.take(("acc", moved.shape), moved.shape,
                                  self.dtype)
            return np.moveaxis(buf, -1, ax)
        return self._pool.take(("acc", like.shape), like.shape, self.dtype)

    def _upsampled(self, x: np.ndarray, axis: int,
                   slot: str) -> np.ndarray:
        """Pooled zero-stuffed copy of ``x`` (phase 0) along ``axis``."""
        ax = axis % x.ndim
        shape = list(x.shape)
        shape[ax] *= 2
        up = self._pool.take(("up", slot, tuple(shape)), tuple(shape),
                             self.dtype)
        up.fill(0.0)
        sl = [slice(None)] * x.ndim
        sl[ax] = slice(0, None, 2)
        up[tuple(sl)] = x
        return up

    # -- level 1 (undecimated, centered) -------------------------------
    def analysis_u(self, x, h0, c0, h1, c1, axis):
        x = self._x(x)
        t0, t1 = self._f(h0), self._f(h1)
        lo = self._apply(x, t0, c0 - (len(t0) - 1), False, 1, axis)
        hi = self._apply(x, t1, c1 - (len(t1) - 1), False, 1, axis)
        return lo, hi

    def synthesis_u(self, u0, u1, g0, c0, g1, c1, axis):
        u0, u1 = self._x(u0), self._x(u1)
        t0, t1 = self._f(g0), self._f(g1)
        out = self._apply(u0, t0, c0 - (len(t0) - 1), False, 1, axis)
        acc = self._apply(u1, t1, c1 - (len(t1) - 1), False, 1, axis,
                          out=self._acc_buffer(u1, axis))
        np.add(out, acc, out=out)
        return out

    # -- levels >= 2 (decimated, causal) --------------------------------
    def analysis_d(self, x, h0, h1, axis):
        x = self._x(x)
        t0, t1 = self._f(h0), self._f(h1)
        lo = self._apply(x, t0, -(len(t0) - 1), False, 2, axis)
        hi = self._apply(x, t1, -(len(t1) - 1), False, 2, axis)
        return lo, hi

    def synthesis_d(self, lo, hi, h0, h1, axis):
        up_lo = self._upsampled(self._x(lo), axis, "lo")
        up_hi = self._upsampled(self._x(hi), axis, "hi")
        t0, t1 = self._f(h0), self._f(h1)
        out = self._apply(up_lo, t0, 0, True, 1, axis)
        acc = self._apply(up_hi, t1, 0, True, 1, axis,
                          out=self._acc_buffer(up_hi, axis))
        np.add(out, acc, out=out)
        return out


__all__ = ["JitBackend", "NUMBA_AVAILABLE"]
