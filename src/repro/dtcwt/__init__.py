"""Wavelet substrate: DT-CWT, DWT and the filter banks they use.

Public entry points:

* :func:`repro.dtcwt.forward` / :func:`repro.dtcwt.inverse` — one-shot
  2-D DT-CWT.
* :class:`repro.dtcwt.Dtcwt2D` — reusable transform object (choose
  levels, banks, backend).
* :class:`repro.dtcwt.Dwt2D` — classic real DWT baseline.
* :func:`repro.dtcwt.dtcwt_banks` — filter construction (see
  :mod:`repro.dtcwt.coeffs` for the design methods).
"""

from .backend import DEFAULT_BACKEND, KernelBackend, NumpyBackend, ScratchPool
from .jit_backend import NUMBA_AVAILABLE, JitBackend
from .coeffs import (
    BiorthogonalBank,
    DtcwtBanks,
    QshiftBank,
    biorthogonal_bank,
    dtcwt_banks,
    orthonormal_dwt_filter,
    qshift_bank,
)
from .dwt import Dwt2D, DwtPyramid, subband_mosaic
from .filter_analysis import (
    BankCharacterization,
    characterize,
    frequency_response,
    stopband_attenuation_db,
    vanishing_moments,
)
from .transform1d import (
    Dtcwt1D,
    Dtcwt1dPyramid,
    analytic_quality,
    equivalent_complex_wavelet,
)
from .transform2d import (
    ORIENTATIONS,
    Dtcwt2D,
    DtcwtPyramid,
    DtcwtPyramidStack,
    c2q,
    forward,
    inverse,
    q2c,
)

__all__ = [
    "DEFAULT_BACKEND",
    "KernelBackend",
    "NumpyBackend",
    "ScratchPool",
    "JitBackend",
    "NUMBA_AVAILABLE",
    "BiorthogonalBank",
    "DtcwtBanks",
    "QshiftBank",
    "biorthogonal_bank",
    "dtcwt_banks",
    "orthonormal_dwt_filter",
    "qshift_bank",
    "Dwt2D",
    "DwtPyramid",
    "subband_mosaic",
    "BankCharacterization",
    "characterize",
    "frequency_response",
    "stopband_attenuation_db",
    "vanishing_moments",
    "Dtcwt1D",
    "Dtcwt1dPyramid",
    "analytic_quality",
    "equivalent_complex_wavelet",
    "ORIENTATIONS",
    "Dtcwt2D",
    "DtcwtPyramid",
    "DtcwtPyramidStack",
    "c2q",
    "q2c",
    "forward",
    "inverse",
]
