"""1-D Dual-Tree Complex Wavelet Transform.

The 2-D transform in :mod:`repro.dtcwt.transform2d` is what the fusion
system uses, but the 1-D transform is where the DT-CWT's defining
property — *approximately analytic* complex wavelets — is easiest to
state, test and demonstrate:

* tree A and tree B form the real and imaginary parts of a complex
  coefficient ``z = a + j b``;
* the equivalent complex wavelet has (nearly) one-sided spectrum, so
  ``|z|`` is (nearly) shift invariant and the phase of ``z`` encodes
  sub-sample feature position.

Structure mirrors the 2-D transform: an odd biorthogonal bank filters
level 1 undecimated (its two polyphases are the two trees), and the
even q-shift banks continue each tree decimated.  Circular extension,
perfect reconstruction by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import TransformError
from .backend import DEFAULT_BACKEND, KernelBackend
from .coeffs import DtcwtBanks, dtcwt_banks


@dataclass
class Dtcwt1dPyramid:
    """Result of a forward 1-D DT-CWT.

    ``highpasses[l]`` is a complex array of length ``N / 2^{l+1}`` —
    wait, of length ``N / 2^{l}`` at level ``l`` (1-based); ``lowpass``
    holds the two trees' final low-pass, shape ``(2, N / 2^L)``.
    """

    lowpass: np.ndarray
    highpasses: Tuple[np.ndarray, ...]
    original_length: int
    levels: int


class Dtcwt1D:
    """Forward/inverse 1-D DT-CWT (circular, perfect reconstruction)."""

    def __init__(self, levels: int = 3, banks: Optional[DtcwtBanks] = None,
                 backend: Optional[KernelBackend] = None):
        if levels < 1:
            raise TransformError(f"levels must be >= 1, got {levels}")
        self.levels = levels
        self.banks = banks if banks is not None else dtcwt_banks()
        self.backend = backend if backend is not None else DEFAULT_BACKEND

    # ------------------------------------------------------------------
    def forward(self, signal: np.ndarray) -> Dtcwt1dPyramid:
        x = np.asarray(signal, dtype=self.backend.dtype)
        if x.ndim != 1:
            raise TransformError(f"expected a 1-D signal, got shape {x.shape}")
        n = len(x)
        if n % (2 ** self.levels):
            raise TransformError(
                f"signal length {n} must divide 2^levels = {2 ** self.levels}"
            )
        be = self.backend
        bank = self.banks.level1

        # level 1: undecimated; polyphases are the trees
        lo_u, hi_u = be.analysis_u(x, bank.h0, bank.c_h0,
                                   bank.h1, bank.c_h1, axis=0)
        low_trees = np.stack([lo_u[0::2], lo_u[1::2]])     # (2, n/2)
        hi_trees = np.stack([hi_u[0::2], hi_u[1::2]])
        highpasses: List[np.ndarray] = [
            (hi_trees[0] + 1j * hi_trees[1]) / np.sqrt(2.0)
        ]

        qs = self.banks.qshift
        h0 = (qs.h0b, qs.h0a)   # even tree delayed, odd tree advanced
        h1 = (qs.h1b, qs.h1a)
        for _ in range(2, self.levels + 1):
            new_low = []
            new_hi = []
            for tree in (0, 1):
                lo, hi = be.analysis_d(low_trees[tree], h0[tree], h1[tree],
                                       axis=0)
                new_low.append(lo)
                new_hi.append(hi)
            low_trees = np.stack(new_low)
            highpasses.append((new_hi[0] + 1j * new_hi[1]) / np.sqrt(2.0))

        return Dtcwt1dPyramid(
            lowpass=low_trees,
            highpasses=tuple(highpasses),
            original_length=n,
            levels=self.levels,
        )

    # ------------------------------------------------------------------
    def inverse(self, pyramid: Dtcwt1dPyramid) -> np.ndarray:
        if pyramid.levels != self.levels:
            raise TransformError(
                f"pyramid has {pyramid.levels} levels, transform expects "
                f"{self.levels}"
            )
        be = self.backend
        qs = self.banks.qshift
        h0 = (qs.h0b, qs.h0a)
        h1 = (qs.h1b, qs.h1a)

        low_trees = pyramid.lowpass.astype(be.dtype, copy=True)
        for level in range(self.levels, 1, -1):
            band = pyramid.highpasses[level - 1] * np.sqrt(2.0)
            hi_trees = (band.real.astype(be.dtype),
                        band.imag.astype(be.dtype))
            low_trees = np.stack([
                be.synthesis_d(low_trees[tree], hi_trees[tree],
                               h0[tree], h1[tree], axis=0)
                for tree in (0, 1)
            ])

        band = pyramid.highpasses[0] * np.sqrt(2.0)
        n = pyramid.original_length
        lo_u = np.empty(n, dtype=be.dtype)
        hi_u = np.empty(n, dtype=be.dtype)
        lo_u[0::2] = low_trees[0]
        lo_u[1::2] = low_trees[1]
        hi_u[0::2] = band.real
        hi_u[1::2] = band.imag

        bank = self.banks.level1
        rec = be.synthesis_u(lo_u, hi_u, bank.g0, bank.c_g0,
                             bank.g1, bank.c_g1, axis=0)
        return rec / 2.0


def equivalent_complex_wavelet(level: int = 4, length: int = 512,
                               banks: Optional[DtcwtBanks] = None
                               ) -> np.ndarray:
    """The level-``level`` complex wavelet ``psi = psi_a + j psi_b``.

    Built by pushing a unit coefficient through each tree's inverse
    path: tree A's wavelet is the reconstruction of a real unit
    coefficient, tree B's of an imaginary one.
    """
    transform = Dtcwt1D(levels=level, banks=banks)
    template = transform.forward(np.zeros(length))

    def impulse_response(value: complex) -> np.ndarray:
        highpasses = []
        for i, band in enumerate(template.highpasses):
            fresh = np.zeros_like(band)
            if i == level - 1:
                fresh[len(fresh) // 2] = value
            highpasses.append(fresh)
        pyramid = Dtcwt1dPyramid(
            lowpass=np.zeros_like(template.lowpass),
            highpasses=tuple(highpasses),
            original_length=length,
            levels=level,
        )
        return transform.inverse(pyramid)

    psi_a = impulse_response(1.0 + 0.0j)   # tree A (real) path
    psi_b = impulse_response(0.0 + 1.0j)   # tree B (imaginary) path
    return psi_a + 1j * psi_b


def analytic_quality(level: int = 4, length: int = 512,
                     banks: Optional[DtcwtBanks] = None) -> float:
    """Spectral one-sidedness of the equivalent complex wavelet.

    Returns the energy fraction of the wavelet's spectrum on the
    negative-frequency half-axis: 0 means perfectly analytic; a real
    (single-tree DWT) wavelet scores 0.5.  The q-shift design keeps
    this small — the property behind the DT-CWT's shift invariance.
    """
    psi = equivalent_complex_wavelet(level, length, banks)
    spectrum = np.fft.fft(psi)
    energy = np.abs(spectrum) ** 2
    # fft bins [1, N/2) are positive frequencies, (N/2, N) negative
    half = len(energy) // 2
    negative = float(np.sum(energy[half + 1:]))
    total = float(np.sum(energy[1:]))  # ignore DC (vanishing moment)
    return negative / total if total > 0 else 0.0
