"""Classic separable 2-D Discrete Wavelet Transform (the paper's Fig. 1).

This is the real-valued, critically-sampled transform the paper
introduces before motivating the DT-CWT: each level splits the current
low-low band into four sub-bands (LL, LH, HL, HH), and the recursion on
LL halves the frame size each time — the workload-shrinking property
that drives the paper's FPGA-vs-NEON crossover.

The implementation uses an orthonormal even-length filter (constructed
in :mod:`repro.dtcwt.coeffs`) and circular extension, so perfect
reconstruction is exact by operator transposition.  It also serves as
the transform inside the DWT fusion baseline and as the reference point
for the shift-invariance comparison (DT-CWT is nearly shift invariant,
the DWT is not).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import TransformError
from .backend import DEFAULT_BACKEND, KernelBackend
from .coeffs import orthonormal_dwt_filter
from .util import as_float_image, crop_to, pad_to_multiple


@dataclass
class DwtPyramid:
    """Result of a forward 2-D DWT.

    ``details[l]`` holds the level ``l+1`` sub-bands as an array of shape
    ``(3, H/2^{l+1}, W/2^{l+1})`` ordered ``(LH, HL, HH)``, where the
    band name gives (vertical, horizontal) frequency content following
    the paper's Fig. 1 convention.
    """

    lowpass: np.ndarray
    details: Tuple[np.ndarray, ...]
    original_shape: Tuple[int, int]
    padded_shape: Tuple[int, int]
    levels: int

    def copy(self) -> "DwtPyramid":
        return DwtPyramid(
            lowpass=self.lowpass.copy(),
            details=tuple(d.copy() for d in self.details),
            original_shape=self.original_shape,
            padded_shape=self.padded_shape,
            levels=self.levels,
        )


class Dwt2D:
    """Forward/inverse orthonormal 2-D DWT with a pluggable backend."""

    def __init__(self, levels: int = 3, filter_length: int = 8,
                 backend: Optional[KernelBackend] = None):
        if levels < 1:
            raise TransformError(f"levels must be >= 1, got {levels}")
        self.levels = levels
        self.h0 = orthonormal_dwt_filter(filter_length)
        n = np.arange(filter_length)
        self.h1 = ((-1.0) ** n) * self.h0[::-1]
        self.backend = backend if backend is not None else DEFAULT_BACKEND

    def forward(self, image: np.ndarray) -> DwtPyramid:
        be = self.backend
        img = as_float_image(image, dtype=be.dtype)
        img, original_shape = pad_to_multiple(img, 2 ** self.levels)
        padded_shape = img.shape

        low = img
        details: List[np.ndarray] = []
        for _ in range(self.levels):
            lo_v, hi_v = be.analysis_d(low, self.h0, self.h1, axis=0)
            new_low, hl = be.analysis_d(lo_v, self.h0, self.h1, axis=1)
            lh, hh = be.analysis_d(hi_v, self.h0, self.h1, axis=1)
            details.append(np.stack([lh, hl, hh]))
            low = new_low
        return DwtPyramid(
            lowpass=low,
            details=tuple(details),
            original_shape=original_shape,
            padded_shape=padded_shape,
            levels=self.levels,
        )

    def inverse(self, pyramid: DwtPyramid) -> np.ndarray:
        if pyramid.levels != self.levels:
            raise TransformError(
                f"pyramid has {pyramid.levels} levels, transform expects {self.levels}"
            )
        be = self.backend
        low = pyramid.lowpass.astype(be.dtype, copy=True)
        for level in range(self.levels, 0, -1):
            lh, hl, hh = pyramid.details[level - 1]
            lo_v = be.synthesis_d(low, hl, self.h0, self.h1, axis=1)
            hi_v = be.synthesis_d(lh, hh, self.h0, self.h1, axis=1)
            low = be.synthesis_d(lo_v, hi_v, self.h0, self.h1, axis=0)
        return crop_to(low, pyramid.original_shape)


def subband_mosaic(pyramid: DwtPyramid) -> np.ndarray:
    """Lay the sub-bands out as the classic Fig. 1 mosaic image.

    LL of the deepest level sits top-left; each level's LH goes below it,
    HL to the right and HH diagonal, recursively — the textbook DWT
    visualisation the paper reproduces as Fig. 1.
    """
    rows, cols = pyramid.padded_shape
    canvas = np.zeros((rows, cols), dtype=pyramid.lowpass.dtype)
    canvas[: pyramid.lowpass.shape[0], : pyramid.lowpass.shape[1]] = pyramid.lowpass
    for level in range(pyramid.levels, 0, -1):
        lh, hl, hh = pyramid.details[level - 1]
        band_rows, band_cols = lh.shape
        canvas[band_rows: 2 * band_rows, :band_cols] = lh
        canvas[:band_rows, band_cols: 2 * band_cols] = hl
        canvas[band_rows: 2 * band_rows, band_cols: 2 * band_cols] = hh
    return canvas
