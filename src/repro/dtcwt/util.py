"""Low-level signal helpers for the wavelet substrate.

All transforms in :mod:`repro.dtcwt` use **periodic (circular) extension**.
Circular convolution makes perfect reconstruction a matter of linear
algebra: the synthesis operator is the exact transpose of the analysis
operator, so an orthonormal filter bank reconstructs to machine precision
with no boundary bookkeeping.  The price is wrap-around at frame borders,
which is acceptable for the small frames the paper evaluates (see
DESIGN.md, "Key design decisions").
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import TransformError


def as_float_image(image: np.ndarray, dtype: np.dtype = np.float64) -> np.ndarray:
    """Validate and convert a 2-D image to a floating point array."""
    arr = np.asarray(image)
    if arr.ndim != 2:
        raise TransformError(f"expected a 2-D image, got shape {arr.shape}")
    if arr.size == 0:
        raise TransformError("cannot transform an empty image")
    return arr.astype(dtype, copy=False)


def as_float_stack(frames: np.ndarray, dtype: np.dtype = np.float64
                   ) -> np.ndarray:
    """Validate and convert a frame stack ``(N, H, W)`` to float.

    Accepts anything :func:`numpy.stack` would turn into a 3-D array
    (a list of same-shape 2-D frames included).  The batch transforms
    process all ``N`` frames in single NumPy calls, so the stack must
    be rectangular.
    """
    arr = np.asarray(frames)
    if arr.ndim != 3:
        raise TransformError(
            f"expected a frame stack of shape (N, H, W), got shape "
            f"{arr.shape}"
        )
    if arr.shape[0] == 0 or arr.size == 0:
        raise TransformError("cannot transform an empty frame stack")
    return arr.astype(dtype, copy=False)


def cconv(x: np.ndarray, taps: np.ndarray, center: int, axis: int = 0) -> np.ndarray:
    """Centered circular convolution along ``axis``.

    Computes ``out[n] = sum_k taps[k] * x[(n + center - k) mod N]`` so a
    filter symmetric about ``center`` is exactly zero phase.

    Parameters
    ----------
    x:
        Input array (any number of dimensions).
    taps:
        1-D filter taps.
    center:
        Index of the tap treated as the filter origin.
    axis:
        Axis of ``x`` along which to filter.
    """
    taps = np.asarray(taps, dtype=x.dtype if x.dtype.kind == "f" else np.float64)
    out = np.zeros_like(x, dtype=np.result_type(x, taps))
    for k, tap in enumerate(taps):
        if tap != 0.0:
            out += tap * np.roll(x, k - center, axis=axis)
    return out


def cconv_causal(x: np.ndarray, taps: np.ndarray, axis: int = 0) -> np.ndarray:
    """Causal circular convolution: ``out[n] = sum_k taps[k] x[(n-k) mod N]``."""
    return cconv(x, taps, center=0, axis=axis)


def ccorr_causal(x: np.ndarray, taps: np.ndarray, axis: int = 0) -> np.ndarray:
    """Causal circular correlation: ``out[n] = sum_k taps[k] x[(n+k) mod N]``.

    This is the exact adjoint (transpose) of :func:`cconv_causal` with the
    same taps, which is what makes transpose-based synthesis exact.
    """
    taps = np.asarray(taps, dtype=x.dtype if x.dtype.kind == "f" else np.float64)
    out = np.zeros_like(x, dtype=np.result_type(x, taps))
    for k, tap in enumerate(taps):
        if tap != 0.0:
            out += tap * np.roll(x, -k, axis=axis)
    return out


def downsample2(x: np.ndarray, phase: int, axis: int = 0) -> np.ndarray:
    """Keep every second sample along ``axis`` starting at ``phase`` (0 or 1)."""
    if phase not in (0, 1):
        raise TransformError(f"downsample phase must be 0 or 1, got {phase}")
    slicer = [slice(None)] * x.ndim
    slicer[axis] = slice(phase, None, 2)
    return x[tuple(slicer)]


def upsample2(x: np.ndarray, phase: int, axis: int = 0) -> np.ndarray:
    """Insert zeros between samples along ``axis``; adjoint of :func:`downsample2`."""
    if phase not in (0, 1):
        raise TransformError(f"upsample phase must be 0 or 1, got {phase}")
    shape = list(x.shape)
    shape[axis] *= 2
    out = np.zeros(shape, dtype=x.dtype)
    slicer = [slice(None)] * x.ndim
    slicer[axis] = slice(phase, None, 2)
    out[tuple(slicer)] = x
    return out


def pad_to_multiple(
    image: np.ndarray, multiple: int
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Edge-replicate pad so the two trailing dimensions divide ``multiple``.

    Shape-polymorphic: a single image ``(H, W)`` or any stack
    ``(..., H, W)`` — every leading frame is padded identically, which
    is what keeps batched transforms bitwise-equal to per-frame ones.
    Returns the padded array and the original ``(rows, cols)`` so the
    caller can crop after an inverse transform.  The paper's odd 35x35
    sweep point is handled this way by the functional transform path
    (the analytic timing model keeps using the true size; see DESIGN.md).
    """
    rows, cols = image.shape[-2:]
    pad_r = (-rows) % multiple
    pad_c = (-cols) % multiple
    if pad_r == 0 and pad_c == 0:
        return image, (rows, cols)
    pad = ((0, 0),) * (image.ndim - 2) + ((0, pad_r), (0, pad_c))
    padded = np.pad(image, pad, mode="edge")
    return padded, (rows, cols)


def crop_to(image: np.ndarray, shape: Tuple[int, int]) -> np.ndarray:
    """Crop the trailing two axes back to ``shape`` (inverse of
    :func:`pad_to_multiple`); leading (batch) axes pass through."""
    rows, cols = shape
    return image[..., :rows, :cols]


def group_delay(taps: np.ndarray, omegas: np.ndarray) -> np.ndarray:
    """Group delay (in samples) of an FIR filter at angular frequencies.

    Uses the exact identity tau(w) = Re( H'(w) / H(w) ) where
    ``H(w) = sum_n h[n] e^{-jwn}`` and ``H'`` is the derivative filter
    ``n * h[n]``.  Frequencies where ``|H|`` is tiny return NaN.
    """
    taps = np.asarray(taps, dtype=np.float64)
    n = np.arange(len(taps))
    expo = np.exp(-1j * np.outer(omegas, n))
    h_resp = expo @ taps
    dh_resp = expo @ (n * taps)
    with np.errstate(divide="ignore", invalid="ignore"):
        tau = np.real(dh_resp / h_resp)
    tau[np.abs(h_resp) < 1e-9] = np.nan
    return tau


def is_orthonormal_filter(taps: np.ndarray, tol: float = 1e-10) -> bool:
    """Check the even-shift orthonormality condition sum h[n]h[n+2k] = delta_k."""
    taps = np.asarray(taps, dtype=np.float64)
    length = len(taps)
    for lag in range(0, length, 2):
        acc = float(np.dot(taps[: length - lag], taps[lag:]))
        target = 1.0 if lag == 0 else 0.0
        if abs(acc - target) > tol:
            return False
    return True
