"""Wavelet filter banks, constructed from first principles.

The paper's fusion algorithm uses Kingsbury's Dual-Tree Complex Wavelet
Transform.  Rather than copying coefficient tables, this module *derives*
every filter from its defining polynomial construction:

* **Level-1 biorthogonal banks** (odd length) come from factorizing the
  maximally-flat Daubechies half-band product polynomial
  ``P(y) = sum_k C(p-1+k, k) y^k`` with ``y = (2 - z - z^{-1})/4``:
  the analysis low-pass takes the complex root quads, the synthesis
  low-pass the real root pairs (the classic CDF construction: ``p = 2``
  yields the LeGall 5/3 pair, ``p = 4`` the CDF/JPEG2000 9/7 pair).
  High-pass filters follow the modulation rules ``h1[n] = (-1)^n g0[n]``
  and ``g1[n] = (-1)^{n+1} h0[n]``, which make the undecimated
  two-channel bank satisfy ``H0 G0 + H1 G1 = 2`` exactly.

* **Q-shift banks** (even length, levels >= 2) are designed with the
  common-factor method (Selesnick): ``H_a(z) = F(z) D(z)`` and
  ``H_b(z) = F(z) z^{-K} D(z^{-1})`` share the factor ``F`` while ``D`` is
  a Thiran polynomial whose allpass ratio ``z^{-K} D(z^{-1})/D(z)``
  approximates a half-sample delay.  The symmetric autocorrelation of
  ``F`` is solved from the half-band (orthonormality) constraints as a
  linear system and spectrally factorized, so both trees are orthonormal
  to machine precision and their group delays differ by almost exactly
  0.5 samples — the q-shift property the DT-CWT requires.

Every bank self-checks its defining identities at construction time, so a
mis-derivation fails fast rather than silently degrading reconstruction.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, TransformError
from .util import group_delay, is_orthonormal_filter

_SQRT2 = math.sqrt(2.0)


# ---------------------------------------------------------------------------
# Half-band product polynomial machinery
# ---------------------------------------------------------------------------

def halfband_remainder_coeffs(p: int) -> np.ndarray:
    """Coefficients of ``R(y) = sum_{k=0}^{p-1} C(p-1+k, k) y^k`` (ascending).

    ``R`` is the remainder of the degree-``p`` maximally-flat half-band
    product filter ``P(y) = (1-y)^p R(y)`` with ``P(y) + P(1-y) = 1``
    (Daubechies' construction).
    """
    if p < 1:
        raise ConfigurationError(f"half-band order p must be >= 1, got {p}")
    return np.array(
        [math.comb(p - 1 + k, k) for k in range(p)], dtype=np.float64
    )


def _z_roots_of_y_root(y_root: complex) -> Tuple[complex, complex]:
    """Map a root of the ``y``-polynomial to its ``z``-domain pair.

    With ``y = (2 - z - z^{-1}) / 4`` a root ``y0`` corresponds to the two
    roots of ``z^2 - (2 - 4 y0) z + 1 = 0``; their product is 1, so they
    form a reciprocal pair.
    """
    b = 2.0 - 4.0 * y_root
    disc = np.sqrt(b * b - 4.0 + 0j)
    z1 = (b + disc) / 2.0
    z2 = (b - disc) / 2.0
    return z1, z2


def _remainder_z_roots(p: int) -> List[complex]:
    """All ``z``-domain roots contributed by the remainder ``R(y)``."""
    coeffs = halfband_remainder_coeffs(p)
    if len(coeffs) == 1:  # R(y) == 1, no roots
        return []
    y_roots = np.roots(coeffs[::-1])  # np.roots wants descending order
    z_roots: List[complex] = []
    for y0 in y_roots:
        z_roots.extend(_z_roots_of_y_root(complex(y0)))
    return z_roots


def _poly_from_roots(roots: Sequence[complex]) -> np.ndarray:
    """Real polynomial coefficients from a conjugate-closed root set."""
    poly = np.atleast_1d(np.poly(np.asarray(roots))) if len(roots) else np.array([1.0])
    imag_mag = float(np.max(np.abs(poly.imag))) if np.iscomplexobj(poly) else 0.0
    if imag_mag > 1e-7 * max(1.0, float(np.max(np.abs(poly.real)))):
        raise TransformError(
            f"root set is not conjugate-closed (residual imag {imag_mag:.2e})"
        )
    return np.real(poly)


def _filter_from_roots(roots: Sequence[complex], vanishing_moments: int) -> np.ndarray:
    """Build a low-pass filter with given extra roots and zeros at z = -1.

    The result is normalized to DC gain sqrt(2) (``sum(h) == sqrt(2)``),
    the convention used throughout this package.
    """
    all_roots = list(roots) + [-1.0] * vanishing_moments
    taps = _poly_from_roots(all_roots)
    return taps * (_SQRT2 / float(np.sum(taps)))


# ---------------------------------------------------------------------------
# Level-1 biorthogonal banks (odd-length filters)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BiorthogonalBank:
    """An odd-length biorthogonal two-channel bank for DT-CWT level 1.

    Filters are stored with explicit integer centers so that centered
    circular convolution with them is zero phase.  ``h*`` are analysis
    filters, ``g*`` synthesis filters; ``0`` low-pass, ``1`` high-pass.

    The defining identity for the undecimated (all-polyphase) level-1
    usage is ``H0(w)G0(w) + H1(w)G1(w) = 2`` for all ``w``; it is checked
    by :meth:`validate` at construction.
    """

    name: str
    h0: np.ndarray
    g0: np.ndarray
    h1: np.ndarray = field(init=False)
    g1: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if len(self.h0) % 2 == 0 or len(self.g0) % 2 == 0:
            raise ConfigurationError("level-1 filters must have odd length")
        n_g = np.arange(len(self.g0))
        n_h = np.arange(len(self.h0))
        object.__setattr__(self, "h1", ((-1.0) ** n_g) * self.g0)
        object.__setattr__(self, "g1", ((-1.0) ** (n_h + 1)) * self.h0)
        self.validate()

    @property
    def c_h0(self) -> int:
        return len(self.h0) // 2

    @property
    def c_g0(self) -> int:
        return len(self.g0) // 2

    @property
    def c_h1(self) -> int:
        return len(self.h1) // 2

    @property
    def c_g1(self) -> int:
        return len(self.g1) // 2

    def centered_response(self, taps: np.ndarray, center: int,
                          omegas: np.ndarray) -> np.ndarray:
        """Frequency response of a filter treated as centered at ``center``."""
        n = np.arange(len(taps)) - center
        return np.exp(-1j * np.outer(omegas, n)) @ taps

    def validate(self, tol: float = 1e-9) -> None:
        """Assert the undecimated PR identity ``H0 G0 + H1 G1 == 2``."""
        omegas = np.linspace(0.0, np.pi, 257)
        total = (
            self.centered_response(self.h0, self.c_h0, omegas)
            * self.centered_response(self.g0, self.c_g0, omegas)
            + self.centered_response(self.h1, self.c_h1, omegas)
            * self.centered_response(self.g1, self.c_g1, omegas)
        )
        err = float(np.max(np.abs(total - 2.0)))
        if err > tol:
            raise TransformError(
                f"bank {self.name!r} violates H0*G0 + H1*G1 = 2 (max err {err:.2e})"
            )


def _biorthogonal_from_halfband(p: int, name: str, swap: bool = False) -> BiorthogonalBank:
    """CDF-style factorization: complex quads -> analysis, real pairs -> synthesis."""
    z_roots = _remainder_z_roots(p)
    real_roots = [r.real for r in z_roots if abs(r.imag) < 1e-9]
    complex_roots = [r for r in z_roots if abs(r.imag) >= 1e-9]
    h0 = _filter_from_roots(complex_roots, vanishing_moments=p)
    g0 = _filter_from_roots(real_roots, vanishing_moments=p)
    if swap:
        h0, g0 = g0, h0
    return BiorthogonalBank(name=name, h0=h0, g0=g0)


@lru_cache(maxsize=None)
def biorthogonal_bank(name: str = "cdf97") -> BiorthogonalBank:
    """Return a named level-1 biorthogonal bank.

    ``"cdf97"``  — 9/7-tap CDF pair (JPEG2000 irreversible), from ``p = 4``.
    ``"legall53"`` — 5/3-tap LeGall pair, from ``p = 2``.
    """
    if name == "cdf97":
        return _biorthogonal_from_halfband(4, "cdf97")
    if name == "legall53":
        # swap so the 5-tap filter is the analysis side, matching the
        # conventional LeGall 5/3 orientation
        return _biorthogonal_from_halfband(2, "legall53", swap=True)
    raise ConfigurationError(
        f"unknown biorthogonal bank {name!r}; expected 'cdf97' or 'legall53'"
    )


# ---------------------------------------------------------------------------
# Q-shift orthonormal banks (even-length filters, levels >= 2)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class QshiftBank:
    """An even-length orthonormal bank pair for DT-CWT levels >= 2.

    Tree A uses ``(h0a, h1a)``; tree B uses ``(h0b, h1b)``.  The two
    low-pass filters share a common factor and have identical magnitude
    responses; their passband group delays differ by (almost exactly)
    half a sample — the q-shift property.  Both trees are independently
    orthonormal, which is what perfect reconstruction relies on.
    """

    name: str
    h0a: np.ndarray
    h0b: np.ndarray
    delay_a: float  # mean passband group delay of h0a, in samples
    delay_b: float

    @property
    def length(self) -> int:
        return len(self.h0a)

    @property
    def h1a(self) -> np.ndarray:
        return _modulated_highpass(self.h0a)

    @property
    def h1b(self) -> np.ndarray:
        return _modulated_highpass(self.h0b)

    @property
    def delay_difference(self) -> float:
        return self.delay_b - self.delay_a

    def validate(self, tol: float = 1e-6) -> None:
        for label, taps in (("h0a", self.h0a), ("h0b", self.h0b)):
            if not is_orthonormal_filter(taps, tol=tol):
                raise TransformError(
                    f"q-shift bank {self.name!r}: {label} is not orthonormal"
                )
        if abs(abs(self.delay_difference) - 0.5) > 0.1:
            raise TransformError(
                f"q-shift bank {self.name!r}: tree delay difference "
                f"{self.delay_difference:.3f} is not ~0.5 samples"
            )


def _modulated_highpass(h0: np.ndarray) -> np.ndarray:
    """Orthonormal high-pass companion: ``h1[n] = (-1)^n h0[L-1-n]``."""
    length = len(h0)
    n = np.arange(length)
    return ((-1.0) ** n) * h0[::-1]


def thiran_halfsample_factor(order: int) -> np.ndarray:
    """Thiran polynomial ``D(z)`` whose allpass ratio delays by half a sample.

    The allpass ``z^{-K} D(z^{-1}) / D(z)`` built from the returned
    coefficients has maximally-flat group delay of 0.5 samples at DC;
    this is the fractional-delay ingredient of the common-factor q-shift
    design.
    """
    if order < 1:
        raise ConfigurationError(f"Thiran order must be >= 1, got {order}")
    tau = 0.5
    taps = np.zeros(order + 1)
    taps[0] = 1.0
    for k in range(1, order + 1):
        prod = 1.0
        for n in range(order + 1):
            prod *= (tau - order + n) / (tau - order + k + n)
        taps[k] = ((-1.0) ** k) * math.comb(order, k) * prod
    return taps


def _autocorrelation(taps: np.ndarray) -> np.ndarray:
    return np.convolve(taps, taps[::-1])


def _solve_factor_autocorrelation(
    g_known: np.ndarray, q: int, length: int
) -> np.ndarray:
    """Solve the half-band constraints for the symmetric part ``W = Q Q~``.

    ``S(z) = G_known(z) W(z)`` must satisfy ``S[0] = 1`` and ``S[2k] = 0``
    — the orthonormality condition of the final filter.  ``W`` is
    symmetric with ``q`` free coefficients; the system is solved in the
    least-squares sense (it is square for the supported configurations).
    """
    center = length - 1
    columns = np.zeros((2 * length - 1, q))
    for i in range(q):
        w_vec = np.zeros(2 * q - 1)
        w_vec[q - 1 + i] = 1.0
        if i:
            w_vec[q - 1 - i] = 1.0
        columns[:, i] = np.convolve(g_known, w_vec)
    rows = [columns[center]]
    rhs = [1.0]
    for lag in range(2, length, 2):
        rows.append(columns[center + lag])
        rhs.append(0.0)
    solution, *_ = np.linalg.lstsq(np.array(rows), np.array(rhs), rcond=None)
    w_full = np.zeros(2 * q - 1)
    w_full[q - 1:] = solution
    w_full[: q - 1] = solution[1:][::-1]
    return w_full


def _spectral_factor_candidates(w_full: np.ndarray) -> List[np.ndarray]:
    """Enumerate real spectral factors ``Q`` of a symmetric ``W = Q Q~``.

    Roots of ``W`` come in reciprocal (and conjugate) families; choosing
    the inside or outside member of each family yields every real factor.
    Near-unit-circle roots are double zeros — one copy goes to ``Q``.
    """
    roots = np.roots(w_full[::-1])
    outside = [z for z in roots if abs(z) > 1.0 + 1e-7]
    on_circle = [z for z in roots if abs(abs(z) - 1.0) <= 1e-7]

    groups: List[Tuple[List[complex], List[complex]]] = []
    used = [False] * len(outside)
    for i, root in enumerate(outside):
        if used[i]:
            continue
        used[i] = True
        if abs(root.imag) < 1e-8:
            groups.append(([root.real], [1.0 / root.real]))
        else:
            for j in range(i + 1, len(outside)):
                if not used[j] and abs(outside[j] - root.conjugate()) < 1e-5:
                    used[j] = True
                    break
            groups.append(
                ([root, root.conjugate()], [1.0 / root, 1.0 / root.conjugate()])
            )

    # keep one of each double unit-circle zero (conjugate-closed)
    fixed: List[complex] = []
    upper = sorted(
        (z for z in on_circle if z.imag >= -1e-12), key=lambda z: np.angle(z)
    )
    i = 0
    while i < len(upper):
        fixed.append(upper[i])
        if abs(upper[i].imag) > 1e-8:
            fixed.append(upper[i].conjugate())
        i += 2

    candidates: List[np.ndarray] = []
    combos = itertools.product(*[range(2) for _ in groups]) if groups else [()]
    for combo in combos:
        chosen = list(fixed)
        for group, pick in zip(groups, combo):
            chosen.extend(group[pick])
        poly = np.atleast_1d(np.poly(np.asarray(chosen)))
        if np.iscomplexobj(poly) and np.max(np.abs(poly.imag)) > 1e-6:
            continue
        candidates.append(np.real(poly))
    return candidates


#: (vanishing moments J, Thiran order K) tried for each filter length;
#: the first configuration yielding a valid nonnegative autocorrelation wins.
_QSHIFT_CONFIGS = {
    10: ((2, 3), (3, 2), (1, 4)),
    12: ((2, 4), (3, 3), (4, 2)),
    14: ((2, 5), (4, 3), (3, 4)),
    16: ((2, 6), (4, 4), (3, 5)),
    18: ((2, 7), (4, 5), (3, 6)),
}


@lru_cache(maxsize=None)
def qshift_bank(length: int = 14) -> QshiftBank:
    """Design an orthonormal q-shift bank of even ``length`` taps.

    Uses the common-factor method: ``H_a = F D``, ``H_b = F z^{-K} D~``
    with a Thiran half-sample-delay factor ``D``, a binomial factor for
    vanishing moments and a spectrally-factorized remainder solved from
    the half-band constraints.  Among the valid spectral factors the one
    with flattest passband group delay is kept.

    ``length = 14`` (the package default) matches the popular qshift_b
    size; ``length = 12`` mirrors the paper's HLS engine configuration.
    """
    if length not in _QSHIFT_CONFIGS:
        raise ConfigurationError(
            f"q-shift length must be one of {sorted(_QSHIFT_CONFIGS)}, got {length}"
        )

    omegas = np.linspace(0.05 * np.pi, 0.45 * np.pi, 64)
    last_error: str = "no configuration attempted"
    for moments, thiran_order in _QSHIFT_CONFIGS[length]:
        q = length - moments - thiran_order
        if q < 1:
            continue
        thiran = thiran_halfsample_factor(thiran_order)
        binom = np.array(
            [math.comb(moments, i) for i in range(moments + 1)], dtype=np.float64
        )
        g_known = np.convolve(_autocorrelation(binom), _autocorrelation(thiran))
        w_full = _solve_factor_autocorrelation(g_known, q, length)

        check = np.linspace(0.0, np.pi, 600)
        lags = np.arange(-(q - 1), q)
        w_response = np.cos(np.outer(check, lags)) @ w_full
        if float(w_response.min()) < -1e-9:
            last_error = (
                f"(J={moments}, K={thiran_order}): autocorrelation not nonnegative"
            )
            continue

        best: Tuple[float, QshiftBank] = (np.inf, None)  # type: ignore[assignment]
        for q_taps in _spectral_factor_candidates(w_full):
            common = np.convolve(binom, q_taps)
            h0a = np.convolve(common, thiran)
            h0a = h0a * (_SQRT2 / float(np.sum(h0a)))
            h0b = np.convolve(common, thiran[::-1])
            h0b = h0b * (_SQRT2 / float(np.sum(h0b)))
            if not (is_orthonormal_filter(h0a, 1e-6)
                    and is_orthonormal_filter(h0b, 1e-6)):
                continue
            delay_a = float(np.nanmean(group_delay(h0a, omegas)))
            delay_b = float(np.nanmean(group_delay(h0b, omegas)))
            ripple = float(np.nanstd(group_delay(h0a, omegas)))
            score = abs(abs(delay_b - delay_a) - 0.5) + 0.3 * ripple
            if score < best[0]:
                bank = QshiftBank(
                    name=f"qshift{length}",
                    h0a=h0a,
                    h0b=h0b,
                    delay_a=delay_a,
                    delay_b=delay_b,
                )
                best = (score, bank)
        if best[1] is not None:
            best[1].validate()
            return best[1]
        last_error = f"(J={moments}, K={thiran_order}): no orthonormal factor"

    raise TransformError(
        f"q-shift design failed for length {length}: {last_error}"
    )


# ---------------------------------------------------------------------------
# Combined DT-CWT bank selection
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DtcwtBanks:
    """The (level-1, level>=2) filter pair used by a DT-CWT instance."""

    level1: BiorthogonalBank
    qshift: QshiftBank

    @property
    def max_taps(self) -> int:
        """Longest filter in the set — sizes the HLS coefficient registers."""
        lengths = [len(self.level1.h0), len(self.level1.g0),
                   len(self.level1.h1), len(self.level1.g1),
                   self.qshift.length]
        return max(lengths)


@lru_cache(maxsize=None)
def dtcwt_banks(level1: str = "cdf97", qshift_length: int = 14) -> DtcwtBanks:
    """Construct (and cache) the default filter set for the transform."""
    return DtcwtBanks(
        level1=biorthogonal_bank(level1),
        qshift=qshift_bank(qshift_length),
    )


@lru_cache(maxsize=None)
def orthonormal_dwt_filter(length: int = 8) -> np.ndarray:
    """Minimum-delay orthonormal low-pass for the plain-DWT baseline.

    This is a Daubechies-style spectral factor (all retained roots inside
    the unit circle), adequate for the Fig. 1 DWT decomposition and the
    DWT fusion baseline.
    """
    if length < 2 or length % 2:
        raise ConfigurationError(f"DWT filter length must be even, got {length}")
    p = length // 2
    z_roots = _remainder_z_roots(p)
    inside = [r for r in z_roots if abs(r) <= 1.0]
    taps = _filter_from_roots(inside, vanishing_moments=p)
    if not is_orthonormal_filter(taps, tol=1e-7):
        raise TransformError("DWT filter construction lost orthonormality")
    return taps
