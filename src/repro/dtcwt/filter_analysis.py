"""Filter-bank analysis utilities.

Quantitative characterization of the designed wavelets — the numbers a
filter designer reads off before trusting a bank:

* frequency/phase responses on a grid,
* vanishing moments (zeros at z = -1 for low-pass, at z = 1 for
  high-pass),
* stop-band attenuation,
* the q-shift delay and analyticity measures.

Everything here is model-free analysis of the tap vectors, usable on
any filter, and is what ``examples``/benchmarks print when documenting
the construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .coeffs import BiorthogonalBank, DtcwtBanks, QshiftBank, dtcwt_banks
from .util import group_delay


def frequency_response(taps: np.ndarray, n_points: int = 512
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """(omega, H(omega)) of an FIR filter on [0, pi]."""
    taps = np.asarray(taps, dtype=np.float64)
    omegas = np.linspace(0.0, np.pi, n_points)
    response = np.exp(-1j * np.outer(omegas, np.arange(len(taps)))) @ taps
    return omegas, response


def vanishing_moments(taps: np.ndarray, at: float = -1.0,
                      tol: float = 1e-7) -> int:
    """Multiplicity of the zero at ``z = at`` (±1 for wavelet filters).

    Counted by repeated synthetic division: while the filter evaluates
    to ~0 at ``z = at``, divide out the root.
    """
    poly = np.asarray(taps, dtype=np.float64).copy()
    count = 0
    scale = float(np.max(np.abs(poly))) or 1.0
    while len(poly) > 1:
        value = float(np.polyval(poly[::-1], at))
        if abs(value) > tol * scale * len(poly):
            break
        # divide by (z - at) in ascending-power representation
        poly = np.polydiv(poly[::-1], np.array([1.0, -at]))[0][::-1]
        count += 1
    return count


def stopband_attenuation_db(taps: np.ndarray, edge: float = 0.8 * np.pi
                            ) -> float:
    """Worst-case stop-band rejection of a low-pass filter, in dB.

    The default edge suits half-band wavelet filters (cutoff pi/2,
    transition band reaching ~0.8 pi).
    """
    omegas, response = frequency_response(taps)
    passband_peak = float(np.max(np.abs(response)))
    stop = np.abs(response[omegas >= edge])
    worst = float(np.max(stop)) if stop.size else 0.0
    if worst <= 0.0:
        return float("inf")
    return 20.0 * np.log10(passband_peak / worst)


@dataclass(frozen=True)
class BankCharacterization:
    """Summary table of one DT-CWT filter set."""

    level1_name: str
    level1_moments_analysis: int
    level1_moments_synthesis: int
    qshift_name: str
    qshift_length: int
    qshift_moments: int
    qshift_delay_difference: float
    qshift_delay_ripple: float
    qshift_stopband_db: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "level1_moments_analysis": self.level1_moments_analysis,
            "level1_moments_synthesis": self.level1_moments_synthesis,
            "qshift_length": self.qshift_length,
            "qshift_moments": self.qshift_moments,
            "qshift_delay_difference": self.qshift_delay_difference,
            "qshift_delay_ripple": self.qshift_delay_ripple,
            "qshift_stopband_db": self.qshift_stopband_db,
        }


def characterize(banks: Optional[DtcwtBanks] = None) -> BankCharacterization:
    """Full characterization of a bank set (defaults to the package's)."""
    banks = banks if banks is not None else dtcwt_banks()
    level1 = banks.level1
    qshift = banks.qshift

    omegas = np.linspace(0.05 * np.pi, 0.45 * np.pi, 64)
    delays = group_delay(qshift.h0a, omegas)

    return BankCharacterization(
        level1_name=level1.name,
        level1_moments_analysis=vanishing_moments(level1.h1, at=1.0),
        level1_moments_synthesis=vanishing_moments(level1.g1, at=1.0),
        qshift_name=qshift.name,
        qshift_length=qshift.length,
        qshift_moments=vanishing_moments(qshift.h0a, at=-1.0),
        qshift_delay_difference=qshift.delay_difference,
        qshift_delay_ripple=float(np.nanstd(delays)),
        qshift_stopband_db=stopband_attenuation_db(qshift.h0a),
    )


def magnitude_match_error(bank: QshiftBank, n_points: int = 512) -> float:
    """Max |  |H_a| - |H_b|  | over frequency — 0 for a valid q-shift pair."""
    _, resp_a = frequency_response(bank.h0a, n_points)
    _, resp_b = frequency_response(bank.h0b, n_points)
    return float(np.max(np.abs(np.abs(resp_a) - np.abs(resp_b))))


def pr_identity_error(bank: BiorthogonalBank, n_points: int = 512) -> float:
    """Max |H0 G0 + H1 G1 - 2| over frequency (level-1 PR identity)."""
    omegas = np.linspace(0.0, np.pi, n_points)
    total = (bank.centered_response(bank.h0, bank.c_h0, omegas)
             * bank.centered_response(bank.g0, bank.c_g0, omegas)
             + bank.centered_response(bank.h1, bank.c_h1, omegas)
             * bank.centered_response(bank.g1, bank.c_g1, omegas))
    return float(np.max(np.abs(total - 2.0)))
