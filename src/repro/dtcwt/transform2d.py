"""2-D Dual-Tree Complex Wavelet Transform (forward and inverse).

Structure (following Kingsbury):

* **Level 1** filters the image with an odd-length biorthogonal bank in
  both directions *without* decimation; the four polyphase components of
  each output are the four trees (the classic one-sample-offset dual
  tree).  This is what gives the 2-D DT-CWT its 4:1 redundancy.
* **Levels >= 2** continue each of the four trees independently with the
  even-length q-shift bank (tree A/B along each axis), decimating by two.
* At every level the four trees' high-pass outputs are combined by the
  unitary ``q2c`` map into **six complex, orientation-selective
  subbands** (approximately +-15, +-45, +-75 degrees).

Perfect reconstruction holds to machine precision: levels >= 2 invert by
operator transposition (the q-shift banks are orthonormal), level 1 by
the dual-filter identity ``H0 G0 + H1 G1 = 2``, and ``q2c``/``c2q`` are
exact inverses.  All filtering is circular; inputs whose sides do not
divide ``2**levels`` are edge-padded and cropped back (see
:func:`repro.dtcwt.util.pad_to_multiple`).

Batch-first numerics
--------------------

Every step below is **shape-polymorphic over leading axes**: the
filtering primitives, polyphase splits and ``q2c``/``c2q`` maps all
operate on the trailing ``(H, W)`` axes of an arbitrarily stacked
array.  :meth:`Dtcwt2D.forward_batch` exploits that to decompose a
whole frame stack ``(N, H, W)`` with exactly the same number of NumPy
calls as one frame — the software analogue of streaming many lines
through one hardware datapath invocation — and
:meth:`Dtcwt2D.inverse_batch` reconstructs a stack the same way.
Because the per-element arithmetic (operation order, dtypes,
accumulation sequence) is identical either way, batched results are
bitwise-equal to per-frame results; the tests pin that invariant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import TransformError
from .backend import DEFAULT_BACKEND, KernelBackend
from .coeffs import DtcwtBanks, dtcwt_banks
from .util import as_float_image, as_float_stack, crop_to, pad_to_multiple

_SQRT2 = math.sqrt(2.0)

#: Approximate orientation (degrees) of each of the six subbands.
ORIENTATIONS = (15, 45, 75, 105, 135, 165)


class _StackIndexError(TransformError, IndexError):
    """Out-of-range frame index on a pyramid stack.

    Doubly derived so both contracts hold: library callers catching
    :class:`TransformError` see it, and Python's sequence-iteration
    protocol (``for pyramid in stack``), which probes ``__getitem__``
    until :class:`IndexError`, terminates cleanly.
    """


def q2c(y_aa: np.ndarray, y_ab: np.ndarray,
        y_ba: np.ndarray, y_bb: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Unitary quad-to-complex map combining the four trees' outputs.

    Returns the two complex subbands (positive / negative orientation)
    for one (vertical, horizontal) high-pass combination.
    """
    z_pos = ((y_aa - y_bb) + 1j * (y_ab + y_ba)) / _SQRT2
    z_neg = ((y_aa + y_bb) + 1j * (y_ba - y_ab)) / _SQRT2
    return z_pos, z_neg


def c2q(z_pos: np.ndarray, z_neg: np.ndarray
        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Exact inverse of :func:`q2c` (returns ``y_aa, y_ab, y_ba, y_bb``)."""
    y_aa = (z_pos.real + z_neg.real) / _SQRT2
    y_bb = (z_neg.real - z_pos.real) / _SQRT2
    y_ab = (z_pos.imag - z_neg.imag) / _SQRT2
    y_ba = (z_pos.imag + z_neg.imag) / _SQRT2
    return y_aa, y_ab, y_ba, y_bb


@dataclass
class DtcwtPyramid:
    """Result of a forward 2-D DT-CWT.

    Attributes
    ----------
    lowpass:
        Array of shape ``(2, 2, H/2^L, W/2^L)`` holding the final
        low-pass image of each (vertical-tree, horizontal-tree) pair.
    highpasses:
        One complex array per level, shape ``(6, H/2^l, W/2^l)``,
        subbands ordered as :data:`ORIENTATIONS`.
    original_shape:
        Image shape before internal padding; the inverse crops back.
    padded_shape:
        Shape actually transformed.
    levels:
        Number of decomposition levels.
    """

    lowpass: np.ndarray
    highpasses: Tuple[np.ndarray, ...]
    original_shape: Tuple[int, int]
    padded_shape: Tuple[int, int]
    levels: int

    def copy(self) -> "DtcwtPyramid":
        return DtcwtPyramid(
            lowpass=self.lowpass.copy(),
            highpasses=tuple(h.copy() for h in self.highpasses),
            original_shape=self.original_shape,
            padded_shape=self.padded_shape,
            levels=self.levels,
        )

    @property
    def total_coefficients(self) -> int:
        return self.lowpass.size + sum(h.size for h in self.highpasses)


@dataclass
class DtcwtPyramidStack:
    """Forward DT-CWTs of ``N`` same-shape frames as stacked arrays.

    The frame axis sits *after* the tree/band axes — exactly where the
    batch transform produces it — so per-level arrays are single
    contiguous operands for vectorized fusion rules:

    * ``lowpass``: ``(2, 2, N, H/2^L, W/2^L)``;
    * ``highpasses[l]``: complex ``(6, N, H/2^l, W/2^l)``.

    ``stack[i]`` gives frame ``i`` as an ordinary
    :class:`DtcwtPyramid` of *views* into the stacked arrays (no copy);
    :meth:`slice` carves out a contiguous frame range as another stack,
    which is how :meth:`repro.core.fusion.ImageFusion.fuse_batch`
    splits one doubled transform back into its two sources.
    """

    lowpass: np.ndarray
    highpasses: Tuple[np.ndarray, ...]
    original_shape: Tuple[int, int]
    padded_shape: Tuple[int, int]
    levels: int

    @property
    def count(self) -> int:
        """Number of stacked frames."""
        return self.lowpass.shape[2]

    def __len__(self) -> int:
        return self.count

    def __getitem__(self, index: int) -> DtcwtPyramid:
        """Frame ``index`` as a view-backed :class:`DtcwtPyramid`."""
        if not -self.count <= index < self.count:
            raise _StackIndexError(
                f"frame index {index} out of range for a stack of "
                f"{self.count}"
            )
        return DtcwtPyramid(
            lowpass=self.lowpass[:, :, index],
            highpasses=tuple(h[:, index] for h in self.highpasses),
            original_shape=self.original_shape,
            padded_shape=self.padded_shape,
            levels=self.levels,
        )

    def slice(self, start: int, stop: int) -> "DtcwtPyramidStack":
        """Frames ``[start, stop)`` as a view-backed sub-stack."""
        return DtcwtPyramidStack(
            lowpass=self.lowpass[:, :, start:stop],
            highpasses=tuple(h[:, start:stop] for h in self.highpasses),
            original_shape=self.original_shape,
            padded_shape=self.padded_shape,
            levels=self.levels,
        )

    def copy(self) -> "DtcwtPyramidStack":
        return DtcwtPyramidStack(
            lowpass=self.lowpass.copy(),
            highpasses=tuple(h.copy() for h in self.highpasses),
            original_shape=self.original_shape,
            padded_shape=self.padded_shape,
            levels=self.levels,
        )

    @classmethod
    def from_pyramids(cls, pyramids: Sequence[DtcwtPyramid]
                      ) -> "DtcwtPyramidStack":
        """Stack per-frame pyramids (all levels/shapes must agree)."""
        if not pyramids:
            raise TransformError("cannot stack zero pyramids")
        first = pyramids[0]
        for pyr in pyramids[1:]:
            if (pyr.levels != first.levels
                    or pyr.padded_shape != first.padded_shape
                    or pyr.original_shape != first.original_shape):
                raise TransformError(
                    "pyramids disagree on levels/shape and cannot be "
                    "stacked"
                )
        return cls(
            lowpass=np.stack([p.lowpass for p in pyramids], axis=2),
            highpasses=tuple(
                np.stack([p.highpasses[l] for p in pyramids], axis=1)
                for l in range(first.levels)
            ),
            original_shape=first.original_shape,
            padded_shape=first.padded_shape,
            levels=first.levels,
        )

    @property
    def total_coefficients(self) -> int:
        return self.lowpass.size + sum(h.size for h in self.highpasses)


class Dtcwt2D:
    """Forward/inverse 2-D DT-CWT with a pluggable compute backend.

    Parameters
    ----------
    levels:
        Decomposition depth (the paper uses 3 for its 88x72 pipeline).
    banks:
        Filter banks; defaults to CDF 9/7 level-1 + 14-tap q-shift.
    backend:
        Kernel backend; defaults to the numpy reference.
    """

    def __init__(self, levels: int = 3,
                 banks: Optional[DtcwtBanks] = None,
                 backend: Optional[KernelBackend] = None):
        if levels < 1:
            raise TransformError(f"levels must be >= 1, got {levels}")
        self.levels = levels
        self.banks = banks if banks is not None else dtcwt_banks()
        self.backend = backend if backend is not None else DEFAULT_BACKEND

    # ------------------------------------------------------------------
    # forward
    # ------------------------------------------------------------------
    def forward(self, image: np.ndarray) -> DtcwtPyramid:
        """Decompose one 2-D ``image`` into a :class:`DtcwtPyramid`."""
        img = as_float_image(image, dtype=self.backend.dtype)
        lowpass, highpasses, original, padded = self._forward_arrays(img)
        return DtcwtPyramid(
            lowpass=lowpass,
            highpasses=highpasses,
            original_shape=original,
            padded_shape=padded,
            levels=self.levels,
        )

    def forward_batch(self, frames: np.ndarray) -> DtcwtPyramidStack:
        """Decompose a frame stack ``(N, H, W)`` in one pass.

        All ``N`` transforms execute inside the same NumPy (or
        hardware-backend) primitive calls, amortizing per-call
        overhead; each frame's coefficients are bitwise-identical to
        what :meth:`forward` produces for it alone.
        """
        stack = as_float_stack(frames, dtype=self.backend.dtype)
        lowpass, highpasses, original, padded = self._forward_arrays(stack)
        return DtcwtPyramidStack(
            lowpass=lowpass,
            highpasses=highpasses,
            original_shape=original,
            padded_shape=padded,
            levels=self.levels,
        )

    def _forward_arrays(self, img: np.ndarray):
        """Shared decomposition over the trailing ``(H, W)`` axes."""
        be = self.backend
        img, original_shape = pad_to_multiple(img, 2 ** self.levels)
        padded_shape = img.shape[-2:]

        bank = self.banks.level1
        # Level 1: undecimated separable filtering, then polyphase split.
        lo_col, hi_col = be.analysis_u(img, bank.h0, bank.c_h0,
                                       bank.h1, bank.c_h1, axis=-2)
        u_ll, u_lh = be.analysis_u(lo_col, bank.h0, bank.c_h0,
                                   bank.h1, bank.c_h1, axis=-1)
        u_hl, u_hh = be.analysis_u(hi_col, bank.h0, bank.c_h0,
                                   bank.h1, bank.c_h1, axis=-1)

        low_trees = _polyphase_split(u_ll)
        highpasses: List[np.ndarray] = [
            _bands_from_tree_quads(
                _polyphase_split(u_lh),
                _polyphase_split(u_hl),
                _polyphase_split(u_hh),
            )
        ]

        qs = self.banks.qshift
        # Tree assignment: the odd-polyphase tree (index 1) sits one input
        # sample *later* than the even tree, so it must use the lower-delay
        # filter (h0a); the even tree takes the half-sample-delayed h0b.
        # This keeps the two trees' output grids offset by exactly half the
        # output sampling period at every level, which is what makes the
        # complex subband magnitudes shift invariant.
        h0 = (qs.h0b, qs.h0a)
        h1 = (qs.h1b, qs.h1a)
        for _ in range(2, self.levels + 1):
            half_shape = low_trees.shape[:-2] + (low_trees.shape[-2] // 2,
                                                 low_trees.shape[-1] // 2)
            lh_trees = np.empty(half_shape, dtype=low_trees.dtype)
            hl_trees = np.empty_like(lh_trees)
            hh_trees = np.empty_like(lh_trees)
            new_low = np.empty_like(lh_trees)
            for tv in (0, 1):
                for th in (0, 1):
                    x = low_trees[tv, th]
                    lo_v, hi_v = be.analysis_d(x, h0[tv], h1[tv], axis=-2)
                    ll, lh = be.analysis_d(lo_v, h0[th], h1[th], axis=-1)
                    hl, hh = be.analysis_d(hi_v, h0[th], h1[th], axis=-1)
                    new_low[tv, th] = ll
                    lh_trees[tv, th] = lh
                    hl_trees[tv, th] = hl
                    hh_trees[tv, th] = hh
            low_trees = new_low
            highpasses.append(_bands_from_tree_quads(lh_trees, hl_trees, hh_trees))

        return low_trees, tuple(highpasses), original_shape, padded_shape

    # ------------------------------------------------------------------
    # inverse
    # ------------------------------------------------------------------
    def inverse(self, pyramid: DtcwtPyramid) -> np.ndarray:
        """Reconstruct the image from a (possibly modified) pyramid."""
        if pyramid.levels != self.levels:
            raise TransformError(
                f"pyramid has {pyramid.levels} levels, transform expects {self.levels}"
            )
        return self._inverse_arrays(pyramid.lowpass, pyramid.highpasses,
                                    pyramid.original_shape)

    def inverse_batch(self, stack: DtcwtPyramidStack) -> np.ndarray:
        """Reconstruct every frame of a pyramid stack; returns
        ``(N, H, W)``, each frame bitwise-equal to :meth:`inverse` of
        its per-frame pyramid."""
        if stack.levels != self.levels:
            raise TransformError(
                f"pyramid stack has {stack.levels} levels, transform "
                f"expects {self.levels}"
            )
        return self._inverse_arrays(stack.lowpass, stack.highpasses,
                                    stack.original_shape)

    def _inverse_arrays(self, lowpass: np.ndarray,
                        highpasses: Tuple[np.ndarray, ...],
                        original_shape: Tuple[int, int]) -> np.ndarray:
        """Shared reconstruction over the trailing ``(H, W)`` axes."""
        be = self.backend
        qs = self.banks.qshift
        # mirror the tree assignment used by forward()
        h0 = (qs.h0b, qs.h0a)
        h1 = (qs.h1b, qs.h1a)

        low_trees = lowpass.astype(be.dtype, copy=True)
        for level in range(self.levels, 1, -1):
            lh_trees, hl_trees, hh_trees = _tree_quads_from_bands(
                highpasses[level - 1], be.dtype
            )
            rows = low_trees.shape[-2] * 2
            cols = low_trees.shape[-1] * 2
            new_low = np.empty(low_trees.shape[:-2] + (rows, cols),
                               dtype=be.dtype)
            for tv in (0, 1):
                for th in (0, 1):
                    lo_v = be.synthesis_d(low_trees[tv, th],
                                          lh_trees[tv, th], h0[th], h1[th],
                                          axis=-1)
                    hi_v = be.synthesis_d(hl_trees[tv, th],
                                          hh_trees[tv, th], h0[th], h1[th],
                                          axis=-1)
                    new_low[tv, th] = be.synthesis_d(lo_v, hi_v,
                                                     h0[tv], h1[tv], axis=-2)
            low_trees = new_low

        lh_trees, hl_trees, hh_trees = _tree_quads_from_bands(
            highpasses[0], be.dtype
        )
        u_ll = _polyphase_merge(low_trees)
        u_lh = _polyphase_merge(lh_trees)
        u_hl = _polyphase_merge(hl_trees)
        u_hh = _polyphase_merge(hh_trees)

        bank = self.banks.level1
        lo_col = be.synthesis_u(u_ll, u_lh, bank.g0, bank.c_g0,
                                bank.g1, bank.c_g1, axis=-1)
        hi_col = be.synthesis_u(u_hl, u_hh, bank.g0, bank.c_g0,
                                bank.g1, bank.c_g1, axis=-1)
        image = be.synthesis_u(lo_col, hi_col, bank.g0, bank.c_g0,
                               bank.g1, bank.c_g1, axis=-2) / 4.0
        return crop_to(image, original_shape)


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------

def _polyphase_split(u: np.ndarray) -> np.ndarray:
    """Split an undecimated level-1 output into its four tree polyphases.

    Shape-polymorphic over leading axes: input ``(..., H, W)`` returns
    ``(2, 2, ..., H/2, W/2)`` indexed ``[vertical_tree,
    horizontal_tree]`` (tree A = even samples, tree B = odd samples).
    """
    rows, cols = u.shape[-2:]
    if rows % 2 or cols % 2:
        raise TransformError(f"level-1 output must have even sides, got {u.shape}")
    out = np.empty((2, 2) + u.shape[:-2] + (rows // 2, cols // 2),
                   dtype=u.dtype)
    for tv in (0, 1):
        for th in (0, 1):
            out[tv, th] = u[..., tv::2, th::2]
    return out


def _polyphase_merge(trees: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_polyphase_split`."""
    half_rows, half_cols = trees.shape[-2:]
    out = np.empty(trees.shape[2:-2] + (half_rows * 2, half_cols * 2),
                   dtype=trees.dtype)
    for tv in (0, 1):
        for th in (0, 1):
            out[..., tv::2, th::2] = trees[tv, th]
    return out


def _bands_from_tree_quads(lh: np.ndarray, hl: np.ndarray,
                           hh: np.ndarray) -> np.ndarray:
    """Stack the six complex subbands from per-tree high-pass quads.

    Input arrays have shape ``(2, 2, ..., H, W)``; the output is
    complex with shape ``(6, ..., H, W)`` ordered as
    :data:`ORIENTATIONS`.
    """
    bands = np.empty((6,) + lh.shape[2:], dtype=np.complex128)
    # horizontal-ish edges come from the vertical high-pass (hl), etc.
    lh_pos, lh_neg = q2c(lh[0, 0], lh[0, 1], lh[1, 0], lh[1, 1])
    hl_pos, hl_neg = q2c(hl[0, 0], hl[0, 1], hl[1, 0], hl[1, 1])
    hh_pos, hh_neg = q2c(hh[0, 0], hh[0, 1], hh[1, 0], hh[1, 1])
    bands[0] = lh_pos   # ~ +15 deg
    bands[1] = hh_pos   # ~ +45 deg
    bands[2] = hl_pos   # ~ +75 deg
    bands[3] = hl_neg   # ~ 105 deg
    bands[4] = hh_neg   # ~ 135 deg
    bands[5] = lh_neg   # ~ 165 deg
    return bands


def _tree_quads_from_bands(bands: np.ndarray, dtype: np.dtype
                           ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Inverse of :func:`_bands_from_tree_quads`."""
    shape = (2, 2) + bands.shape[1:]
    lh = np.empty(shape, dtype=dtype)
    hl = np.empty(shape, dtype=dtype)
    hh = np.empty(shape, dtype=dtype)
    for quad, pos, neg in ((lh, bands[0], bands[5]),
                           (hh, bands[1], bands[4]),
                           (hl, bands[2], bands[3])):
        y_aa, y_ab, y_ba, y_bb = c2q(pos, neg)
        quad[0, 0] = y_aa
        quad[0, 1] = y_ab
        quad[1, 0] = y_ba
        quad[1, 1] = y_bb
    return lh, hl, hh


def forward(image: np.ndarray, levels: int = 3,
            banks: Optional[DtcwtBanks] = None,
            backend: Optional[KernelBackend] = None) -> DtcwtPyramid:
    """Convenience wrapper: one-shot forward DT-CWT."""
    return Dtcwt2D(levels=levels, banks=banks, backend=backend).forward(image)


def inverse(pyramid: DtcwtPyramid,
            banks: Optional[DtcwtBanks] = None,
            backend: Optional[KernelBackend] = None) -> np.ndarray:
    """Convenience wrapper: one-shot inverse DT-CWT."""
    return Dtcwt2D(levels=pyramid.levels, banks=banks,
                   backend=backend).inverse(pyramid)
