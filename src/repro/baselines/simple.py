"""Trivial fusion baselines: averaging, max-pixel and PCA weighting.

These are the lower bounds every fusion paper compares against; the
paper's reference [1] surveys them.  They operate directly in the pixel
domain (no transform), so they are also the fastest — useful context
for the energy benchmarks.
"""

from __future__ import annotations

import numpy as np

from ..errors import FusionError


def _pair(image_a: np.ndarray, image_b: np.ndarray):
    a = np.asarray(image_a, dtype=np.float64)
    b = np.asarray(image_b, dtype=np.float64)
    if a.shape != b.shape:
        raise FusionError(f"shape mismatch: {a.shape} vs {b.shape}")
    return a, b


def fuse_average(image_a: np.ndarray, image_b: np.ndarray) -> np.ndarray:
    """Plain mean of the two frames."""
    a, b = _pair(image_a, image_b)
    return (a + b) / 2.0


def fuse_max(image_a: np.ndarray, image_b: np.ndarray) -> np.ndarray:
    """Per-pixel maximum (keeps hot thermal blobs and bright detail)."""
    a, b = _pair(image_a, image_b)
    return np.maximum(a, b)


def fuse_pca(image_a: np.ndarray, image_b: np.ndarray) -> np.ndarray:
    """PCA-weighted blend: weights from the dominant eigenvector of the
    two images' covariance — the classic 'PCA fusion' baseline."""
    a, b = _pair(image_a, image_b)
    stacked = np.stack([a.ravel(), b.ravel()])
    cov = np.cov(stacked)
    eigvals, eigvecs = np.linalg.eigh(cov)
    principal = np.abs(eigvecs[:, np.argmax(eigvals)])
    total = principal.sum()
    if total <= 0:
        return fuse_average(a, b)
    w_a, w_b = principal / total
    return w_a * a + w_b * b
