"""Related-work fusion baselines the paper compares against."""

from .dwt_fusion import fuse_dwt
from .laplacian import fuse_laplacian, laplacian_pyramid, pyr_down, pyr_up, reconstruct
from .simple import fuse_average, fuse_max, fuse_pca

__all__ = [
    "fuse_dwt",
    "fuse_laplacian", "laplacian_pyramid", "pyr_down", "pyr_up", "reconstruct",
    "fuse_average", "fuse_max", "fuse_pca",
]
