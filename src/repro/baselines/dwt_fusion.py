"""Real-DWT fusion baseline.

Same rule structure as the DT-CWT fusion (max-abs details, averaged
approximation) but on the critically-sampled real DWT of
:mod:`repro.dtcwt.dwt`.  The DWT's shift variance produces the ringing
and inconsistent edge selection that motivated the move to the DT-CWT
(paper references [4][12]); the fusion-quality benchmark quantifies the
difference.
"""

from __future__ import annotations

import numpy as np

from ..dtcwt.dwt import Dwt2D
from ..errors import FusionError


def fuse_dwt(image_a: np.ndarray, image_b: np.ndarray,
             levels: int = 3, filter_length: int = 8) -> np.ndarray:
    """DWT-domain max-abs fusion of two frames."""
    a = np.asarray(image_a, dtype=np.float64)
    b = np.asarray(image_b, dtype=np.float64)
    if a.shape != b.shape:
        raise FusionError(f"shape mismatch: {a.shape} vs {b.shape}")
    transform = Dwt2D(levels=levels, filter_length=filter_length)
    pyr_a = transform.forward(a)
    pyr_b = transform.forward(b)

    fused_details = tuple(
        np.where(np.abs(da) >= np.abs(db), da, db)
        for da, db in zip(pyr_a.details, pyr_b.details)
    )
    fused = pyr_a.copy()
    fused.lowpass = (pyr_a.lowpass + pyr_b.lowpass) / 2.0
    fused.details = fused_details
    return transform.inverse(fused)
