"""Laplacian-pyramid image fusion (related-work baseline).

The paper's related work (Sims & Irvine, Song et al., Toet) fuses with
pyramidal decompositions; the Laplacian pyramid is their common core.
Implementing it lets the benchmarks compare the DT-CWT's fusion quality
against the pre-wavelet state of the art, as the paper's introduction
claims ("wavelet transform achieves better signal to noise ratios and
improved perception with no blocking artefacts").

The pyramid uses the classic 5-tap Burt-Adelson generating kernel with
edge-replicated borders; fusion selects the larger absolute Laplacian
coefficient per level and averages the coarsest Gaussian level.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import FusionError

#: Burt & Adelson generating kernel (a = 0.4).
_KERNEL = np.array([0.05, 0.25, 0.4, 0.25, 0.05])


def _filter_sep(image: np.ndarray) -> np.ndarray:
    """Separable 5-tap smoothing with edge replication."""
    padded = np.pad(image, 2, mode="edge")
    tmp = np.zeros_like(padded)
    for k, w in enumerate(_KERNEL):
        tmp += w * np.roll(padded, k - 2, axis=0)
    out = np.zeros_like(tmp)
    for k, w in enumerate(_KERNEL):
        out += w * np.roll(tmp, k - 2, axis=1)
    return out[2:-2, 2:-2]


def pyr_down(image: np.ndarray) -> np.ndarray:
    """Smooth and decimate by two (ceil sizes, like OpenCV's pyrDown)."""
    return _filter_sep(image)[::2, ::2]


def pyr_up(image: np.ndarray, shape: Tuple[int, int]) -> np.ndarray:
    """Zero-stuff, smooth (x4 gain) and crop to ``shape``."""
    rows, cols = shape
    up = np.zeros((image.shape[0] * 2, image.shape[1] * 2), dtype=image.dtype)
    up[::2, ::2] = image
    return (4.0 * _filter_sep(up))[:rows, :cols]


def laplacian_pyramid(image: np.ndarray, levels: int) -> List[np.ndarray]:
    """Laplacian pyramid: ``levels`` band-pass layers + Gaussian top."""
    if levels < 1:
        raise FusionError(f"levels must be >= 1, got {levels}")
    image = np.asarray(image, dtype=np.float64)
    pyramid: List[np.ndarray] = []
    current = image
    for _ in range(levels):
        if min(current.shape) < 4:
            break
        down = pyr_down(current)
        pyramid.append(current - pyr_up(down, current.shape))
        current = down
    pyramid.append(current)
    return pyramid


def reconstruct(pyramid: List[np.ndarray]) -> np.ndarray:
    """Invert :func:`laplacian_pyramid`."""
    current = pyramid[-1]
    for band in reversed(pyramid[:-1]):
        current = band + pyr_up(current, band.shape)
    return current


def fuse_laplacian(image_a: np.ndarray, image_b: np.ndarray,
                   levels: int = 3) -> np.ndarray:
    """Max-abs selection on Laplacian layers, averaging the top."""
    a = np.asarray(image_a, dtype=np.float64)
    b = np.asarray(image_b, dtype=np.float64)
    if a.shape != b.shape:
        raise FusionError(f"shape mismatch: {a.shape} vs {b.shape}")
    pyr_a = laplacian_pyramid(a, levels)
    pyr_b = laplacian_pyramid(b, levels)
    fused = [np.where(np.abs(la) >= np.abs(lb), la, lb)
             for la, lb in zip(pyr_a[:-1], pyr_b[:-1])]
    fused.append((pyr_a[-1] + pyr_b[-1]) / 2.0)
    return reconstruct(fused)
