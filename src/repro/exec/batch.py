"""The batch executor: micro-batched NumPy-vectorized frame execution.

The paper's engines earn their throughput by streaming many lines
through one datapath invocation; the Python port's analogue is
streaming many *frames* through one NumPy primitive call.
:class:`BatchExecutor` drains the source in micro-batches of
``batch_size`` frame pairs and hands each batch to
:meth:`~repro.exec.base.FrameProcessor.process_batch`, which a
batch-aware processor (the session's) implements from its lowered
plan's batch groups: the canonical ``visible+thermal+fuse`` core rides
stacked transforms — all forwards of the batch (both modalities!) in
one call, vectorized coefficient fusion, one stacked inverse — and any
custom stage in the plan runs per frame around the core, in schedule
order.

Everything else stays per-frame: ingest runs in frame order *before*
the batch computes (so scheduler observations, calibration and frame
indices advance exactly as under the serial loop), and finalize runs
in frame order *after* it (per-frame telemetry, monitoring, quality
metrics, reports — batching never coarsens the observability).  With a
fixed seed the results are bitwise-identical to
:class:`~repro.exec.serial.SerialExecutor`; only wall-clock improves.

Single-threaded by design: the speedup comes from amortizing Python
call overhead inside NumPy, not from concurrency, so ``batch``
composes with single-core hosts where the thread executors cannot win.
A bounded drive ingests at most ``limit`` frames — like the serial
executor, it never reads the source ahead of its last delivered frame
beyond the current micro-batch.
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Iterator, Optional

from ..errors import ConfigurationError
from .base import Executor, FrameProcessor


class BatchExecutor(Executor):
    """Drive frames through micro-batched stacked computation."""

    name = "batch"
    concurrent = False

    def __init__(self, batch_size: int = 8, workers: int = 1,
                 queue_depth: int = 1, **_ignored):
        if batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {batch_size}")
        super().__init__()
        self.batch_size = batch_size

    def run(self, processor: FrameProcessor, pairs: Iterator[Any],
            limit: Optional[int] = None) -> Iterator[Any]:
        self._claim()
        return self._drive(processor, pairs, limit)

    def _drive(self, processor: FrameProcessor, pairs: Iterator[Any],
               limit: Optional[int]) -> Iterator[Any]:
        stats = self.stats
        busy = stats.stage_busy_s
        started = time.perf_counter()
        iterator = iter(pairs)
        try:
            index = 0
            while limit is None or stats.frames < limit:
                self._ensure_open(pairs)
                want = self.batch_size
                if limit is not None:
                    want = min(want, limit - stats.frames)
                raw = list(itertools.islice(iterator, want))
                if not raw:
                    return

                t0 = time.perf_counter()
                tasks = [processor.ingest(pair, index + offset)
                         for offset, pair in enumerate(raw)]
                index += len(tasks)
                t1 = time.perf_counter()
                processor.process_batch(tasks)
                t2 = time.perf_counter()

                busy["ingest"] = busy.get("ingest", 0.0) + (t1 - t0)
                busy["batch"] = busy.get("batch", 0.0) + (t2 - t1)
                stats.queue_peak["batch"] = max(
                    stats.queue_peak.get("batch", 0), len(tasks))

                for task in tasks:
                    t3 = time.perf_counter()
                    result = processor.finalize(task)
                    busy["finalize"] = (busy.get("finalize", 0.0)
                                        + time.perf_counter() - t3)
                    stats.frames += 1
                    yield result
        finally:
            stats.wall_seconds = time.perf_counter() - started
