"""Execution-layer contracts: the stage protocol and executor interface.

The paper's system is a dataflow per fused frame — capture, two
forward DT-CWTs, coefficient fusion, inverse DT-CWT — followed by
reporting.  This module names that work once, as the
:class:`FrameProcessor` contract, so *how* it is driven (serially,
pipelined across threads, co-scheduled across engines) becomes a
swappable :class:`Executor` instead of a loop baked into the session.

Executors are **plan interpreters**: they never hard-code a stage
order.  A processor advertises, per drive, the stage names of its
lowered :class:`~repro.graph.FusionPlan` — an ordered ingest, a
*parallel wave* (:meth:`FrameProcessor.parallel_stages`, stateless
stages an executor may run concurrently), a *mid chain*
(:meth:`FrameProcessor.mid_stages`, run after the wave in dependency
order), and an ordered finalize — and executors drive those names
through :meth:`FrameProcessor.run_stage`.  The default hooks describe
the paper's canonical pipeline (``visible``/``thermal`` forwards, then
``fuse``), so a plain processor that only implements the abstract
stage methods behaves exactly as before the plan API existed.

Determinism is a design invariant, not an accident: every stage's
arithmetic is bound to the frame's *assigned* engine, never to the
thread that happens to execute it, so a pipelined or work-stealing
schedule produces bitwise-identical frames to the serial loop.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import (Any, Dict, Iterable, Iterator, List, Optional, Sequence,
                    Tuple)

from ..errors import ConfigurationError, FusionError


def ensure_source_open(pairs: Any) -> None:
    """Refuse to pull from a source closed mid-drive.

    Sources that really release resources advertise it through a
    ``closed`` attribute (see :class:`repro.session.FrameSource`);
    pulling from one would at best replay garbage and at worst block a
    capture thread forever against the bounded queues, so the drive
    fails loudly with :class:`FusionError` instead.  Plain iterators
    (no ``closed``) are unaffected.  Shared by every executor and by
    the serving layer's capture threads.
    """
    if getattr(pairs, "closed", False):
        raise FusionError(
            "frame source was closed while a stream was still "
            "being driven; close the stream (or exhaust it) "
            "before closing its source")


@dataclass
class ExecStats:
    """Wall-clock throughput of one executor drive.

    These are *measured* quantities — they live alongside, and never
    replace, the modelled time/energy the session accounts per frame.
    ``stage_busy_s`` maps stage (or worker) names to seconds spent
    executing work; occupancy is that busy time as a fraction of the
    wall interval, the direct analogue of the paper's overlapped
    transfer/compute utilisation.
    """

    executor: str = "serial"
    frames: int = 0
    wall_seconds: float = 0.0
    stage_busy_s: Dict[str, float] = field(default_factory=dict)
    queue_peak: Dict[str, int] = field(default_factory=dict)
    steals: int = 0
    worker_frames: Dict[str, int] = field(default_factory=dict)
    #: per-stage wall-time attribution measured by the processor (how
    #: long each stage ran, summed over frames and workers) — unlike
    #: ``stage_busy_s`` it is keyed by *plan stage* (or fused unit)
    #: name under every executor, so reports can attribute wall time
    #: to pipeline stages uniformly
    stage_wall_s: Dict[str, float] = field(default_factory=dict)

    @property
    def wall_fps(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.frames / self.wall_seconds

    def occupancy(self) -> Dict[str, float]:
        """Busy fraction of the wall interval, per stage/worker."""
        if self.wall_seconds <= 0:
            return {name: 0.0 for name in self.stage_busy_s}
        return {name: busy / self.wall_seconds
                for name, busy in self.stage_busy_s.items()}

    def as_dict(self) -> Dict[str, object]:
        return {
            "executor": self.executor,
            "frames": self.frames,
            "wall_seconds": self.wall_seconds,
            "wall_fps": self.wall_fps,
            "stage_busy_s": dict(self.stage_busy_s),
            "stage_occupancy": self.occupancy(),
            "queue_peak": dict(self.queue_peak),
            "steals": self.steals,
            "worker_frames": dict(self.worker_frames),
            "stage_wall_s": dict(self.stage_wall_s),
        }


class FrameProcessor(ABC):
    """The staged work of fusing one frame, independent of scheduling.

    An executor calls the stages in dataflow order for every frame:
    ``ingest`` (ordered, stateful: normalisation, rig calibration,
    engine selection), ``forward_visible`` / ``forward_thermal``
    (pure; may run concurrently, also with other frames' forwards),
    ``fuse`` (coefficient fusion + inverse transform; ordered when
    :attr:`sequential_fuse` is set), and ``finalize`` (ordered,
    stateful: monitoring, telemetry, aggregation).

    ``ctx`` arguments are opaque worker contexts from
    :meth:`make_contexts`; a context is only ever used by one thread
    at a time, so processors can keep non-thread-safe compute state
    (e.g. the FPGA driver's buffers) per context.
    """

    @property
    def sequential_fuse(self) -> bool:
        """True when the fuse stage is stateful across frames (e.g.
        temporal fusion) and must run in frame order on one thread."""
        return False

    @property
    def sequential_mid(self) -> bool:
        """True when the whole mid chain must run in frame order on a
        single ordered lane (a stateful stage sits in it).  Defaults
        to :attr:`sequential_fuse`, the pre-plan spelling."""
        return self.sequential_fuse

    def parallel_stages(self) -> Tuple[str, ...]:
        """Stage names of the parallel wave, dispatchable concurrently
        (with each other and across frames).  Empty when the mid chain
        is sequential — the ordered lane then owns all compute."""
        return () if self.sequential_mid else ("visible", "thermal")

    def mid_stages(self) -> Tuple[str, ...]:
        """Stage names run after the parallel wave, in this order."""
        return ("fuse",)

    def stage_bucket(self, name: str) -> str:
        """Stats key a stage's busy time is accounted under (the two
        canonical forwards share one ``forward`` bucket)."""
        return {"visible": "forward", "thermal": "forward"}.get(name, name)

    def run_stage(self, name: str, task: Any,
                  ctx: Optional[object] = None) -> None:
        """Execute the named stage on ``task`` — the one entry point
        executors use for every stage between ingest and finalize."""
        if name == "visible":
            self.forward_visible(task, ctx)
        elif name == "thermal":
            self.forward_thermal(task, ctx)
        elif name == "fuse":
            self.fuse(task, ctx)
        else:
            raise ConfigurationError(
                f"{type(self).__name__} does not know stage {name!r}; "
                f"plan-driven processors must override run_stage()")

    def stage_wall_snapshot(self) -> Dict[str, float]:
        """Cumulative measured per-stage wall seconds (default: the
        processor measures nothing)."""
        return {}

    def stage_wall_since(self, mark: Dict[str, float]) -> Dict[str, float]:
        """Per-stage wall seconds accumulated since ``mark`` (an
        earlier :meth:`stage_wall_snapshot`)."""
        current = self.stage_wall_snapshot()
        return {name: seconds - mark.get(name, 0.0)
                for name, seconds in current.items()
                if seconds - mark.get(name, 0.0) > 0.0}

    def make_contexts(self, n: int,
                      engines: Optional[Iterable[object]] = None
                      ) -> List[Optional[object]]:
        """``n`` opaque per-worker contexts (default: none needed).

        ``engines`` optionally names the engine instance each worker
        owns (the heterogeneous executor passes its team) so the
        processor can bind per-worker compute state to it.
        """
        return [None] * n

    def context_for(self, engine: object) -> Optional[object]:
        """One worker context bound to an *externally owned* engine.

        The serving layer leases engine instances from a shared
        :class:`repro.serve.EnginePool` and drives stages under the
        lease; this hook gives it a context whose compute state (lanes,
        backend buffers) belongs to exactly that leased instance.  The
        default delegates to :meth:`make_contexts`, so any processor
        that supports per-worker engines supports external leases too.
        """
        return self.make_contexts(1, engines=[engine])[0]

    @abstractmethod
    def ingest(self, pair: Any, index: int) -> Any:
        """Turn a raw frame pair into a task (ordered, stateful)."""

    @abstractmethod
    def forward_visible(self, task: Any, ctx: Optional[object] = None) -> None:
        """Forward DT-CWT of the visible frame."""

    @abstractmethod
    def forward_thermal(self, task: Any, ctx: Optional[object] = None) -> None:
        """Forward DT-CWT of the thermal frame."""

    @abstractmethod
    def fuse(self, task: Any, ctx: Optional[object] = None) -> None:
        """Coefficient fusion + inverse DT-CWT."""

    def process_batch(self, tasks: Sequence[Any]) -> None:
        """Compute a micro-batch of ingested tasks (forward x2, fuse).

        The batch executor's hook: a processor that can stack frames
        through one transform invocation overrides this to amortize
        per-call overhead.  The default simply drives the per-frame
        stages in frame order, so any processor is batch-drivable.
        Implementations must leave each task exactly as the per-frame
        stages would (bitwise), and must keep stateful stages
        (:attr:`sequential_mid`) in frame order — which the default
        does by driving the full per-frame chain frame-major.
        """
        names = (*self.parallel_stages(), *self.mid_stages())
        for task in tasks:
            for name in names:
                self.run_stage(name, task)

    @abstractmethod
    def finalize(self, task: Any) -> Any:
        """Account the frame and build its result (ordered, stateful)."""


class Executor(ABC):
    """One strategy for driving :class:`FrameProcessor` stages.

    ``run`` is a generator: it consumes raw pairs, routes them through
    the processor's stages, and yields results *in frame order*.
    Implementations own whatever threads/queues they need and must
    release them when the generator is closed early, when a stage
    raises, or when :meth:`close` is called.

    Executors are **one-shot**: an instance drives exactly one stream
    (its stats describe exactly that drive).  A second :meth:`run`
    raises immediately — build a fresh instance per stream, as
    :meth:`FusionSession.stream` does.
    """

    #: registry name ("serial", "pipeline", "hetero", ...)
    name: str = "executor"
    #: True when run() drives stages on worker threads (the session
    #: forbids re-entrant process() calls while a concurrent drive is
    #: mutating its ordered state from another thread)
    concurrent: bool = True

    #: seconds between stop-flag checks while blocked on a queue/wait
    TICK_S = 0.05
    #: seconds close() waits for each worker thread to join
    JOIN_TIMEOUT_S = 10.0

    def __init__(self) -> None:
        self.stats = ExecStats(executor=self.name)
        self._used = False
        self._stop = _Flag()
        self._error: Optional[BaseException] = None
        self._error_lock = threading.Lock()
        self._threads: List[threading.Thread] = []

    def _claim(self) -> None:
        """Mark the one permitted drive as taken (called by run())."""
        if self._used:
            raise ConfigurationError(
                f"{type(self).__name__} instances drive exactly one "
                f"stream; create a new executor for the next one")
        self._used = True

    def _fail(self, exc: BaseException) -> None:
        """First-wins error latch: record ``exc`` and begin shutdown.

        Worker threads call this for any exception; the consumer
        re-raises the recorded error once the drive unwinds.
        """
        with self._error_lock:
            if self._error is None:
                self._error = exc
        self._stop.set()

    def _join_all(self) -> None:
        """Stop and join every worker thread (idempotent)."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=self.JOIN_TIMEOUT_S)
        self._threads = []

    #: per-pull guard against a source closed mid-drive (see
    #: :func:`ensure_source_open`)
    _ensure_open = staticmethod(ensure_source_open)

    @abstractmethod
    def run(self, processor: FrameProcessor, pairs: Iterator[Any],
            limit: Optional[int] = None) -> Iterator[Any]:
        """Drive ``pairs`` through the stages; yield ordered results."""

    def close(self) -> None:
        """Join worker threads and release queues (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _Flag:
    """A set-once boolean shared between executor threads."""

    def __init__(self) -> None:
        self._event = threading.Event()

    def set(self) -> None:
        self._event.set()

    def __bool__(self) -> bool:
        return self._event.is_set()
