"""The serial executor: the original one-frame-at-a-time loop.

This is the behaviour :class:`repro.session.FusionSession` had before
the execution layer existed: every stage of frame ``i`` completes
before frame ``i+1`` starts, on the caller's thread.  It interprets
the processor's lowered plan in the simplest possible way — ingest,
then the parallel wave and the mid chain in schedule order, then
finalize — and is the reference every concurrent executor is tested
against, as well as the right choice for single-core hosts or when
reproducing the paper's unoverlapped baseline numbers.
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Iterator, Optional

from .base import Executor, FrameProcessor


class SerialExecutor(Executor):
    """Drive every stage inline, in frame order, on one thread."""

    name = "serial"
    concurrent = False

    def __init__(self, workers: int = 1, queue_depth: int = 1, **_ignored):
        super().__init__()

    def run(self, processor: FrameProcessor, pairs: Iterator[Any],
            limit: Optional[int] = None) -> Iterator[Any]:
        self._claim()
        return self._drive(processor, pairs, limit)

    def _drive(self, processor: FrameProcessor, pairs: Iterator[Any],
               limit: Optional[int]) -> Iterator[Any]:
        stats = self.stats
        busy = stats.stage_busy_s
        # the plan's stage lists are fixed for one drive
        compute = (*processor.parallel_stages(), *processor.mid_stages())
        started = time.perf_counter()
        iterator = iter(pairs)
        try:
            for index in itertools.count():
                self._ensure_open(pairs)
                try:
                    pair = next(iterator)
                except StopIteration:
                    return
                t0 = time.perf_counter()
                task = processor.ingest(pair, index)
                t1 = time.perf_counter()
                busy["ingest"] = busy.get("ingest", 0.0) + (t1 - t0)
                for name in compute:
                    t2 = time.perf_counter()
                    processor.run_stage(name, task)
                    bucket = processor.stage_bucket(name)
                    busy[bucket] = busy.get(bucket, 0.0) \
                        + (time.perf_counter() - t2)
                t3 = time.perf_counter()
                result = processor.finalize(task)
                busy["finalize"] = busy.get("finalize", 0.0) \
                    + (time.perf_counter() - t3)
                stats.frames += 1
                yield result
                if limit is not None and stats.frames >= limit:
                    return
        finally:
            stats.wall_seconds = time.perf_counter() - started
