"""The serial executor: the original one-frame-at-a-time loop.

This is the behaviour :class:`repro.session.FusionSession` had before
the execution layer existed, extracted verbatim: every stage of frame
``i`` completes before frame ``i+1`` starts, on the caller's thread.
It is the reference the concurrent executors are tested against, and
the right choice for single-core hosts or when reproducing the paper's
unoverlapped baseline numbers.
"""

from __future__ import annotations

import time
from typing import Any, Iterator, Optional

from .base import Executor, FrameProcessor


class SerialExecutor(Executor):
    """Drive every stage inline, in frame order, on one thread."""

    name = "serial"
    concurrent = False

    def __init__(self, workers: int = 1, queue_depth: int = 1, **_ignored):
        super().__init__()

    def run(self, processor: FrameProcessor, pairs: Iterator[Any],
            limit: Optional[int] = None) -> Iterator[Any]:
        self._claim()
        return self._drive(processor, pairs, limit)

    def _drive(self, processor: FrameProcessor, pairs: Iterator[Any],
               limit: Optional[int]) -> Iterator[Any]:
        stats = self.stats
        busy = stats.stage_busy_s
        started = time.perf_counter()
        try:
            for index, pair in enumerate(pairs):
                t0 = time.perf_counter()
                task = processor.ingest(pair, index)
                t1 = time.perf_counter()
                processor.forward_visible(task)
                processor.forward_thermal(task)
                t2 = time.perf_counter()
                processor.fuse(task)
                t3 = time.perf_counter()
                result = processor.finalize(task)
                t4 = time.perf_counter()

                busy["ingest"] = busy.get("ingest", 0.0) + (t1 - t0)
                busy["forward"] = busy.get("forward", 0.0) + (t2 - t1)
                busy["fuse"] = busy.get("fuse", 0.0) + (t3 - t2)
                busy["finalize"] = busy.get("finalize", 0.0) + (t4 - t3)
                stats.frames += 1
                yield result
                if limit is not None and stats.frames >= limit:
                    return
        finally:
            stats.wall_seconds = time.perf_counter() - started
