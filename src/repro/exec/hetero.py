"""The heterogeneous executor: CPU+FPGA co-scheduling with work stealing.

Models the headroom Nunez-Yanez et al. identify beyond single-engine
acceleration: several compute engines execute *the same kernel at the
same time*, each frame's work split across them — the visible forward
transform on one engine while the thermal forward runs on another,
with the fusion/inverse stage placed by an affinity policy (e.g. the
per-level plan of :class:`repro.core.adaptive.PerLevelScheduler`).

Every engine in the team owns a worker thread and a job deque.  The
work itself comes from the processor's lowered plan: each stage of the
*parallel wave* (canonically the two forwards) is dispatched as one
job when the frame is captured, and when the wave completes the *mid
chain* (canonically fuse+inverse, plus any custom downstream stage) is
dispatched stage by stage, each link chained off the previous one's
completion.  Jobs are *assigned* to engines deterministically at
dispatch time (round robin over the team, overridable per stage
through ``affinity``); when a worker's deque runs dry it steals from
the back of the busiest teammate's deque.  Crucially, stealing moves
only the *execution thread*, never the arithmetic: each job computes
with the engine it was assigned, through the stealer's private
context, so schedules are timing-independent and results are bitwise
reproducible — with the default homogeneous team (several instances
of the session's engine) they are bitwise identical to
:class:`~repro.exec.SerialExecutor`.

``co_schedule=True`` (used with an explicitly mixed team) additionally
attributes each stage's *modelled* time and energy to its assigned
engine, turning the executor into an executable version of the paper's
"what if both fabrics run concurrently" question.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, Iterator, List, Optional, Sequence

from ..errors import ConfigurationError
from .base import Executor, FrameProcessor

#: Default stage keys jobs are dispatched under (and ``affinity`` may
#: name) when the processor carries no explicit plan; a plan-driven
#: drive validates affinity against its own stage names instead.
STAGES = ("visible", "thermal", "fuse")


class _HeteroTask:
    """Book-keeping wrapper for one frame crossing the worker team."""

    __slots__ = ("task", "index", "_remaining", "_lock")

    def __init__(self, task: Any, index: int, forwards: int):
        self.task = task
        self.index = index
        self._remaining = forwards
        self._lock = threading.Lock()

    def forward_completed(self) -> bool:
        """True when this completion was the last outstanding forward."""
        with self._lock:
            self._remaining -= 1
            return self._remaining == 0


class _Worker:
    """One engine instance, its job deque and its executing thread."""

    def __init__(self, slot: int, engine: object, ctx: Optional[object]):
        self.slot = slot
        self.engine = engine
        self.ctx = ctx
        name = getattr(engine, "name", None) or "worker"
        self.name = f"{name}[{slot}]"
        self.jobs: deque = deque()
        self.thread: Optional[threading.Thread] = None


class HeterogeneousExecutor(Executor):
    """Co-schedule frame stages across a team of engine workers."""

    name = "hetero"

    def __init__(self, engines: Optional[Sequence[object]] = None,
                 workers: int = 2, queue_depth: int = 4,
                 co_schedule: bool = False,
                 affinity: Optional[Dict[str, str]] = None,
                 stages: Optional[Sequence[str]] = None, **_ignored):
        super().__init__()
        if queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {queue_depth}")
        if engines is None:
            engines = [None] * max(1, workers)
        if not engines:
            raise ConfigurationError(
                "HeterogeneousExecutor needs at least one engine")
        known = tuple(stages) if stages is not None else STAGES
        if affinity is not None:
            bad = set(affinity) - set(known)
            if bad:
                raise ConfigurationError(
                    f"affinity keys must be among {known}, got {sorted(bad)}")
        self.engines = list(engines)
        self.queue_depth = queue_depth
        self.co_schedule = co_schedule
        self.affinity = dict(affinity or {})
        self._work = threading.Condition()
        self._done = threading.Condition()
        self._done_tasks: Dict[int, Any] = {}
        self._expected: Optional[int] = None
        self._in_flight = threading.Semaphore(queue_depth)
        self._workers: List[_Worker] = []
        # stage topology; overwritten from the processor's plan at run()
        self._wave_set: frozenset = frozenset(STAGES[:2])
        self._mid: Sequence[str] = STAGES[2:]

    # ------------------------------------------------------------------
    def _fail(self, exc: BaseException) -> None:
        super()._fail(exc)
        with self._work:
            self._work.notify_all()
        with self._done:
            self._done.notify_all()

    # -- dispatch -------------------------------------------------------
    def _pick_worker(self, stage: str, counter: int) -> _Worker:
        """Deterministic assignment: affinity match first, else round
        robin over the team."""
        preferred = self.affinity.get(stage)
        if preferred is not None:
            matches = [w for w in self._workers
                       if getattr(w.engine, "name", None) == preferred]
            if matches:
                return matches[counter % len(matches)]
        return self._workers[counter % len(self._workers)]

    def _dispatch(self, worker: _Worker, stage: str, htask: _HeteroTask,
                  processor: FrameProcessor) -> None:
        if self.co_schedule and worker.engine is not None:
            assign = getattr(processor, "assign", None)
            if assign is not None:
                assign(htask.task, stage, worker.engine)
        with self._work:
            worker.jobs.append((stage, htask))
            depth = sum(len(w.jobs) for w in self._workers)
            peak = self.stats.queue_peak
            peak["jobs"] = max(peak.get("jobs", 0), depth)
            self._work.notify_all()

    def _take_job(self, worker: _Worker):
        """Own deque first (FIFO); then steal from the back of the
        longest teammate queue; else wait for work."""
        with self._work:
            if worker.jobs:
                return worker.jobs.popleft()
            victims = sorted((w for w in self._workers
                              if w is not worker and w.jobs),
                             key=lambda w: len(w.jobs), reverse=True)
            if victims:
                self.stats.steals += 1
                return victims[0].jobs.pop()
            self._work.wait(timeout=self.TICK_S)
            return None

    def _advance(self, htask: "_HeteroTask", stage: Optional[str],
                 processor: FrameProcessor) -> None:
        """Dispatch the mid-chain link after ``stage`` (the first link
        when ``stage`` is None, i.e. the wave just completed), or mark
        the frame done when the chain is exhausted."""
        mid = self._mid
        next_i = 0 if stage is None else mid.index(stage) + 1
        if next_i < len(mid):
            worker = self._pick_worker(mid[next_i], htask.index)
            self._dispatch(worker, mid[next_i], htask, processor)
            return
        with self._done:
            self._done_tasks[htask.index] = htask.task
            self._done.notify_all()

    # -- worker loop ----------------------------------------------------
    def _worker_loop(self, worker: _Worker,
                     processor: FrameProcessor) -> None:
        busy = self.stats.stage_busy_s
        frames = self.stats.worker_frames
        try:
            while not self._stop:
                # poll until shutdown: even after capture ends, an
                # in-flight wave stage elsewhere may still hand this
                # worker a mid-chain job
                job = self._take_job(worker)
                if job is None:
                    continue
                stage, htask = job
                t0 = time.perf_counter()
                processor.run_stage(stage, htask.task, worker.ctx)
                busy[worker.name] = busy.get(worker.name, 0.0) \
                    + (time.perf_counter() - t0)
                frames[worker.name] = frames.get(worker.name, 0) + 1

                if stage in self._wave_set:
                    if htask.forward_completed():
                        self._advance(htask, None, processor)
                else:
                    self._advance(htask, stage, processor)
        except BaseException as exc:  # noqa: BLE001 - crosses threads
            self._fail(exc)

    # ------------------------------------------------------------------
    def run(self, processor: FrameProcessor, pairs: Iterator[Any],
            limit: Optional[int] = None) -> Iterator[Any]:
        self._claim()
        return self._drive(processor, pairs, limit)

    def _drive(self, processor: FrameProcessor, pairs: Iterator[Any],
               limit: Optional[int]) -> Iterator[Any]:
        stats = self.stats
        busy = stats.stage_busy_s
        started = time.perf_counter()

        contexts = processor.make_contexts(len(self.engines),
                                           engines=self.engines)
        self._workers = [_Worker(i, engine, ctx)
                         for i, (engine, ctx)
                         in enumerate(zip(self.engines, contexts))]
        sequential = processor.sequential_mid
        wave = tuple(processor.parallel_stages())
        self._wave_set = frozenset(wave)
        self._mid = tuple(processor.mid_stages())

        def capture() -> None:
            produced = 0
            iterator = iter(pairs)
            try:
                # limit check before the pull: a bounded drive leaves a
                # shared source exactly where the serial loop would
                while not self._stop and (limit is None or produced < limit):
                    self._ensure_open(pairs)
                    try:
                        pair = next(iterator)
                    except StopIteration:
                        break
                    index = produced
                    while not self._in_flight.acquire(timeout=self.TICK_S):
                        if self._stop:
                            return
                    t0 = time.perf_counter()
                    task = processor.ingest(pair, index)
                    busy["ingest"] = busy.get("ingest", 0.0) \
                        + (time.perf_counter() - t0)
                    if sequential:
                        # stateful mid chain: the consumer thread runs
                        # it in frame order; the team only sees no work
                        with self._done:
                            self._done_tasks[index] = task
                            self._done.notify_all()
                    else:
                        htask = _HeteroTask(task, index,
                                            forwards=len(wave))
                        if wave:
                            for k, stage in enumerate(wave):
                                worker = self._pick_worker(
                                    stage, len(wave) * index + k)
                                self._dispatch(worker, stage, htask,
                                               processor)
                        else:
                            # no wave at all: start the mid chain
                            self._advance(htask, None, processor)
                    produced += 1
            except BaseException as exc:  # noqa: BLE001
                self._fail(exc)
            finally:
                with self._done:
                    self._expected = produced
                    self._done.notify_all()

        capture_thread = threading.Thread(target=capture, name="exec-capture",
                                          daemon=True)
        worker_threads = []
        if not sequential:
            for worker in self._workers:
                thread = threading.Thread(
                    target=self._worker_loop, args=(worker, processor),
                    name=f"exec-{worker.name}", daemon=True)
                worker.thread = thread
                worker_threads.append(thread)
        self._threads = [capture_thread] + worker_threads
        for thread in self._threads:
            thread.start()

        try:
            next_index = 0
            while True:
                with self._done:
                    while (next_index not in self._done_tasks
                           and not self._stop
                           and not (self._expected is not None
                                    and next_index >= self._expected)):
                        self._done.wait(timeout=self.TICK_S)
                    if self._stop and next_index not in self._done_tasks:
                        break
                    if (self._expected is not None
                            and next_index >= self._expected):
                        break
                    task = self._done_tasks.pop(next_index)
                if sequential:
                    for stage in self._mid:
                        t0 = time.perf_counter()
                        processor.run_stage(stage, task, None)
                        bucket = processor.stage_bucket(stage)
                        busy[bucket] = busy.get(bucket, 0.0) \
                            + (time.perf_counter() - t0)
                t0 = time.perf_counter()
                result = processor.finalize(task)
                busy["finalize"] = busy.get("finalize", 0.0) \
                    + (time.perf_counter() - t0)
                self._in_flight.release()
                stats.frames += 1
                next_index += 1
                yield result
                if limit is not None and stats.frames >= limit:
                    break
            if self._error is not None:
                raise self._error
        finally:
            stats.wall_seconds = time.perf_counter() - started
            self.close()

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._stop.set()
        with self._work:
            self._work.notify_all()
        with self._done:
            self._done.notify_all()
        self._join_all()
        self._workers = []
