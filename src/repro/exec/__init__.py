"""Pluggable frame-execution layer: how the fusion dataflow is driven.

The paper's energy and throughput wins come from *overlap* — double
buffering hides AXI transfers under compute (Section IV, Fig. 5), and
the heterogeneous platform can keep the CPU's SIMD pipeline and the
FPGA fabric busy at the same time (Section VII's adaptive conclusion,
pushed further by Nunez-Yanez et al.'s CPU+FPGA co-execution).  This
package makes that overlap a first-class, swappable layer: the
capture → forward ×2 → fuse → inverse → report dataflow is described
once — declaratively, as a :class:`repro.graph.FusionGraph` lowered to
a :class:`repro.graph.FusionPlan` that the :class:`FrameProcessor`
carries — and driven by an :class:`Executor`, each of which is an
*interpreter* of that plan (custom stages included) rather than a
hard-coded stage order.

Executor ↔ paper map
--------------------

``serial`` — :class:`SerialExecutor`
    The unoverlapped baseline: one frame at a time, every stage on one
    thread.  This is the single-engine measurement loop behind the
    paper's Fig. 9/Fig. 10 numbers, extracted from the old session
    loop unchanged.

``pipeline`` — :class:`PipelineExecutor`
    Stage-parallel streaming through bounded queues: capture, forward
    transforms, fusion/inverse and reporting overlap across frames,
    and the two forward transforms of each pair run concurrently.
    This is the software analogue of Section IV's double-buffered
    driver, where memcpys into one kernel buffer area overlap the
    hardware crunching the other.

``batch`` — :class:`BatchExecutor`
    Micro-batched NumPy vectorization on one thread: every
    ``batch_size`` frame pairs are stacked through *one* forward
    transform (both modalities in the same stack), fused with
    vectorized rules and reconstructed by one stacked inverse, while
    ingest/finalize stay per-frame and ordered.  This is the paper's
    many-lines-per-invocation amortization applied at frame
    granularity — the right choice on single-core hosts where the
    thread executors cannot overlap.

``hetero`` — :class:`HeterogeneousExecutor`
    Co-scheduled execution across a *team* of engine instances — the
    same kernel running on several engines at once, each frame's work
    split across them, with deterministic assignment and a
    work-stealing fallback when one engine's queue runs dry.  This is
    the "CPU and FPGA working together" regime of Section VII's
    future-work discussion and of "Parallelizing Workload Execution in
    Embedded and High-Performance Heterogeneous Systems".

Every executor drives identical arithmetic: with a fixed seed (and default
teams) they produce bitwise-identical fused frames and identical
modelled time/energy; only the *wall-clock* schedule (reported in
:class:`ExecStats`) differs.  The one intentional exception is an
explicit mixed engine team, which attributes each stage's modelled
cost to its assigned engine.  Out-of-tree strategies register with
:func:`register_executor` and become selectable by name everywhere —
``FusionConfig(executor=...)``, the CLI's ``--executor``, benchmarks.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from ..errors import ConfigurationError
from .base import ExecStats, Executor, FrameProcessor
from .batch import BatchExecutor
from .hetero import HeterogeneousExecutor
from .pipelined import PipelineExecutor
from .serial import SerialExecutor

#: Name -> factory taking the shared tuning keywords (workers,
#: queue_depth, and for team executors: engines, co_schedule, affinity).
_REGISTRY: Dict[str, Callable[..., Executor]] = {}


def register_executor(name: str, factory: Callable[..., Executor],
                      replace: bool = False) -> None:
    """Make ``factory`` selectable as ``name`` throughout the package."""
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            f"executor name must be a non-empty string, got {name!r}")
    if name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"executor {name!r} is already registered; pass replace=True "
            f"to override it")
    _REGISTRY[name] = factory


def executor_names() -> Tuple[str, ...]:
    """Registered executor names, in registration order."""
    return tuple(_REGISTRY)


def make_executor(name: str, **kwargs) -> Executor:
    """Instantiate the executor registered as ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown executor {name!r}; expected one of {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


register_executor("serial", SerialExecutor)
register_executor("pipeline", PipelineExecutor)
register_executor("hetero", HeterogeneousExecutor)
register_executor("batch", BatchExecutor)

__all__ = [
    "ExecStats", "Executor", "FrameProcessor",
    "SerialExecutor", "PipelineExecutor", "HeterogeneousExecutor",
    "BatchExecutor",
    "executor_names", "make_executor", "register_executor",
]
