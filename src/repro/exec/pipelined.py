"""The pipelined executor: bounded-queue, multi-stage thread pipeline.

Mirrors the paper's double-buffered execution (Fig. 5): while frame
``i`` is being fused, frame ``i+1``'s forward transforms are already
running and frame ``i+2`` is being captured, exactly like the driver's
two kernel-buffer areas let user-space memcpys overlap hardware
processing.  The two forward transforms of each pair — the stage the
paper accelerates — run concurrently on a small worker pool, so the
visible and thermal decompositions of one frame overlap too.

Stage topology (every queue bounded by ``queue_depth``)::

    capture/ingest ──> [wave pool: workers] ──> mid chain ──> finalize
         (ordered)       (unordered, pure)      (ordered)    (ordered,
                                                              caller
                                                              thread)

The slots are filled from the processor's lowered plan: the *parallel
wave* (:meth:`FrameProcessor.parallel_stages` — canonically the two
forward transforms, plus any custom stateless stage that only needs
the ingested frame) rides the pool; the *mid chain*
(:meth:`FrameProcessor.mid_stages` — canonically fuse+inverse, plus
any custom stage downstream of it) runs on the dedicated mid thread,
which sees frames in capture order.

Ordering and determinism: ingest, the mid chain and finalize each run
on a single thread and see frames in capture order, so all stateful
policies (rig calibration, temporal fusion, monitoring, telemetry)
behave exactly as in the serial loop; wave stages are pure and bound
to the frame's engine, so results are bitwise identical no matter how
the pool interleaves them.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Iterator, Optional

from ..errors import ConfigurationError
from .base import Executor, FrameProcessor

_DONE = object()  # end-of-stream sentinel


class _Envelope:
    """Executor-side wrapper tracking one task through the stages."""

    __slots__ = ("task", "index", "forwards_done", "_remaining", "_lock")

    def __init__(self, task: Any, index: int, forwards: int = 2):
        self.task = task
        self.index = index
        self.forwards_done = threading.Event()
        self._remaining = forwards
        self._lock = threading.Lock()
        if forwards == 0:
            self.forwards_done.set()

    def forward_completed(self) -> None:
        with self._lock:
            self._remaining -= 1
            if self._remaining == 0:
                self.forwards_done.set()


class PipelineExecutor(Executor):
    """Capture, forward, fuse and finalize as overlapped stages."""

    name = "pipeline"

    def __init__(self, workers: int = 2, queue_depth: int = 4, **_ignored):
        super().__init__()
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {queue_depth}")
        self.workers = workers
        self.queue_depth = queue_depth

    # ------------------------------------------------------------------
    def _put(self, q: "queue.Queue", item: Any, name: str) -> bool:
        """Stop-aware bounded put; records the queue's depth peak."""
        while not self._stop:
            try:
                q.put(item, timeout=self.TICK_S)
            except queue.Full:
                continue
            peak = self.stats.queue_peak
            peak[name] = max(peak.get(name, 0), q.qsize())
            return True
        return False

    def _get(self, q: "queue.Queue") -> Any:
        while not self._stop:
            try:
                return q.get(timeout=self.TICK_S)
            except queue.Empty:
                continue
        return _DONE

    # ------------------------------------------------------------------
    def run(self, processor: FrameProcessor, pairs: Iterator[Any],
            limit: Optional[int] = None) -> Iterator[Any]:
        self._claim()
        return self._drive(processor, pairs, limit)

    def _drive(self, processor: FrameProcessor, pairs: Iterator[Any],
               limit: Optional[int]) -> Iterator[Any]:
        stats = self.stats
        busy = stats.stage_busy_s
        started = time.perf_counter()

        q_order: "queue.Queue" = queue.Queue(maxsize=self.queue_depth)
        q_forward: "queue.Queue" = queue.Queue()
        q_done: "queue.Queue" = queue.Queue(maxsize=self.queue_depth)
        wave = tuple(processor.parallel_stages())
        mid = tuple(processor.mid_stages())
        # an empty wave (sequential mid chain, e.g. temporal fusion)
        # means no pool jobs will exist, so no pool threads or
        # contexts are built
        pool_size = 0 if not wave else self.workers
        contexts = processor.make_contexts(pool_size + 1)
        fuse_ctx, pool_ctxs = contexts[0], contexts[1:]

        def capture() -> None:
            produced = 0
            iterator = iter(pairs)
            try:
                # the limit check precedes the pull so a bounded drive
                # never reads the source past its last frame (shared
                # sources must stay exactly where the serial loop
                # would leave them)
                while not self._stop and (limit is None or produced < limit):
                    self._ensure_open(pairs)
                    try:
                        pair = next(iterator)
                    except StopIteration:
                        break
                    index = produced
                    t0 = time.perf_counter()
                    task = processor.ingest(pair, index)
                    busy["ingest"] = busy.get("ingest", 0.0) \
                        + (time.perf_counter() - t0)
                    # with a sequential mid chain (temporal fusion) the
                    # whole transform runs there; no wave jobs exist
                    env = _Envelope(task, index, forwards=len(wave))
                    if not self._put(q_order, env, "order"):
                        break
                    for stage in wave:
                        q_forward.put((stage, env))
                    if wave:
                        peak = stats.queue_peak
                        peak["forward"] = max(peak.get("forward", 0),
                                              q_forward.qsize())
                    produced += 1
            except BaseException as exc:  # noqa: BLE001 - crosses threads
                self._fail(exc)
            finally:
                self._put(q_order, _DONE, "order")
                for _ in range(pool_size):
                    q_forward.put(_DONE)

        def forward_worker(slot: int) -> None:
            ctx = pool_ctxs[slot]
            name = f"forward[{slot}]"
            try:
                while not self._stop:
                    job = self._get(q_forward)
                    if job is _DONE:
                        return
                    stage, env = job
                    t0 = time.perf_counter()
                    processor.run_stage(stage, env.task, ctx)
                    busy[name] = busy.get(name, 0.0) \
                        + (time.perf_counter() - t0)
                    stats.worker_frames[name] = \
                        stats.worker_frames.get(name, 0) + 1
                    env.forward_completed()
            except BaseException as exc:  # noqa: BLE001
                self._fail(exc)

        def fuse_stage() -> None:
            try:
                while not self._stop:
                    env = self._get(q_order)
                    if env is _DONE:
                        break
                    while not env.forwards_done.wait(timeout=self.TICK_S):
                        if self._stop:
                            return
                    for stage in mid:
                        t0 = time.perf_counter()
                        processor.run_stage(stage, env.task, fuse_ctx)
                        bucket = processor.stage_bucket(stage)
                        busy[bucket] = busy.get(bucket, 0.0) \
                            + (time.perf_counter() - t0)
                    if not self._put(q_done, env, "done"):
                        return
                self._put(q_done, _DONE, "done")
            except BaseException as exc:  # noqa: BLE001
                self._fail(exc)

        threads = [threading.Thread(target=capture, name="exec-capture",
                                    daemon=True),
                   threading.Thread(target=fuse_stage, name="exec-fuse",
                                    daemon=True)]
        threads += [threading.Thread(target=forward_worker, args=(i,),
                                     name=f"exec-forward-{i}", daemon=True)
                    for i in range(pool_size)]
        self._threads = threads
        for thread in threads:
            thread.start()

        try:
            while True:
                env = self._get(q_done)
                if env is _DONE:
                    break
                t0 = time.perf_counter()
                result = processor.finalize(env.task)
                busy["finalize"] = busy.get("finalize", 0.0) \
                    + (time.perf_counter() - t0)
                stats.frames += 1
                yield result
                if limit is not None and stats.frames >= limit:
                    break
            if self._error is not None:
                raise self._error
        finally:
            stats.wall_seconds = time.perf_counter() - started
            self.close()

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._join_all()
