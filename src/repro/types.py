"""Shared lightweight datatypes used across the repro package.

These types intentionally carry no behaviour beyond validation and
convenience accessors; the algorithms live in the subpackages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .errors import ConfigurationError


@dataclass(frozen=True)
class FrameShape:
    """A frame geometry expressed the way the paper writes it: width x height.

    The paper's evaluation sweeps 32x24, 35x35, 40x40, 64x48 and 88x72
    pixel frames; :data:`PAPER_FRAME_SIZES` lists them in that order.
    """

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError(
                f"frame dimensions must be positive, got {self.width}x{self.height}"
            )

    @property
    def pixels(self) -> int:
        """Total number of pixels in the frame."""
        return self.width * self.height

    @property
    def array_shape(self) -> Tuple[int, int]:
        """Numpy array shape (rows, cols) == (height, width)."""
        return (self.height, self.width)

    def scaled(self, factor: float) -> "FrameShape":
        """Return a new shape scaled by ``factor`` (rounded, at least 1 px)."""
        return FrameShape(
            max(1, int(round(self.width * factor))),
            max(1, int(round(self.height * factor))),
        )

    def __str__(self) -> str:  # e.g. "88x72"
        return f"{self.width}x{self.height}"


#: Frame sizes evaluated in the paper (Fig. 9 and Fig. 10), smallest first.
PAPER_FRAME_SIZES: Tuple[FrameShape, ...] = (
    FrameShape(32, 24),
    FrameShape(35, 35),
    FrameShape(40, 40),
    FrameShape(64, 48),
    FrameShape(88, 72),
)

#: The full input frame size used by the designed system (Section VII).
FULL_FRAME: FrameShape = FrameShape(88, 72)


@dataclass
class TimingBreakdown:
    """Latency decomposition of one operation on one engine (seconds).

    Attributes mirror the cost structure the paper discusses:

    * ``compute_s``   — arithmetic (filter MACs / pipeline occupancy),
    * ``transfer_s``  — data movement (AXI bursts, user<->kernel memcpy),
    * ``command_s``   — per-invocation control cost (AXI-Lite writes,
      driver ioctl, completion polling),
    * ``overhead_s``  — everything else (loop setup, interleaving, ...).
    """

    compute_s: float = 0.0
    transfer_s: float = 0.0
    command_s: float = 0.0
    overhead_s: float = 0.0

    @property
    def total_s(self) -> float:
        """Total latency in seconds."""
        return self.compute_s + self.transfer_s + self.command_s + self.overhead_s

    def __add__(self, other: "TimingBreakdown") -> "TimingBreakdown":
        return TimingBreakdown(
            self.compute_s + other.compute_s,
            self.transfer_s + other.transfer_s,
            self.command_s + other.command_s,
            self.overhead_s + other.overhead_s,
        )

    def scaled(self, factor: float) -> "TimingBreakdown":
        """Return a copy with every component multiplied by ``factor``."""
        return TimingBreakdown(
            self.compute_s * factor,
            self.transfer_s * factor,
            self.command_s * factor,
            self.overhead_s * factor,
        )


@dataclass
class EnergyReport:
    """Energy accounting for a measured interval."""

    seconds: float
    power_w: float

    @property
    def joules(self) -> float:
        return self.seconds * self.power_w

    @property
    def millijoules(self) -> float:
        return self.joules * 1e3


@dataclass
class StageProfile:
    """Per-stage timing profile of the fusion pipeline (Fig. 2).

    ``stages`` maps stage name to accumulated seconds.
    """

    stages: Dict[str, float] = field(default_factory=dict)

    def add(self, stage: str, seconds: float) -> None:
        self.stages[stage] = self.stages.get(stage, 0.0) + seconds

    @property
    def total_s(self) -> float:
        return sum(self.stages.values())

    def percentages(self) -> Dict[str, float]:
        """Stage shares in percent, as plotted in the paper's Fig. 2."""
        total = self.total_s
        if total <= 0.0:
            return {name: 0.0 for name in self.stages}
        return {name: 100.0 * sec / total for name, sec in self.stages.items()}

    def ranked(self) -> List[Tuple[str, float]]:
        """Stages sorted by descending share (percent)."""
        return sorted(self.percentages().items(), key=lambda kv: -kv[1])
