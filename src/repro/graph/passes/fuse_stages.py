"""Stateless-stage fusion: chains of adjacent stages -> one dispatch.

The paper's HLS datapath streams the whole forward->fuse->inverse chain
through fixed-function hardware without returning to the host between
stages; the Python analogue is collapsing a chain of adjacent
*stateless, placement-compatible* stages into one **fused dispatch
unit**, executed by a single ``run_stage`` call.  For the canonical
graph that generalizes the stacked two-forward dispatch: the
``visible + thermal + fuse`` chain becomes one unit the session
processor drives through a single stacked ``(2, H, W)`` transform
invocation (one forward call instead of two, vectorized coefficient
fusion, one inverse) — the same arithmetic
:meth:`repro.core.fusion.ImageFusion.fuse_batch` pins bitwise-equal to
the per-stage path.

Fusion region depends on the executor interpreting the plan: the
thread executors (``pipeline``/``hetero``) overlap the parallel wave
with the mid chain, so only wave stages are merged (keeping the
capture/wave/mid overlap intact); the single-threaded executors
(``serial``/``batch``) gain nothing from that split, so the whole
compute region is eligible and the full core fuses.

A chain breaks (and the pass stands down entirely) wherever fusing
could change behaviour:

* an ordered stage in the compute region (``sequential_mid`` plans);
* a co-scheduling ``engine_team`` — stage *names* are the unit engines
  are assigned to, and merging them would reassign arithmetic;
* placement changes mid-chain — members must either all be ``auto``
  (bound to the frame's engine) or all be forced onto one engine.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Tuple

from ..planner import FusionPlan
from .base import PassReport, PlanPass

#: executors that overlap the parallel wave with the mid chain; fusion
#: stays inside the wave for them so the overlap survives
_OVERLAPPING = ("pipeline", "hetero")

#: a unit must replace at least this many dispatches to exist
_MIN_CHAIN = 2


class StatelessFusionPass(PlanPass):
    """Collapse adjacent stateless same-placement stages into units."""

    name = "fuse-stages"

    def run(self, plan: FusionPlan, config) -> Tuple[FusionPlan,
                                                     PassReport]:
        if plan.sequential_mid:
            return plan, self.skip(
                "an ordered stage sits in the compute region")
        if getattr(config, "engine_team", None) is not None:
            return plan, self.skip(
                "a co-scheduling engine team assigns engines by stage "
                "name")
        if plan.units:
            return plan, self.skip("plan already carries fused units")

        region = (plan.parallel if plan.executor in _OVERLAPPING
                  else plan.compute)
        chains = self._chains(plan, region)
        if not chains:
            return plan, self.skip(
                "no adjacent stateless same-placement chain of length "
                f">= {_MIN_CHAIN}")

        units = {}
        for members in chains:
            unit = "+".join(members)
            while unit in plan.nodes or unit in units:
                unit = f"fused:{unit}"  # pragma: no cover - name clash
            units[unit] = members

        absorbed = {name for members in units.values()
                    for name in members}
        parallel_set = set(plan.parallel)

        compute: List[str] = []
        for name in plan.compute:
            owner = next((u for u, m in units.items() if name in m), None)
            if owner is None:
                compute.append(name)
            elif owner not in compute:
                compute.append(owner)
        # a unit joins the parallel wave only when every member was in
        # it — one member from the mid chain pins the whole unit there
        parallel = tuple(
            n for n in compute
            if (set(units[n]) <= parallel_set if n in units
                else n in parallel_set))
        mid = tuple(n for n in compute if n not in parallel)

        actions = [f"fused [{' '.join(members)}] -> one dispatch unit "
                   f"{unit!r}" for unit, members in units.items()]
        rewritten = replace(plan, compute=tuple(compute),
                            parallel=parallel, mid=mid, units=units)
        return rewritten, PassReport(name=self.name, changed=True,
                                     actions=actions)

    # ------------------------------------------------------------------
    def _chains(self, plan: FusionPlan,
                region: Tuple[str, ...]) -> List[Tuple[str, ...]]:
        """Maximal contiguous runs of fusable stages in ``region``
        (schedule order), split wherever the placement key changes."""
        chains: List[Tuple[str, ...]] = []
        run: List[str] = []
        run_key = None
        for name in region:
            stage = plan.stage(name)
            key = stage.placement  # AUTO fuses with AUTO, forced with
            if stage.ordered:      # its own engine only
                key = None
            if key is None or (run and key != run_key):
                if len(run) >= _MIN_CHAIN:
                    chains.append(tuple(run))
                run = []
            if key is not None:
                run.append(name)
                run_key = key
        if len(run) >= _MIN_CHAIN:
            chains.append(tuple(run))
        return chains


__all__ = ["StatelessFusionPass"]
