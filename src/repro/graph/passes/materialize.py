"""Materialization elimination: steady-state frames allocate nothing.

Between the forward transforms, the coefficient fusion and the inverse
the per-frame path materializes short-lived NumPy buffers: the
``(2, H, W)`` input stack fed to the stacked forward, and the
equivalent stack the batch executor builds per micro-batch.  On the
paper's FPGA those intermediates live in on-chip line buffers that are
*reused* every frame; this pass marks the plan ``scratch`` so the
session processor threads those buffers through a per-worker
:class:`repro.dtcwt.backend.ScratchPool` instead — each lane writes
its frame into the same pooled allocation, so the steady state
allocates nothing on that path.

Bitwise safety: the pooled buffer is fully overwritten before every
use and the kernels never mutate their inputs, so pooling changes
allocation behaviour only — never a single output bit.  The pass only
fires where a pooled buffer will actually be consumed: a fused
``visible+thermal`` (or full core) unit from the fusion pass, or the
batch executor's stacked core.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Tuple

from ..planner import FusionPlan
from .base import PassReport, PlanPass


class MaterializationEliminationPass(PlanPass):
    """Route per-frame intermediate buffers through a scratch pool."""

    name = "eliminate-materialization"

    def run(self, plan: FusionPlan, config) -> Tuple[FusionPlan,
                                                     PassReport]:
        if plan.scratch:
            return plan, self.skip("plan already pools its buffers")
        actions = []
        for unit, members in plan.units.items():
            if members[:2] == ("visible", "thermal"):
                actions.append(
                    f"unit {unit!r}: the (2, H, W) forward input stack "
                    f"now rides one pooled buffer per worker lane "
                    f"(eliminates 1 allocation/frame)")
        if plan.fusable_core and plan.executor == "batch":
            actions.append(
                "batch stacked core: the (2B, H, W) micro-batch input "
                "stack now rides one pooled buffer per engine lane "
                "(eliminates 2 stack allocations/micro-batch)")
        if not actions:
            return plan, self.skip(
                "no stacked dispatch consumes a pooled buffer (run the "
                "fusion pass first, or use the batch executor)")
        return (replace(plan, scratch=True),
                PassReport(name=self.name, changed=True, actions=actions))


__all__ = ["MaterializationEliminationPass"]
