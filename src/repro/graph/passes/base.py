"""Optimization-pass contracts: rewrite a lowered plan, keep parity.

A :class:`PlanPass` takes one lowered
:class:`~repro.graph.planner.FusionPlan` plus the session config it was
lowered against and returns a rewritten plan together with a
:class:`PassReport` of what changed.  The contract every pass must
honour is the package-wide determinism invariant extended to
optimization: **an optimized plan produces bitwise-identical frames and
identical modelled time/energy to the unoptimized plan** on any fixed
seed, under every executor.  Passes therefore change *how* the same
arithmetic is dispatched (fused units, pooled buffers, hoisted setup),
never *what* is computed.

:class:`PassPipeline` composes passes in order — each pass sees its
predecessors' rewrites, exactly like a compiler pass manager — and
stamps the final plan ``optimized=True`` with the per-pass reports
attached, which is what ``repro plan --optimize --explain`` prints.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

from ..planner import FusionPlan


@dataclass
class PassReport:
    """What one pass did to one plan (shown by ``--explain``)."""

    name: str
    changed: bool = False
    #: human-readable rewrite descriptions, one per action
    actions: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {"pass": self.name, "changed": self.changed,
                "actions": list(self.actions)}


class PlanPass(ABC):
    """One plan-to-plan rewrite preserving bitwise frame parity."""

    #: registry/report name of the pass
    name: str = "pass"

    @abstractmethod
    def run(self, plan: FusionPlan, config) -> Tuple[FusionPlan,
                                                     PassReport]:
        """Rewrite ``plan`` (lowered against ``config``); return the
        new plan and a report of the rewrites applied."""

    def skip(self, reason: str) -> PassReport:
        """A no-change report recording why the pass stood down."""
        return PassReport(name=self.name, changed=False,
                          actions=[f"skipped: {reason}"])


class PassPipeline:
    """Run passes in order and stamp the result as optimized."""

    def __init__(self, passes: Tuple[PlanPass, ...]):
        self.passes = tuple(passes)

    def run(self, plan: FusionPlan, config) -> FusionPlan:
        reports = list(plan.pass_reports)
        for plan_pass in self.passes:
            plan, report = plan_pass.run(plan, config)
            reports.append(report.as_dict())
        return replace(plan, optimized=True, pass_reports=tuple(reports))


def default_pipeline() -> PassPipeline:
    """The standard pipeline: fuse stateless chains, eliminate
    steady-state materializations, hoist loop-invariant setup."""
    from .fuse_stages import StatelessFusionPass
    from .hoist import LoopInvariantHoistPass
    from .materialize import MaterializationEliminationPass
    return PassPipeline((
        StatelessFusionPass(),
        MaterializationEliminationPass(),
        LoopInvariantHoistPass(),
    ))


def optimize_plan(plan: FusionPlan, config) -> FusionPlan:
    """Convenience: ``default_pipeline().run(plan, config)``."""
    return default_pipeline().run(plan, config)
