"""Loop-invariant hoisting: per-frame setup moves to plan time.

Profiling the serial hot path shows ~9% of wall time inside
``engine.frame_time(shape, levels)`` — the modelled whole-frame cost
the ingest stage recomputes for *every frame*, even though it depends
only on (engine, shape, levels), all fixed for a plan's lifetime.
This pass evaluates that model once per reachable engine at plan
construction and stores the table on the plan
(:attr:`~repro.graph.planner.FusionPlan.hoisted_frame_seconds`); the
session's ingest then looks the value up instead of re-deriving it.

It also flags the filter setup as hoisted: the kernel backends convert
filter taps to their working dtype on every primitive call
(``np.asarray(taps, dtype)`` — thousands of calls per frame); on an
optimized plan the session enables the backend's tap cache so each
bank is converted exactly once per backend.  Both rewrites reproduce
the identical values the per-frame path computed (the cost model is a
pure function; the cached taps are the same converted array), so
modelled accounting and output frames stay bitwise-identical.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Tuple

from ...hw.registry import create_engine
from ..planner import HOST, FusionPlan
from .base import PassReport, PlanPass


class LoopInvariantHoistPass(PlanPass):
    """Precompute shape/engine-derived per-frame setup at plan time."""

    name = "hoist-invariants"

    def run(self, plan: FusionPlan, config) -> Tuple[FusionPlan,
                                                     PassReport]:
        if plan.hoisted_frame_seconds:
            return plan, self.skip("frame-cost table already hoisted")
        names = self._reachable_engines(plan)
        if not names:
            return plan, self.skip(
                "no engine-placed stage to hoist setup for")
        shape, levels = config.fusion_shape, config.levels
        hoisted: Dict[str, float] = {
            name: create_engine(name).frame_time(shape, levels).total_s
            for name in sorted(names)
        }
        actions = [
            f"ingest: engine.frame_time({plan.shape}, levels="
            f"{levels}) evaluated once per engine at plan time "
            f"({', '.join(f'{n}={s * 1e3:.3f}ms' for n, s in hoisted.items())}) "
            f"instead of once per frame",
            "backends: filter taps converted to the working dtype once "
            "per backend (tap cache) instead of once per primitive "
            "call",
        ]
        return (replace(plan, hoisted_frame_seconds=hoisted),
                PassReport(name=self.name, changed=True, actions=actions))

    # ------------------------------------------------------------------
    @staticmethod
    def _reachable_engines(plan: FusionPlan) -> set:
        """Engine names the session may select a frame onto: every
        resolved placement in the plan, plus the whole probe set when
        the online scheduler re-decides per frame."""
        names = set()
        for node in plan.nodes.values():
            label = node.engine
            if label != HOST and not label.startswith("team("):
                names.add(label)
        if plan.dynamic_engine:
            from ...core.adaptive import default_engines
            names.update(engine.name for engine in default_engines())
        return names


__all__ = ["LoopInvariantHoistPass"]
