"""Composable optimization passes over the lowered FusionPlan IR.

The pipeline turns the plan from a *description* of the dataflow into
a *speedup* while preserving the package's determinism contract: an
optimized plan yields bitwise-identical frames and identical modelled
time/energy to the unoptimized plan, under every executor.

* :class:`StatelessFusionPass` — chains of adjacent stateless,
  same-placement stages collapse into one fused dispatch unit (the
  canonical ``visible+thermal+fuse`` chain rides a single stacked
  transform invocation);
* :class:`MaterializationEliminationPass` — steady-state intermediate
  buffers ride a per-worker :class:`repro.dtcwt.backend.ScratchPool`,
  so the per-frame path allocates nothing on the stacked core;
* :class:`LoopInvariantHoistPass` — filter/shape/engine-derived setup
  (the per-frame cost model, filter-tap dtype conversion) moves out of
  the frame loop into plan-construction time.

``optimize_plan(plan, config)`` runs the default pipeline;
``FusionConfig(optimize=True)`` and ``repro plan --optimize`` apply it
for a whole session.  The :class:`~repro.graph.autotune.PlanAutotuner`
searches over these decisions and caches winners on disk.
"""

from .base import (PassPipeline, PassReport, PlanPass, default_pipeline,
                   optimize_plan)
from .fuse_stages import StatelessFusionPass
from .hoist import LoopInvariantHoistPass
from .materialize import MaterializationEliminationPass

__all__ = [
    "PassPipeline", "PassReport", "PlanPass",
    "StatelessFusionPass", "MaterializationEliminationPass",
    "LoopInvariantHoistPass",
    "default_pipeline", "optimize_plan",
]
