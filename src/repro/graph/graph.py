"""The declarative frame-processing dataflow: stages and their edges.

:class:`FusionGraph` is the builder half of the plan API: users (and
the session itself) describe frame processing as named
:class:`~repro.graph.stage.Stage` nodes joined by dataflow edges, then
hand the graph to the :class:`~repro.graph.planner.Planner`, which
lowers it into an executable :class:`~repro.graph.planner.FusionPlan`.
The graph validates *structure* (acyclicity, a single ingest and a
single finalize, dangling edges, ordered-stage constraints); the
planner validates *meaning* against a session configuration.

The canonical pipeline the paper runs — capture/ingest, rig
registration, the two forward DT-CWTs, coefficient fusion + inverse
(or stateful temporal fusion), then monitoring/telemetry — is itself
built here by :meth:`FusionGraph.canonical`, so "the default system"
and "a user's customized system" go through exactly one code path.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..errors import ConfigurationError
from .stage import AUTO, ORDERED, STATELESS, Stage


class FusionGraph:
    """A small DAG of :class:`Stage` nodes with builder conveniences.

    Stages keep insertion order, which the topological sort uses as a
    deterministic tie-break — two lowerings of the same graph always
    produce the same schedule.
    """

    def __init__(self, stages: Iterable[Stage] = ()):
        self._stages: Dict[str, Stage] = {}
        #: names removed via drop() — records that an absence is an
        #: explicit decision, which the planner's consistency checks
        #: distinguish from a forgotten stage
        self._dropped: set = set()
        for stage in stages:
            self.add(stage)

    # -- construction ---------------------------------------------------
    def add(self, stage: Stage) -> "FusionGraph":
        """Add ``stage``; duplicate names are a hard error."""
        if not isinstance(stage, Stage):
            raise ConfigurationError(
                f"FusionGraph.add expects a Stage, got {stage!r}")
        if stage.name in self._stages:
            raise ConfigurationError(
                f"duplicate stage name {stage.name!r} in graph")
        self._stages[stage.name] = stage
        return self

    def add_stage(self, name: str, fn: Callable[[Any], None],
                  after: Tuple[str, ...], state: str = STATELESS,
                  placement: str = AUTO,
                  batchable: bool = False) -> "FusionGraph":
        """Add a custom (``kind="map"``) stage in one call."""
        return self.add(Stage(name=name, fn=fn, after=tuple(after),
                              state=state, placement=placement,
                              batchable=batchable))

    def insert_after(self, anchor: str, stage: Stage) -> "FusionGraph":
        """Splice ``stage`` into the chain right after ``anchor``.

        The new stage consumes ``anchor`` (plus any deps it already
        declares), and every stage that consumed ``anchor`` is rewired
        to consume the new stage instead — the linear insertion a
        denoise-after-fuse or overlay-before-finalize node wants.
        """
        if anchor not in self._stages:
            raise ConfigurationError(
                f"cannot insert after unknown stage {anchor!r}")
        deps = tuple(dict.fromkeys((anchor,) + stage.after))
        self.add(stage.with_after(deps))
        for name, existing in list(self._stages.items()):
            if name == stage.name or anchor not in existing.after:
                continue
            rewired = tuple(stage.name if dep == anchor else dep
                            for dep in existing.after)
            self._stages[name] = existing.with_after(rewired)
        return self

    def drop(self, name: str) -> "FusionGraph":
        """Remove a stage; its consumers inherit its dependencies."""
        if name not in self._stages:
            raise ConfigurationError(
                f"cannot drop unknown stage {name!r}")
        self._dropped.add(name)
        dropped = self._stages.pop(name)
        for other, existing in list(self._stages.items()):
            if name not in existing.after:
                continue
            rewired: List[str] = []
            for dep in existing.after:
                rewired.extend(dropped.after if dep == name else (dep,))
            self._stages[other] = existing.with_after(
                tuple(dict.fromkeys(rewired)))
        return self

    def connect(self, downstream: str, upstream: str) -> "FusionGraph":
        """Add the dataflow edge ``downstream`` <- ``upstream`` — for
        non-linear shapes :meth:`insert_after` cannot express (e.g.
        feeding finalize from a side branch, or making fuse consume a
        custom pyramid stage)."""
        down = self.stage(downstream)
        self.stage(upstream)  # must exist
        if upstream not in down.after:
            self._stages[downstream] = down.with_after(
                down.after + (upstream,))
        return self

    def disconnect(self, downstream: str, upstream: str) -> "FusionGraph":
        """Remove the dataflow edge ``downstream`` <- ``upstream``."""
        down = self.stage(downstream)
        if upstream not in down.after:
            raise ConfigurationError(
                f"stage {downstream!r} does not depend on {upstream!r}")
        self._stages[downstream] = down.with_after(
            tuple(dep for dep in down.after if dep != upstream))
        return self

    def place(self, name: str, engine: str) -> "FusionGraph":
        """Pin ``name``'s arithmetic (and scheduling affinity) to
        ``engine`` — the force-placement override of the plan API."""
        if name not in self._stages:
            raise ConfigurationError(
                f"cannot place unknown stage {name!r}")
        self._stages[name] = self._stages[name].with_placement(engine)
        return self

    def copy(self) -> "FusionGraph":
        """An independent builder with the same stages (stages are
        immutable, so a shallow copy is a real fork)."""
        fork = FusionGraph()
        fork._stages = dict(self._stages)
        fork._dropped = set(self._dropped)
        return fork

    @property
    def dropped(self) -> frozenset:
        """Names explicitly removed from this graph via :meth:`drop`."""
        return frozenset(self._dropped)

    # -- queries --------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._stages

    def __len__(self) -> int:
        return len(self._stages)

    def names(self) -> Tuple[str, ...]:
        return tuple(self._stages)

    def stage(self, name: str) -> Stage:
        try:
            return self._stages[name]
        except KeyError:
            raise ConfigurationError(
                f"graph has no stage named {name!r}") from None

    def stages(self) -> Tuple[Stage, ...]:
        return tuple(self._stages.values())

    def consumers(self, name: str) -> Tuple[str, ...]:
        return tuple(s.name for s in self._stages.values()
                     if name in s.after)

    def _of_kind(self, *kinds: str) -> Tuple[Stage, ...]:
        return tuple(s for s in self._stages.values() if s.kind in kinds)

    # -- validation -----------------------------------------------------
    def topo_order(self) -> Tuple[str, ...]:
        """Kahn's algorithm with insertion-order tie-break; raises
        :class:`ConfigurationError` naming the cycle members if the
        graph is not a DAG."""
        remaining: Dict[str, set] = {
            name: set(stage.after) for name, stage in self._stages.items()
        }
        order: List[str] = []
        while remaining:
            ready = [name for name, deps in remaining.items() if not deps]
            if not ready:
                raise ConfigurationError(
                    f"fusion graph contains a dependency cycle among "
                    f"{sorted(remaining)}")
            for name in ready:
                order.append(name)
                del remaining[name]
            for deps in remaining.values():
                deps.difference_update(ready)
        return tuple(order)

    def ancestors(self, name: str) -> set:
        """Transitive dependency closure of ``name`` (exclusive)."""
        seen: set = set()
        frontier = list(self.stage(name).after)
        while frontier:
            dep = frontier.pop()
            if dep in seen:
                continue
            seen.add(dep)
            frontier.extend(self.stage(dep).after)
        return seen

    def validate(self) -> None:
        """Structural checks; raises :class:`ConfigurationError`.

        * every dependency names an existing stage;
        * exactly one ``ingest`` and one ``finalize`` stage;
        * ingest has no dependencies and every other stage has some
          (nothing is unreachable);
        * no stage consumes finalize, and finalize transitively
          consumes every other stage (nothing dangles);
        * the graph is acyclic;
        * (per-stage, enforced at construction) ordered stages are
          never batchable.
        """
        for stage in self._stages.values():
            for dep in stage.after:
                if dep not in self._stages:
                    raise ConfigurationError(
                        f"stage {stage.name!r} depends on unknown stage "
                        f"{dep!r}")
                if dep == stage.name:
                    raise ConfigurationError(
                        f"stage {stage.name!r} depends on itself")

        ingests = self._of_kind("ingest")
        if len(ingests) != 1:
            raise ConfigurationError(
                f"graph needs exactly one ingest stage, found "
                f"{[s.name for s in ingests] or 'none'}")
        finalizes = self._of_kind("finalize")
        if len(finalizes) != 1:
            raise ConfigurationError(
                f"graph needs exactly one finalize stage, found "
                f"{[s.name for s in finalizes] or 'none'}")
        ingest, finalize = ingests[0], finalizes[0]

        if ingest.after:
            raise ConfigurationError(
                f"ingest stage {ingest.name!r} cannot depend on other "
                f"stages, got {ingest.after}")
        if not ingest.ordered or not finalize.ordered:
            raise ConfigurationError(
                "ingest and finalize are stateful by construction "
                "(frame indices, telemetry) and must be ordered")
        for stage in self._stages.values():
            if stage.name != ingest.name and not stage.after:
                raise ConfigurationError(
                    f"stage {stage.name!r} has no dependencies; only "
                    f"the ingest stage may be a source")
        if self.consumers(finalize.name):
            raise ConfigurationError(
                f"finalize stage {finalize.name!r} must be the sink; "
                f"{self.consumers(finalize.name)} depend on it")

        self.topo_order()  # acyclicity

        dangling = (set(self._stages) - {finalize.name}
                    - self.ancestors(finalize.name))
        if dangling:
            raise ConfigurationError(
                f"stage(s) {sorted(dangling)} never reach the finalize "
                f"stage; every stage must feed the frame's result")

    # -- presentation ---------------------------------------------------
    def describe(self) -> str:
        """Human-readable node listing in topological order."""
        try:
            order = self.topo_order()
        except ConfigurationError:
            order = self.names()
        lines = [f"FusionGraph ({len(self)} stages)"]
        lines += [f"  {self.stage(name).describe()}" for name in order]
        return "\n".join(lines)

    # -- the canonical pipeline ----------------------------------------
    @classmethod
    def canonical(cls, registration: bool = False,
                  temporal: bool = False,
                  n_sources: int = 2) -> "FusionGraph":
        """The paper's pipeline as a graph.

        ``ingest -> [register ->] visible+thermal -> fuse -> finalize``
        by default; with ``n_sources > 2`` further forward stages
        (``source2``, ``source3``, ...) join the parallel wave and the
        fuse node reduces all of them.  With ``temporal`` the forwards
        and the fuse node are replaced by one ordered ``temporal``
        stage, because flicker-suppressing temporal fusion decomposes
        internally and carries smoothed masks across frames — that
        path is pairwise only.
        """
        if n_sources < 2:
            raise ConfigurationError(
                f"the canonical graph needs >= 2 sources, got "
                f"{n_sources}")
        if temporal and n_sources != 2:
            raise ConfigurationError(
                "temporal fusion is pairwise (visible + thermal); "
                f"n_sources={n_sources} is not supported with "
                f"temporal=True")
        graph = cls()
        graph.add(Stage(name="ingest", kind="ingest", state=ORDERED))
        prev = "ingest"
        if registration:
            graph.add(Stage(name="register", kind="register",
                            state=ORDERED, after=(prev,)))
            prev = "register"
        if temporal:
            graph.add(Stage(name="temporal", kind="temporal",
                            state=ORDERED, after=(prev,)))
            last = "temporal"
        else:
            forwards = forward_stage_names(n_sources)
            for name in forwards:
                graph.add(Stage(name=name, kind="forward",
                                after=(prev,), batchable=True))
            graph.add(Stage(name="fuse", kind="fuse",
                            after=forwards, batchable=True))
            last = "fuse"
        graph.add(Stage(name="finalize", kind="finalize", state=ORDERED,
                        after=(last,)))
        return graph


def forward_stage_names(n_sources: int) -> tuple:
    """Canonical names of the N forward stages: the historical
    ``visible``/``thermal`` pair, then ``source2``, ``source3``, ...
    so every existing two-source plan, test and report is untouched."""
    extra = tuple(f"source{i}" for i in range(2, n_sources))
    return ("visible", "thermal") + extra
