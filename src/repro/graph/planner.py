"""Lowering: a :class:`FusionGraph` + session config -> executable plan.

The planner is the seam between *describing* the dataflow and
*driving* it.  It validates a graph against a
:class:`~repro.session.FusionConfig`-shaped object, then emits a
:class:`FusionPlan` that every executor interprets:

* a deterministic **schedule** (topological order, insertion-order
  tie-break);
* a partition into the **head** (ordered stages run on the capture
  thread, frame by frame), the **parallel wave** (stateless stages an
  executor may run concurrently), the **mid chain** (stages run after
  the wave, in dependency order) and the **tail** (the ordered
  finalize);
* **placement** per stage — ``auto`` resolved through the same cost
  models the session schedules with (fixed engine, the cost-model
  optimum for ``adaptive``, dynamic per-frame for ``online``), forced
  placements passed through, and, for an explicit mixed engine team,
  the fuse-stage affinity derived from the
  :class:`~repro.core.adaptive.PerLevelScheduler` plan;
* **batch groups** — runs of batchable stages a micro-batching
  executor may drive stack-major, with the canonical
  ``visible+thermal+fuse`` core flagged when it is eligible for the
  single-invocation stacked transform
  (:meth:`repro.core.fusion.ImageFusion.fuse_batch`);
* a modelled **per-stage cost** so ``repro-fusion plan`` can show
  where the frame time goes before anything runs.

If any stage between head and tail is ordered, the whole compute
region degrades to a sequential mid chain (``sequential_mid``):
every executor then runs those stages in frame order on its ordered
lane, which is exactly how stateful temporal fusion has always been
driven.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..hw.registry import create_engine, engine_names, precision_candidates
from .graph import FusionGraph, forward_stage_names
from .stage import AUTO, Stage

#: Canonical names the session's built-in stage kinds must keep, so
#: co-scheduling attribution, affinity keys and reports stay stable.
CANONICAL_NAMES = {
    "ingest": "ingest",
    "register": "register",
    "fuse": "fuse",
    "temporal": "temporal",
    "finalize": "finalize",
}

#: Placement label for host-side (unmodelled, CPU-ordered) stages.
HOST = "host"


@dataclass(frozen=True)
class PlannedStage:
    """One stage with everything the executors and reports need."""

    stage: Stage
    role: str            # "head" | "parallel" | "mid" | "tail"
    engine: str          # resolved placement (engine name or "host")
    model_seconds: float  # modelled compute cost on that engine
    #: kernel backend driving the stage's arithmetic ("numpy", "neon",
    #: "jit", ...; "" for host-side stages that never touch an engine)
    kernel: str = ""
    #: working dtype of that backend ("float32"/"float64"; "" for host)
    precision: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.stage.name,
            "kind": self.stage.kind,
            "state": self.stage.state,
            "after": list(self.stage.after),
            "batchable": self.stage.batchable,
            "role": self.role,
            "placement": self.engine,
            "forced": self.stage.placement != AUTO,
            "model_seconds": self.model_seconds,
            "kernel": self.kernel,
            "precision": self.precision,
        }


@dataclass(frozen=True)
class FusionPlan:
    """A lowered, executable description of one session's dataflow."""

    graph: FusionGraph
    schedule: Tuple[str, ...]
    head: Tuple[str, ...]
    parallel: Tuple[str, ...]
    mid: Tuple[str, ...]
    tail: Tuple[str, ...]
    compute: Tuple[str, ...]          # parallel+mid in schedule order
    sequential_mid: bool
    nodes: Dict[str, PlannedStage] = field(repr=False)
    #: batchable stage groups (the stacked core first, if eligible)
    batch_groups: Tuple[Tuple[str, ...], ...] = ()
    #: complete micro-batch execution order: (stage names, mode) with
    #: mode "core" (single stacked fuse_batch invocation), "stacked"
    #: (stage-major) or "frame" (frame-major run) — what the batch
    #: executor interprets, verbatim
    batch_schedule: Tuple[Tuple[Tuple[str, ...], str], ...] = ()
    fusable_core: bool = False
    dynamic_engine: bool = False
    affinity: Optional[Dict[str, str]] = None
    executor: str = "serial"
    engine: str = "adaptive"
    shape: str = ""
    levels: int = 3
    #: optimization-pass products (see :mod:`repro.graph.passes`):
    #: fused dispatch units (unit name -> ordered member stage names;
    #: the unit name appears in ``parallel``/``mid``/``compute`` while
    #: ``schedule``/``nodes`` keep every original stage)
    units: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: loop-invariant per-frame model cost, hoisted to plan time
    #: (engine name -> modelled whole-frame seconds)
    hoisted_frame_seconds: Dict[str, float] = field(default_factory=dict)
    #: steady-state buffers ride a per-worker scratch pool
    scratch: bool = False
    #: True once a pass pipeline has run over this plan
    optimized: bool = False
    #: one report dict per executed pass, in pipeline order
    pass_reports: Tuple[Dict[str, object], ...] = ()

    def __contains__(self, name: str) -> bool:
        return name in self.nodes

    def node(self, name: str) -> PlannedStage:
        try:
            return self.nodes[name]
        except KeyError:
            raise ConfigurationError(
                f"plan has no stage named {name!r}") from None

    def stage(self, name: str) -> Stage:
        return self.node(name).stage

    def is_unit(self, name: str) -> bool:
        """True when ``name`` is a fused dispatch unit, not a stage."""
        return name in self.units

    def members(self, name: str) -> Tuple[str, ...]:
        """The original stage names ``name`` executes, in order (a
        plain stage is its own single member)."""
        return self.units.get(name, (name,))

    @property
    def model_seconds_per_frame(self) -> float:
        return sum(node.model_seconds for node in self.nodes.values())

    def as_dict(self) -> Dict[str, object]:
        return {
            "executor": self.executor,
            "engine": self.engine,
            "shape": self.shape,
            "levels": self.levels,
            "schedule": list(self.schedule),
            "head": list(self.head),
            "parallel": list(self.parallel),
            "mid": list(self.mid),
            "tail": list(self.tail),
            "sequential_mid": self.sequential_mid,
            "dynamic_engine": self.dynamic_engine,
            "batch_groups": [list(group) for group in self.batch_groups],
            "batch_schedule": [[list(names), mode]
                               for names, mode in self.batch_schedule],
            "fusable_core": self.fusable_core,
            "affinity": dict(self.affinity) if self.affinity else None,
            "stages": [self.nodes[name].as_dict()
                       for name in self.schedule],
            "model_seconds_per_frame": self.model_seconds_per_frame,
            "optimization": {
                "optimized": self.optimized,
                "units": {name: list(members)
                          for name, members in self.units.items()},
                "hoisted_frame_seconds": dict(self.hoisted_frame_seconds),
                "scratch": self.scratch,
                "passes": [dict(report) for report in self.pass_reports],
            },
        }

    def describe(self) -> str:
        lines = [
            f"FusionPlan: executor={self.executor} engine={self.engine} "
            f"({self.shape}, levels={self.levels})",
            f"  {'stage':<12} {'role':<9} {'placement':<10} "
            f"{'state':<10} {'cost/frame':>12}",
        ]
        for name in self.schedule:
            node = self.nodes[name]
            cost = (f"{node.model_seconds * 1e3:.3f} ms"
                    if node.model_seconds else "-")
            placement = node.engine
            if (node.stage.placement == AUTO and self.dynamic_engine
                    and node.role in ("parallel", "mid")):
                placement = f"{node.engine}*"
            lines.append(f"  {name:<12} {node.role:<9} {placement:<10} "
                         f"{node.stage.state:<10} {cost:>12}")
        if self.dynamic_engine:
            lines.append("  (* online scheduler: engine re-selected "
                         "per frame; cost shown for the probe engine)")
        groups = (", ".join("+".join(g) for g in self.batch_groups)
                  or "none")
        lines.append(f"  batch groups : {groups}"
                     + (" (stacked-transform core)"
                        if self.fusable_core else ""))
        lines.append(f"  mid chain    : "
                     f"{'sequential (ordered stage present)' if self.sequential_mid else 'concurrent-eligible'}")
        if self.affinity:
            lines.append(f"  affinity     : {self.affinity}")
        kernels = ", ".join(
            f"{name}={self.nodes[name].kernel}/{self.nodes[name].precision}"
            for name in self.schedule if self.nodes[name].kernel)
        lines.append(f"  kernels      : {kernels or 'host-only'}")
        lines.append(f"  modelled cost: "
                     f"{self.model_seconds_per_frame * 1e3:.3f} ms/frame")
        if self.optimized:
            units = (", ".join(f"{name} = [{' '.join(members)}]"
                               for name, members in self.units.items())
                     or "none")
            hoisted = (", ".join(f"{eng}={s * 1e3:.3f}ms" for eng, s
                                 in sorted(self.hoisted_frame_seconds
                                           .items()))
                       or "none")
            lines.append(f"  fused units  : {units}")
            lines.append(f"  hoisted cost : {hoisted}")
            lines.append(f"  scratch pool : "
                         f"{'enabled' if self.scratch else 'disabled'}")
        return "\n".join(lines)


class Planner:
    """Lower a :class:`FusionGraph` against a session configuration."""

    #: Stage kinds allowed to ride the capture thread with ingest.
    _HEAD_KINDS = ("ingest", "register", "map")

    def lower(self, graph: FusionGraph, config) -> FusionPlan:
        graph.validate()
        self._check_consistency(graph, config)
        order = graph.topo_order()

        head: List[str] = []
        for name in order[:-1]:  # finalize (the topo sink) never joins
            stage = graph.stage(name)
            if (stage.ordered and stage.kind in self._HEAD_KINDS
                    and set(stage.after) <= set(head)):
                head.append(name)
            else:
                break
        tail = (order[-1],)
        compute = tuple(n for n in order if n not in head and n not in tail)

        sequential_mid = any(graph.stage(n).ordered for n in compute)
        head_set = set(head)
        if sequential_mid:
            parallel: Tuple[str, ...] = ()
            mid = compute
        else:
            parallel = tuple(
                n for n in compute
                if set(graph.stage(n).after) <= head_set
                and graph.stage(n).kind not in ("fuse", "temporal"))
            mid = tuple(n for n in compute if n not in parallel)
        if not mid:
            raise ConfigurationError(
                "lowered plan has an empty mid chain; the fuse or "
                "temporal stage must depend on the transform stages")

        engine_label, dynamic = self._resolve_default_engine(config)
        affinity = self._affinity(graph, config)
        placements = self._resolve_placements(graph, order, head_set,
                                              tail[0], engine_label,
                                              config, affinity)
        costs = self._model_costs(graph, order, placements, config)
        kernels = self._kernel_info(placements, config)
        batch_schedule, fusable_core = self._batch_schedule(
            graph, compute, head_set, sequential_mid)
        batch_groups = tuple(names for names, mode in batch_schedule
                             if mode in ("core", "stacked"))

        nodes = {}
        for name in order:
            role = ("head" if name in head_set
                    else "tail" if name in tail
                    else "parallel" if name in parallel
                    else "mid")
            kernel, precision = kernels[name]
            nodes[name] = PlannedStage(stage=graph.stage(name), role=role,
                                       engine=placements[name],
                                       model_seconds=costs[name],
                                       kernel=kernel, precision=precision)
        return FusionPlan(
            graph=graph, schedule=order, head=tuple(head),
            parallel=parallel, mid=mid, tail=tail, compute=compute,
            sequential_mid=sequential_mid, nodes=nodes,
            batch_groups=batch_groups, batch_schedule=batch_schedule,
            fusable_core=fusable_core,
            dynamic_engine=dynamic, affinity=affinity,
            executor=config.executor, engine=config.engine,
            shape=str(config.fusion_shape), levels=config.levels,
        )

    # ------------------------------------------------------------------
    def _check_consistency(self, graph: FusionGraph, config) -> None:
        fuse_like = [s for s in graph.stages()
                     if s.kind in ("fuse", "temporal")]
        if len(fuse_like) != 1:
            raise ConfigurationError(
                f"graph needs exactly one fuse or temporal stage, found "
                f"{[s.name for s in fuse_like] or 'none'}")
        forwards = [s for s in graph.stages() if s.kind == "forward"]
        if "fuse" in graph:
            # the fuse stage consumes every source pyramid; a graph
            # missing a forward (or not feeding it into fuse) must
            # fail here, not as an AttributeError deep inside an
            # executor thread
            missing = [n for n in ("visible", "thermal")
                       if n not in graph]
            if missing:
                raise ConfigurationError(
                    f"the fuse stage needs both forward stages; "
                    f"{missing} are missing from the graph (use a "
                    f"temporal stage instead to fuse without explicit "
                    f"forwards)")
            unfed = ({s.name for s in forwards}
                     - graph.ancestors("fuse"))
            if unfed:
                raise ConfigurationError(
                    f"the fuse stage must (transitively) depend on "
                    f"every forward stage; {sorted(unfed)} never reach "
                    f"it")
        if forwards:
            expected = set(forward_stage_names(len(forwards)))
            actual = {s.name for s in forwards}
            if actual != expected:
                raise ConfigurationError(
                    f"the {len(forwards)} forward stages must carry "
                    f"the canonical source names "
                    f"{sorted(expected)}, got {sorted(actual)} "
                    f"(affinity keys, reports and the session's "
                    f"source indexing depend on them)")
        for stage in graph.stages():
            want = CANONICAL_NAMES.get(stage.kind)
            if want is not None and stage.name != want:
                raise ConfigurationError(
                    f"built-in stage kind {stage.kind!r} must keep its "
                    f"canonical name {want!r}, got {stage.name!r} "
                    f"(affinity keys and reports depend on it)")
            if (stage.kind == "forward"
                    and stage.name not in ("visible", "thermal")
                    and not re.fullmatch(r"source[2-9]\d*", stage.name)):
                raise ConfigurationError(
                    f"forward stages are named 'visible', 'thermal' or "
                    f"'source<i>' (i >= 2), got {stage.name!r}")
            if stage.placement != AUTO:
                if stage.placement not in engine_names():
                    raise ConfigurationError(
                        f"stage {stage.name!r} placement "
                        f"{stage.placement!r} is not a registered "
                        f"engine; expected one of "
                        f"{sorted(engine_names())} or 'auto'")
                if stage.kind not in ("forward", "fuse"):
                    raise ConfigurationError(
                        f"stage {stage.name!r} (kind {stage.kind!r}) "
                        f"cannot be placed on an engine; only the "
                        f"forward and fuse stages compute through "
                        f"engine arithmetic (custom map stages run "
                        f"host-side NumPy)")
        if "temporal" in graph and not config.temporal:
            raise ConfigurationError(
                "graph contains a temporal stage but the config has "
                "temporal=False; enable FusionConfig(temporal=True)")
        if config.temporal and "temporal" not in graph:
            raise ConfigurationError(
                "config has temporal=True but the graph has no temporal "
                "stage; build it with FusionGraph.canonical(temporal=True)")
        if "register" in graph and not config.registration:
            raise ConfigurationError(
                "graph contains a register stage but the config has "
                "registration=False; enable FusionConfig(registration=True)")
        if (config.registration and "register" not in graph
                and "register" not in graph.dropped):
            raise ConfigurationError(
                "config has registration=True but the graph has no "
                "register stage; build it with "
                "FusionGraph.canonical(registration=True), or remove "
                "the stage explicitly with FusionGraph.drop('register') "
                "/ graph_overrides={'drop': ('register',)} to run this "
                "session without rig calibration")

    def _resolve_default_engine(self, config) -> Tuple[str, bool]:
        """Engine label ``auto`` placements resolve to, and whether the
        binding is re-decided per frame (the online scheduler).

        Mirrors the session exactly: a precision-pinned config narrows
        the scheduler candidate set to engines whose datapath supports
        that dtype, so the plan predicts the engine the session will
        actually bind."""
        from ..core.adaptive import CostModelScheduler
        candidates = precision_candidates(getattr(config, "precision",
                                                  None))
        if config.engine == "adaptive":
            decision = CostModelScheduler(
                engines=candidates,
                objective=config.objective,
                power_model=config.power_model,
            ).choose(config.fusion_shape, config.levels)
            return decision.engine.name, False
        if config.engine == "online":
            return candidates[0].name, True
        return config.engine, False

    def _resolve_placements(self, graph, order, head_set, tail_name,
                            engine_label, config,
                            affinity: Optional[Dict[str, str]]
                            ) -> Dict[str, str]:
        affinity = affinity or {}
        placements: Dict[str, str] = {}
        for name in order:
            stage = graph.stage(name)
            if (name in head_set or name == tail_name
                    or stage.kind == "map"):
                # host-side work: ordered session state and custom
                # NumPy stages never touch engine arithmetic
                placements[name] = HOST
            elif stage.placement != AUTO:
                placements[name] = stage.placement
            elif name in affinity:
                # a co-scheduled team pins this stage; the plan shows
                # (and costs) the engine the drive actually uses
                placements[name] = affinity[name]
            elif config.engine_team is not None:
                # remaining team stages are dispatched round-robin
                # across the team, frame by frame
                placements[name] = f"team({','.join(config.engine_team)})"
            else:
                placements[name] = engine_label
        return placements

    def _model_costs(self, graph, order, placements,
                     config) -> Dict[str, float]:
        shape, levels = config.fusion_shape, config.levels
        engines: Dict[str, object] = {}

        def engine_for(name: str):
            if name not in engines:
                engines[name] = create_engine(name)
            return engines[name]

        costs: Dict[str, float] = {}
        for name in order:
            stage = graph.stage(name)
            if placements[name] == HOST or stage.kind == "map":
                costs[name] = 0.0
                continue
            placement = placements[name]
            if placement.startswith("team("):
                # round-robin dispatch: the expected per-frame cost is
                # the mean over the team's engines
                team = [engine_for(n)
                        for n in placement[5:-1].split(",")]
                costs[name] = sum(self._stage_seconds(stage, e, shape,
                                                      levels)
                                  for e in team) / len(team)
            else:
                costs[name] = self._stage_seconds(
                    stage, engine_for(placement), shape, levels)
        return costs

    @staticmethod
    def _kernel_info(placements, config) -> Dict[str, Tuple[str, str]]:
        """Per-stage (kernel backend name, working dtype) pairs.

        Resolved through the same :meth:`Engine.make_backend` path the
        session binds, so a forced placement whose datapath cannot run
        the config's precision (FPGA under ``float64``) fails here, at
        plan time, with the engine's own error — not mid-stream."""
        precision = getattr(config, "precision", None)
        cache: Dict[str, Tuple[str, str]] = {}

        def info_for(name: str) -> Tuple[str, str]:
            if name not in cache:
                backend = create_engine(name).make_backend(precision)
                cache[name] = (backend.name, str(np.dtype(backend.dtype)))
            return cache[name]

        kernels: Dict[str, Tuple[str, str]] = {}
        for stage_name, placement in placements.items():
            if placement == HOST:
                kernels[stage_name] = ("", "")
            elif placement.startswith("team("):
                pairs = [info_for(n) for n in placement[5:-1].split(",")]
                names = sorted({kernel for kernel, _ in pairs})
                dtypes = sorted({dtype for _, dtype in pairs})
                kernels[stage_name] = ("|".join(names), "|".join(dtypes))
            else:
                kernels[stage_name] = info_for(placement)
        return kernels

    @staticmethod
    def _stage_seconds(stage, engine, shape, levels) -> float:
        if stage.kind == "forward":
            return engine.forward_time(shape, levels).total_s
        if stage.kind == "fuse":
            return (engine.fusion_time(shape, levels).total_s
                    + engine.inverse_time(shape, levels).total_s)
        if stage.kind == "temporal":
            # temporal fusion decomposes both modalities internally
            return engine.frame_time(shape, levels).total_s
        return 0.0

    def _batch_schedule(self, graph, compute, head_set, sequential_mid
                        ) -> Tuple[Tuple[Tuple[Tuple[str, ...], str], ...],
                                   bool]:
        """The batch executor's execution order over one micro-batch.

        The canonical forward×2+fuse core (when eligible) runs first as
        one stacked invocation; the remaining compute stages follow in
        schedule order, grouped into stage-major runs of batchable
        stages and frame-major runs of non-batchable ones (so a
        ``batchable=False`` sink keeps per-frame cadence).
        """
        if sequential_mid:
            return (), False
        core: Tuple[str, ...] = ()
        forward_names = tuple(
            name for name in graph.topo_order()
            if graph.stage(name).kind == "forward")
        if forward_names and "fuse" in graph:
            stages = [graph.stage(n) for n in forward_names]
            fuse = graph.stage("fuse")
            core_ok = (
                fuse.kind == "fuse"
                and all(s.batchable and s.placement == AUTO
                        for s in stages + [fuse])
                and all(set(s.after) <= head_set for s in stages)
                and set(fuse.after) <= set(forward_names) | head_set
            )
            if core_ok:
                core = forward_names + ("fuse",)
        schedule: List[Tuple[Tuple[str, ...], str]] = []
        if core:
            schedule.append((core, "core"))
        run: List[str] = []
        run_mode: Optional[str] = None
        for name in compute:
            if name in core:
                continue
            mode = ("stacked" if graph.stage(name).batchable else "frame")
            if mode != run_mode and run:
                schedule.append((tuple(run), run_mode))
                run = []
            run.append(name)
            run_mode = mode
        if run:
            schedule.append((tuple(run), run_mode))
        return tuple(schedule), bool(core)

    def _affinity(self, graph, config) -> Optional[Dict[str, str]]:
        """Stage-affinity map for a co-scheduling engine team: forced
        placements pass through; an auto-placed fuse stage is pinned
        where the per-level plan puts the bulk of the inverse transform
        (forwards stay round-robin so a pair's two decompositions land
        on different engines)."""
        if config.engine_team is None:
            return None
        affinity = {name: stage.placement for name, stage in
                    ((s.name, s) for s in graph.stages())
                    if stage.placement != AUTO
                    and stage.placement in config.engine_team}
        if "fuse" in graph and "fuse" not in affinity:
            from ..core.adaptive import PerLevelScheduler
            team = tuple(create_engine(name) for name in config.engine_team)
            try:
                plan = PerLevelScheduler(engines=team).plan(
                    config.fusion_shape, config.levels)
            except ConfigurationError:
                return affinity or None
            counts: Dict[str, int] = {}
            for name in plan.inverse_assignment:
                counts[name] = counts.get(name, 0) + 1
            affinity["fuse"] = max(counts.items(), key=lambda kv: kv[1])[0]
        return affinity or None
