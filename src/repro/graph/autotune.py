"""Plan autotuning: measure candidate plans once, reuse the winner.

The planner's defaults are safe, not optimal: the best executor, batch
size, worker count and engine placement for a given workload depend on
frame shape, graph structure and the host the session runs on.  The
:class:`PlanAutotuner` settles the question empirically — it enumerates
a bounded set of candidate configurations (executor x batch size x
workers x optimization-pipeline on/off x dtype-compatible placement),
drives each over a short pre-rendered calibration prefix, and applies
the fastest.  The incumbent configuration is always candidate zero, so
the winner is **never worse than the default** by construction.

Winners persist in an on-disk JSON cache keyed by the tuple the
measurement actually depends on — graph signature, config fingerprint,
frame shape and engine team — so the next session with the same key
skips the calibration entirely (:attr:`PlanDecision.source` tells a
cache hit from a fresh tune).  Cache files are treated as untrusted
input: corrupt JSON, stale cache versions, shape mismatches or invalid
overrides are logged on the ``repro.autotune`` logger and ignored — the
tuner re-measures and overwrites; it never crashes on a bad file and
never applies a plan whose key does not match.

``FusionConfig(autotune=True)`` consults the tuner on session
construction; ``repro tune`` runs it from the command line.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

log = logging.getLogger("repro.autotune")

#: bump when the cache entry layout changes; older entries re-tune
#: (2: precision joined the fingerprint and the tunable field set)
CACHE_VERSION = 2

#: config fields a cached decision may override (anything else in a
#: cache file marks the entry invalid)
TUNABLE_FIELDS = ("executor", "workers", "batch_size", "engine",
                  "optimize", "precision")


@dataclass(frozen=True)
class PlanDecision:
    """The autotuner's verdict for one (graph, config, shape) key."""

    #: config-field overrides of the winning candidate ({} = keep the
    #: config exactly as given)
    overrides: Dict[str, object]
    #: calibration throughput of the winner, frames/second
    fps: float
    #: ``"tuned"`` (measured this call) or ``"cache"`` (loaded)
    source: str
    #: the cache key the decision is stored under
    key: str
    #: every measured candidate as ``{"overrides", "fps"}`` rows,
    #: winner first by fps (empty on a cache hit)
    candidates: Tuple[Dict[str, object], ...] = field(default=())

    def apply(self, config):
        """``config`` with the winning overrides applied (autotuning
        disabled on the result so sessions built from it lower
        directly)."""
        return config.with_overrides(autotune=False, **self.overrides)

    def as_dict(self) -> Dict[str, object]:
        return {
            "overrides": dict(self.overrides),
            "fps": self.fps,
            "source": self.source,
            "key": self.key,
            "candidates": [dict(c) for c in self.candidates],
        }


def default_cache_dir() -> Path:
    """``$REPRO_PLAN_CACHE`` when set, else ``~/.cache/repro/plans``."""
    env = os.environ.get("REPRO_PLAN_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "plans"


@contextmanager
def cache_write_lock(path: Path):
    """Exclusive advisory lock serializing publishes of one cache entry.

    The lock lives in a sibling ``<entry>.lock`` file (never the entry
    itself — the entry is replaced by rename, which would drop the
    lock's inode).  ``fcntl.flock`` is advisory and process-wide, which
    is exactly the concurrency the sharded service creates; platforms
    without :mod:`fcntl` fall back to lockless last-writer-wins, which
    is still torn-file-free because every writer renames a complete
    pid-unique tmp file into place.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    lock_path = path.with_name(path.name + ".lock")
    with open(lock_path, "w") as lock_fh:
        fcntl.flock(lock_fh, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(lock_fh, fcntl.LOCK_UN)


class PlanAutotuner:
    """Measure candidate plans on a calibration prefix; cache winners.

    Parameters
    ----------
    cache_dir:
        Where winners persist (default :func:`default_cache_dir`).
    calibration_frames:
        Length of the pre-rendered prefix each candidate is measured
        on.  Short by design — the tuner compares candidates under
        identical input, it does not benchmark absolute throughput.
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 calibration_frames: int = 6):
        if calibration_frames < 1:
            raise ValueError(
                f"calibration_frames must be >= 1, got "
                f"{calibration_frames}")
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.calibration_frames = calibration_frames

    # -- cache keys ----------------------------------------------------
    def cache_key(self, config) -> str:
        """Hex digest identifying what a tuning verdict depends on:
        graph signature, config fingerprint, frame shape, engine
        team."""
        material = {
            "version": CACHE_VERSION,
            "graph": self._graph_signature(config),
            "config": self._config_fingerprint(config),
            "shape": [config.fusion_shape.width,
                      config.fusion_shape.height],
            "engine_team": (list(config.engine_team)
                            if config.engine_team else None),
        }
        blob = json.dumps(material, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:24]

    @staticmethod
    def _graph_signature(config) -> List[List[object]]:
        """The structural identity of the graph this config lowers."""
        from ..session.session import build_session_graph
        graph = build_session_graph(config)
        return [
            [stage.name, stage.kind, stage.state, stage.placement,
             stage.batchable, list(stage.after)]
            for stage in (graph.stage(name) for name in graph.topo_order())
        ]

    @staticmethod
    def _config_fingerprint(config) -> Dict[str, object]:
        """The config fields a tuning verdict is conditioned on — the
        workload identity, including the incumbent values of the axes
        the tuner searches (a different starting point is a different
        default candidate)."""
        return {
            "engine": config.engine,
            "executor": config.executor,
            "workers": config.workers,
            "queue_depth": config.queue_depth,
            "batch_size": config.batch_size,
            "levels": config.levels,
            "fusion_rule": config.fusion_rule,
            "objective": config.objective,
            "registration": config.registration,
            "temporal": config.temporal,
            "monitor": config.monitor,
            "optimize": config.optimize,
            "precision": getattr(config, "precision", None),
            "n_sources": getattr(config, "n_sources", 2),
        }

    def cache_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    # -- the decision --------------------------------------------------
    def decide(self, config) -> PlanDecision:
        """The winning plan decision for ``config``: loaded from the
        cache when a valid entry exists, otherwise measured on the
        calibration prefix and persisted."""
        key = self.cache_key(config)
        cached = self._load(key, config)
        if cached is not None:
            return cached
        decision = self._tune(config, key)
        self._store(decision, config)
        return decision

    # -- cache IO (tolerant of hostile files) --------------------------
    def _load(self, key: str, config) -> Optional[PlanDecision]:
        path = self.cache_path(key)
        try:
            raw = path.read_text()
        except FileNotFoundError:
            return None
        except OSError as exc:
            log.warning("plan cache %s unreadable (%s); re-tuning",
                        path, exc)
            return None
        try:
            entry = json.loads(raw)
        except ValueError:
            log.warning("plan cache %s is corrupt JSON; ignoring and "
                        "re-tuning", path)
            return None
        reason = self._validate(entry, key, config)
        if reason is not None:
            log.warning("plan cache %s rejected (%s); ignoring and "
                        "re-tuning", path, reason)
            return None
        return PlanDecision(overrides=dict(entry["overrides"]),
                            fps=float(entry["fps"]),
                            source="cache", key=key)

    def _validate(self, entry: object, key: str, config) -> Optional[str]:
        """Why ``entry`` must not be applied, or None when it is
        sound.  Every check guards the never-apply-a-wrong-plan
        contract; the caller logs the reason and re-tunes."""
        if not isinstance(entry, dict):
            return f"entry is {type(entry).__name__}, not an object"
        if entry.get("version") != CACHE_VERSION:
            return (f"stale cache version {entry.get('version')!r} "
                    f"(expected {CACHE_VERSION})")
        if entry.get("key") != key:
            return f"key mismatch: entry carries {entry.get('key')!r}"
        shape = entry.get("shape")
        expected = [config.fusion_shape.width, config.fusion_shape.height]
        if shape != expected:
            return f"shape mismatch: entry tuned for {shape}, not {expected}"
        overrides = entry.get("overrides")
        if not isinstance(overrides, dict):
            return "overrides missing or not an object"
        unknown = set(overrides) - set(TUNABLE_FIELDS)
        if unknown:
            return f"non-tunable override field(s) {sorted(unknown)}"
        if not isinstance(entry.get("fps"), (int, float)):
            return "fps missing or not a number"
        try:
            config.with_overrides(autotune=False, **overrides)
        except Exception as exc:
            return f"overrides do not validate: {exc}"
        return None

    def _store(self, decision: PlanDecision, config) -> None:
        path = self.cache_path(decision.key)
        entry = {
            "version": CACHE_VERSION,
            "key": decision.key,
            "shape": [config.fusion_shape.width,
                      config.fusion_shape.height],
            "overrides": dict(decision.overrides),
            "fps": decision.fps,
        }
        # Concurrent writers exist: shard processes autotuning the
        # same (graph, config, shape) key race here.  A fixed tmp name
        # would let two writers interleave write_text/replace and
        # publish a torn file, so each writer gets a pid-unique tmp
        # and the publish (tmp -> path rename) runs under an exclusive
        # lock file next to the entry — last writer wins, readers only
        # ever see a complete JSON document.
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
            tmp.write_text(json.dumps(entry, indent=2, sort_keys=True))
            with cache_write_lock(path):
                tmp.replace(path)
        except OSError as exc:
            log.warning("plan cache %s not persisted (%s); tuning "
                        "result applies to this session only", path, exc)

    # -- candidate enumeration and measurement -------------------------
    def candidates(self, config) -> List[Dict[str, object]]:
        """Bounded candidate set, incumbent (no overrides) first."""
        seen = set()
        out: List[Dict[str, object]] = []

        def add(ov: Dict[str, object]) -> None:
            # drop axes already at the config's value so duplicates of
            # the incumbent never re-measure
            ov = {k: v for k, v in ov.items()
                  if getattr(config, k) != v}
            marker = tuple(sorted(ov.items()))
            if marker not in seen:
                seen.add(marker)
                out.append(ov)

        add({})
        add({"optimize": True})
        add({"executor": "serial", "optimize": True})
        add({"executor": "pipeline", "workers": 2, "optimize": True})
        for batch in (4, 8):
            add({"executor": "batch", "batch_size": batch,
                 "optimize": True})
        for name in self._placement_axis(config):
            add({"engine": name, "optimize": True})
        for precision in self._precision_axis(config):
            add({"precision": precision, "optimize": True})
            for name in self._placement_axis(config, precision):
                add({"engine": name, "precision": precision,
                     "optimize": True})
        return out

    @staticmethod
    def _placement_axis(config, precision: Optional[str] = None
                        ) -> List[str]:
        """Alternative fixed placements that preserve output bits: only
        engines whose working dtype matches the incumbent's (a dtype
        change is a numerics change, not a tuning decision), and only
        when the config names a concrete engine to begin with.

        Registered extension engines (``jit``, ``gpu``) qualify through
        the same dtype test, so compiled backends become placement
        candidates automatically.  ``precision`` probes the axis under
        a candidate precision override instead of the config's own;
        engines that reject the pinned dtype are skipped, not fatal."""
        from ..errors import ConfigurationError
        from ..hw.registry import create_engine, engine_names
        if config.engine not in engine_names():
            return []
        if precision is None:
            precision = getattr(config, "precision", None)
        try:
            base = create_engine(config.engine).transform(
                1, precision=precision).backend.dtype
        except ConfigurationError:
            return []
        axis = []
        for name in engine_names():
            if name == config.engine:
                continue
            try:
                dtype = create_engine(name).transform(
                    1, precision=precision).backend.dtype
            except ConfigurationError:
                continue
            if dtype == base:
                axis.append(name)
        return axis

    @staticmethod
    def _precision_axis(config) -> List[str]:
        """Candidate precision overrides.  Only a config that already
        pinned ``precision="float64"`` opts into exploring the float32
        datapath (the documented tolerance-parity contract); the
        engine-native default stays bitwise by never moving this
        axis."""
        if getattr(config, "precision", None) == "float64":
            return ["float32"]
        return []

    def _calibration_pairs(self, config) -> List[Tuple[object, object]]:
        """A deterministic pre-rendered prefix shared by every
        candidate (rendering cost must not contaminate the
        comparison)."""
        from ..video.scene import SyntheticScene
        shape = config.fusion_shape
        scene = SyntheticScene(width=shape.width, height=shape.height,
                               seed=config.seed)
        return [(scene.render_visible(i / 25.0),
                 scene.render_thermal(i / 25.0))
                for i in range(self.calibration_frames)]

    def _measure(self, config, overrides: Dict[str, object],
                 pairs: List[Tuple[object, object]]) -> Optional[float]:
        """Wall-clock fps of one candidate over the calibration
        prefix, or None when the candidate does not apply to this
        config (validation rejects the combination)."""
        from ..errors import ReproError
        from ..session.session import FusionSession
        try:
            candidate = config.with_overrides(
                autotune=False, quality_metrics=False,
                keep_records=False, **overrides)
        except ReproError:
            return None
        session = FusionSession(candidate)
        try:
            for _ in session.stream(list(pairs)):
                pass
            fps = session._last_throughput.get("wall_fps", 0.0)
        except ReproError:
            return None
        finally:
            session.close()
        return float(fps)

    def _tune(self, config, key: str) -> PlanDecision:
        pairs = self._calibration_pairs(config)
        measured: List[Dict[str, object]] = []
        for overrides in self.candidates(config):
            fps = self._measure(config, overrides, pairs)
            if fps is None:
                continue
            measured.append({"overrides": overrides, "fps": fps})
        # the incumbent always measures, so `measured` is never empty;
        # strict > keeps the incumbent on ties
        best = measured[0]
        for row in measured[1:]:
            if row["fps"] > best["fps"]:
                best = row
        ranked = tuple(sorted(measured, key=lambda r: -r["fps"]))
        decision = PlanDecision(overrides=dict(best["overrides"]),
                                fps=float(best["fps"]),
                                source="tuned", key=key,
                                candidates=ranked)
        return decision

    def clear_cache(self) -> int:
        """Delete every cache entry under this tuner's directory;
        returns how many files were removed."""
        removed = 0
        if self.cache_dir.is_dir():
            for path in self.cache_dir.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


__all__ = ["CACHE_VERSION", "PlanAutotuner", "PlanDecision",
           "TUNABLE_FIELDS", "default_cache_dir"]
