"""The declarative plan API: frame processing as a dataflow IR.

The paper's system *is* a dataflow — capture, two forward DT-CWTs,
coefficient fusion, inverse, display — mapped onto heterogeneous
CPU/NEON/FPGA engines.  This package reifies that graph so it can be
inspected, extended and re-placed instead of living implicitly inside
the session:

* :class:`Stage` — one node: name, kind or ``fn(task)``, dataflow
  edges, state discipline (ordered/stateless), placement
  (engine/``auto``), batchability;
* :class:`FusionGraph` — the builder + validator (acyclicity, single
  ingest/finalize, no dangling stages), with
  :meth:`FusionGraph.canonical` producing the paper's own pipeline;
* :class:`Planner` — lowers a graph + session config into a
  :class:`FusionPlan`: stage schedule, engine placement via the
  session's cost models, batch grouping, modelled per-stage cost;
* :class:`FusionPlan` — what every executor in :mod:`repro.exec`
  interprets, and what ``repro-fusion plan`` prints.

Typical customization::

    from repro.graph import Stage

    graph = session.canonical_graph()
    graph.insert_after("fuse", Stage(
        name="denoise", fn=lambda task: task.__setattr__(
            "fused", smooth(task.fused))))
    report = session.run(32, graph=graph)   # any executor, same result
"""

from .autotune import PlanAutotuner, PlanDecision
from .graph import FusionGraph
from .passes import (PassPipeline, PassReport, PlanPass,
                     default_pipeline, optimize_plan)
from .planner import FusionPlan, PlannedStage, Planner
from .stage import AUTO, ORDERED, STAGE_KINDS, STATELESS, Stage

__all__ = [
    "AUTO", "ORDERED", "STAGE_KINDS", "STATELESS",
    "Stage", "FusionGraph", "FusionPlan", "PlannedStage", "Planner",
    "PassPipeline", "PassReport", "PlanPass",
    "default_pipeline", "optimize_plan",
    "PlanAutotuner", "PlanDecision",
]
