"""The dataflow IR's node type: one named stage of frame processing.

A :class:`Stage` declares *what* a piece of per-frame work is — never
*how* or *where* it runs.  The how/where live in the lowered
:class:`~repro.graph.planner.FusionPlan`: executors interpret the plan,
and the same graph can therefore be driven serially, pipelined across
threads, co-scheduled over an engine team, or micro-batched, without
the stage knowing.

Three declarations matter to the planner:

``state``
    ``"ordered"`` stages carry state across frames (calibration
    consensus, temporal masks, telemetry) and must execute in frame
    order on a single thread; ``"stateless"`` stages are pure per-task
    functions and may run concurrently — with other stages of the same
    frame and with other frames entirely.

``placement``
    ``"auto"`` binds the stage's arithmetic to the frame's selected
    engine (fixed, cost-model ``adaptive`` or per-frame ``online`` —
    the session's policy); a registered engine name pins it.

``batchable``
    The stage tolerates stack-major execution: a micro-batching
    executor may run it for a whole batch of frames before the next
    stage runs for any of them.  Arrays must follow the package-wide
    trailing-axes contract (frames stack on *leading* axes, every
    kernel indexes ``(..., H, W)``) for a vectorized implementation to
    be substitutable.  ``batchable=False`` keeps per-frame cadence:
    under the batch executor, contiguous runs of non-batchable stages
    execute frame-major (each frame passes through the whole run
    before the next frame enters it) — though stages *upstream* that
    are batchable, such as the canonical transform core, still
    compute their whole micro-batch first.  Ordered stages can never
    be batchable.

Custom stages use ``kind="map"`` and supply ``fn(task)``, a mutator of
the in-flight frame task (fields ``visible``, ``thermal``,
``pyr_visible``, ``pyr_thermal``, ``fused``).  The built-in kinds
(``ingest``/``register``/``forward``/``fuse``/``temporal``/
``finalize``) carry no ``fn`` — the session binds its own
implementations to them when it interprets the plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional, Tuple

from ..errors import ConfigurationError

#: State disciplines a stage may declare.
ORDERED = "ordered"
STATELESS = "stateless"

#: Stage kinds the session knows how to execute.  ``map`` is the only
#: user-facing kind; the rest name the canonical pipeline's own work.
STAGE_KINDS = ("ingest", "register", "forward", "fuse", "temporal",
               "finalize", "map")

#: Placement value meaning "bind to the frame's selected engine".
AUTO = "auto"


@dataclass(frozen=True)
class Stage:
    """One node of a :class:`~repro.graph.FusionGraph`.

    Parameters
    ----------
    name:
        Unique identifier; also the hetero executor's affinity key and
        the key placements/costs are reported under.
    kind:
        One of :data:`STAGE_KINDS`.  ``map`` requires ``fn``.
    fn:
        ``fn(task)`` mutating the in-flight frame task (``map`` only).
    after:
        Names of the stages this one consumes — the dataflow edges.
    state:
        ``"ordered"`` or ``"stateless"`` (see module docstring).
    placement:
        ``"auto"`` or a registered engine name.
    batchable:
        Stage tolerates stack-major micro-batched execution.
    """

    name: str
    kind: str = "map"
    fn: Optional[Callable[[Any], None]] = field(default=None, compare=False)
    after: Tuple[str, ...] = ()
    state: str = STATELESS
    placement: str = AUTO
    batchable: bool = False

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError(
                f"stage name must be a non-empty string, got {self.name!r}")
        if self.kind not in STAGE_KINDS:
            raise ConfigurationError(
                f"unknown stage kind {self.kind!r} for stage "
                f"{self.name!r}; expected one of {STAGE_KINDS}")
        if self.state not in (ORDERED, STATELESS):
            raise ConfigurationError(
                f"stage {self.name!r} state must be {ORDERED!r} or "
                f"{STATELESS!r}, got {self.state!r}")
        if self.kind == "map" and not callable(self.fn):
            raise ConfigurationError(
                f"custom stage {self.name!r} needs a callable fn(task)")
        if self.kind != "map" and self.fn is not None:
            raise ConfigurationError(
                f"stage {self.name!r} of kind {self.kind!r} binds the "
                f"session's own implementation; fn is only for kind='map'")
        if not isinstance(self.placement, str) or not self.placement:
            raise ConfigurationError(
                f"stage {self.name!r} placement must be 'auto' or an "
                f"engine name, got {self.placement!r}")
        if self.ordered and self.batchable:
            raise ConfigurationError(
                f"stage {self.name!r} is ordered (stateful across "
                f"frames) and cannot be batchable: stack-major "
                f"execution would reorder its state updates")
        if isinstance(self.after, str):
            raise ConfigurationError(
                f"stage {self.name!r} 'after' must be a tuple of stage "
                f"names, not the bare string {self.after!r}")
        object.__setattr__(self, "after", tuple(self.after))
        for dep in self.after:
            if not dep or not isinstance(dep, str):
                raise ConfigurationError(
                    f"stage {self.name!r} has a non-string dependency "
                    f"{dep!r}")

    @property
    def ordered(self) -> bool:
        return self.state == ORDERED

    def with_after(self, after: Tuple[str, ...]) -> "Stage":
        """A copy of this stage with rewritten dependencies."""
        return replace(self, after=tuple(after))

    def with_placement(self, placement: str) -> "Stage":
        """A copy of this stage pinned to ``placement``."""
        return replace(self, placement=placement)

    def describe(self) -> str:
        flags = [self.state]
        if self.batchable:
            flags.append("batchable")
        deps = ", ".join(self.after) if self.after else "-"
        return (f"{self.name:<12} kind={self.kind:<8} "
                f"[{' '.join(flags)}] placement={self.placement} "
                f"<- {deps}")
