"""Dependency-free SVG rendering of the paper's evaluation figures.

Generates standalone SVG line charts of Fig. 9(a)-(c) and Fig. 10 from
the platform model — no plotting library needed.  Exposed on the CLI as
``repro-fusion figures`` and scripted by ``tools/plot_svg.py``.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, Union

from .errors import ConfigurationError
from .system.runtime import (
    SweepRow,
    energy_sweep,
    forward_stage_sweep,
    inverse_stage_sweep,
    total_time_sweep,
)

PathLike = Union[str, Path]

COLORS = {"arm": "#d62728", "neon": "#1f77b4", "fpga": "#2ca02c"}
WIDTH, HEIGHT = 560, 360
MARGIN_L, MARGIN_R, MARGIN_T, MARGIN_B = 64, 24, 40, 56


def _scale(values: Sequence[float], lo: float, hi: float,
           out_lo: float, out_hi: float) -> List[float]:
    span = (hi - lo) or 1.0
    return [out_lo + (v - lo) / span * (out_hi - out_lo) for v in values]


def render_chart(rows: Sequence[SweepRow], title: str,
                 x_label: str = "frame size") -> str:
    """One SVG line chart (one series per engine) from sweep rows."""
    if not rows:
        raise ConfigurationError("cannot chart an empty sweep")
    labels = [str(r.shape) for r in rows]
    names = sorted(rows[0].values)
    series = {name: [r.values[name] for r in rows] for name in names}
    y_max = max(max(vals) for vals in series.values()) * 1.08

    xs = _scale(range(len(rows)), 0, len(rows) - 1,
                MARGIN_L, WIDTH - MARGIN_R)
    plot_bottom = HEIGHT - MARGIN_B
    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{HEIGHT}" font-family="sans-serif" font-size="12">',
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>',
        f'<text x="{WIDTH / 2}" y="22" text-anchor="middle" '
        f'font-size="14" font-weight="bold">{title}</text>',
        f'<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" '
        f'y2="{plot_bottom}" stroke="black"/>',
        f'<line x1="{MARGIN_L}" y1="{plot_bottom}" '
        f'x2="{WIDTH - MARGIN_R}" y2="{plot_bottom}" stroke="black"/>',
    ]
    for tick in range(5):
        value = y_max * tick / 4
        y = plot_bottom - (plot_bottom - MARGIN_T) * tick / 4
        parts.append(f'<line x1="{MARGIN_L - 4}" y1="{y:.1f}" '
                     f'x2="{WIDTH - MARGIN_R}" y2="{y:.1f}" '
                     f'stroke="#dddddd"/>')
        parts.append(f'<text x="{MARGIN_L - 8}" y="{y + 4:.1f}" '
                     f'text-anchor="end">{value:.3g}</text>')
    for x, label in zip(xs, labels):
        parts.append(f'<text x="{x:.1f}" y="{plot_bottom + 18}" '
                     f'text-anchor="middle">{label}</text>')
    parts.append(f'<text x="{WIDTH / 2}" y="{HEIGHT - 12}" '
                 f'text-anchor="middle">{x_label}</text>')

    for name in names:
        color = COLORS.get(name, "#555555")
        values = series[name]
        ys = [plot_bottom - (v / y_max) * (plot_bottom - MARGIN_T)
              for v in values]
        points = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(xs, ys))
        parts.append(f'<polyline points="{points}" fill="none" '
                     f'stroke="{color}" stroke-width="2"/>')
        for x, y in zip(xs, ys):
            parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3.2" '
                         f'fill="{color}"/>')

    for i, name in enumerate(names):
        x0 = MARGIN_L + 12 + i * 110
        color = COLORS.get(name, "#555555")
        parts.append(f'<rect x="{x0}" y="{MARGIN_T + 4}" width="12" '
                     f'height="12" fill="{color}"/>')
        parts.append(f'<text x="{x0 + 18}" y="{MARGIN_T + 14}">'
                     f'{name.upper()}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


#: name -> (sweep function, chart title)
FIGURES = {
    "fig9a": (forward_stage_sweep,
              "Fig. 9(a) Forward DT-CWT time (s / 10 frames)"),
    "fig9b": (total_time_sweep, "Fig. 9(b) Total time (s / 10 frames)"),
    "fig9c": (inverse_stage_sweep,
              "Fig. 9(c) Inverse DT-CWT time (s / 10 frames)"),
    "fig10": (energy_sweep, "Fig. 10 Total energy (mJ / 10 frames)"),
}


def generate_figures(out_dir: PathLike, levels: int = 3,
                     names: Sequence[str] = tuple(FIGURES)) -> List[Path]:
    """Render the requested figures into ``out_dir``; returns the paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for name in names:
        if name not in FIGURES:
            raise ConfigurationError(
                f"unknown figure {name!r}; known: {sorted(FIGURES)}"
            )
        sweep_fn, title = FIGURES[name]
        svg = render_chart(sweep_fn(levels=levels), title)
        path = out / f"{name}.svg"
        path.write_text(svg)
        written.append(path)
    return written
