"""Stage profiler for the fusion pipeline (reproduces Fig. 2).

The paper profiles the software-only fusion of two input images and
finds the forward and inverse DT-CWT to be the dominant stages — the
justification for accelerating exactly those two.  This module offers
two profiling paths:

* :func:`profile_model` — analytic: attributes the calibrated engine
  model's stage times, which is what the Fig. 2 benchmark prints;
* :class:`PipelineProfiler` — empirical: wall-clock timing of the
  actual Python stages, used to sanity-check that the *functional*
  implementation has the same dominance structure.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Optional

import numpy as np

from ..hw.arm import ArmEngine
from ..hw.engine import Engine
from ..types import FrameShape, StageProfile
from .fusion import ImageFusion


#: Stage names in pipeline order, as profiled by the paper's Fig. 2.
STAGES = (
    "forward_dtcwt_visible",
    "forward_dtcwt_thermal",
    "fusion_rule",
    "inverse_dtcwt",
)


def profile_model(shape: FrameShape, levels: int = 3,
                  engine: Optional[Engine] = None) -> StageProfile:
    """Analytic stage profile of fusing one frame pair.

    With the default (ARM) engine this is the software-only profile the
    paper shows in Fig. 2: both transforms dominate.
    """
    engine = engine if engine is not None else ArmEngine()
    profile = StageProfile()
    fwd = engine.forward_time(shape, levels).total_s
    profile.add("forward_dtcwt_visible", fwd)
    profile.add("forward_dtcwt_thermal", fwd)
    profile.add("fusion_rule", engine.fusion_time(shape, levels).total_s)
    profile.add("inverse_dtcwt", engine.inverse_time(shape, levels).total_s)
    return profile


class PipelineProfiler:
    """Wall-clock profiler around the staged :class:`ImageFusion` API."""

    def __init__(self, fusion: Optional[ImageFusion] = None):
        self.fusion = fusion if fusion is not None else ImageFusion()
        self.profile = StageProfile()

    @contextmanager
    def _stage(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.profile.add(name, time.perf_counter() - start)

    def run(self, visible: np.ndarray, thermal: np.ndarray) -> np.ndarray:
        """Fuse one frame pair, accumulating stage timings."""
        with self._stage("forward_dtcwt_visible"):
            pyr_a = self.fusion.decompose(visible)
        with self._stage("forward_dtcwt_thermal"):
            pyr_b = self.fusion.decompose(thermal)
        with self._stage("fusion_rule"):
            pyr_f = self.fusion.combine(pyr_a, pyr_b)
        with self._stage("inverse_dtcwt"):
            fused = self.fusion.reconstruct(pyr_f)
        return fused

    def percentages(self) -> Dict[str, float]:
        return self.profile.percentages()

    def dominant_stages(self, count: int = 2) -> list:
        """The ``count`` most expensive stages (Fig. 2's headline)."""
        return [name for name, _ in self.profile.ranked()[:count]]
