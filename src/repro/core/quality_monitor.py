"""Runtime fusion-quality monitoring and sensor-failure detection.

A surveillance system must notice when one of its sensors degrades —
a fogged lens, a failed microbolometer, a saturated visible camera —
because fusing a dead channel *subtracts* quality.  The monitor tracks
per-source activity and the fused result's quality with exponential
moving averages, flags anomalies, and recommends a fallback policy
(fuse normally / pass through the healthy source).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..errors import FusionError
from .metrics import petrovic_qabf, spatial_frequency

#: Recommended actions, in escalating order of degradation.
ACTION_FUSE = "fuse"
ACTION_PASS_VISIBLE = "pass-visible"
ACTION_PASS_THERMAL = "pass-thermal"


@dataclass
class MonitorReading:
    """One frame's health assessment."""

    frame: int
    visible_activity: float
    thermal_activity: float
    fused_qabf: float
    visible_healthy: bool
    thermal_healthy: bool
    action: str


class QualityMonitor:
    """EWMA-based health tracking over the fusion stream.

    Parameters
    ----------
    alpha:
        EWMA weight of the newest observation (0..1].
    activity_floor:
        Fraction of the running baseline below which a source is
        declared degraded (e.g. 0.25 = lost three quarters of its
        detail activity).
    warmup:
        Frames used to establish baselines before flagging anything.
    """

    def __init__(self, alpha: float = 0.2, activity_floor: float = 0.25,
                 warmup: int = 3):
        if not 0.0 < alpha <= 1.0:
            raise FusionError("alpha must be in (0, 1]")
        if not 0.0 < activity_floor < 1.0:
            raise FusionError("activity floor must be in (0, 1)")
        if warmup < 1:
            raise FusionError("warmup must be >= 1 frame")
        self.alpha = alpha
        self.activity_floor = activity_floor
        self.warmup = warmup
        self._frame = 0
        self._baseline: Dict[str, Optional[float]] = {"visible": None,
                                                      "thermal": None}
        self.history: List[MonitorReading] = []

    # ------------------------------------------------------------------
    def _update_baseline(self, key: str, value: float) -> float:
        current = self._baseline[key]
        if current is None:
            self._baseline[key] = value
        else:
            self._baseline[key] = (1 - self.alpha) * current \
                + self.alpha * value
        return self._baseline[key]

    def observe(self, visible: np.ndarray, thermal: np.ndarray,
                fused: np.ndarray) -> MonitorReading:
        """Assess one frame triple; returns the reading (also stored)."""
        self._frame += 1
        act_v = spatial_frequency(np.asarray(visible, dtype=np.float64))
        act_t = spatial_frequency(np.asarray(thermal, dtype=np.float64))
        qabf = petrovic_qabf(visible, thermal, fused)

        in_warmup = self._frame <= self.warmup
        if in_warmup:
            self._update_baseline("visible", act_v)
            self._update_baseline("thermal", act_t)
            healthy_v = healthy_t = True
        else:
            base_v = self._baseline["visible"] or 1e-9
            base_t = self._baseline["thermal"] or 1e-9
            healthy_v = act_v >= self.activity_floor * base_v
            healthy_t = act_t >= self.activity_floor * base_t
            # only track baselines with healthy observations so a dead
            # sensor cannot drag its own alarm threshold down
            if healthy_v:
                self._update_baseline("visible", act_v)
            if healthy_t:
                self._update_baseline("thermal", act_t)

        if healthy_v and healthy_t:
            action = ACTION_FUSE
        elif healthy_v:
            action = ACTION_PASS_VISIBLE
        elif healthy_t:
            action = ACTION_PASS_THERMAL
        else:
            action = ACTION_FUSE  # both degraded: fusion is still best

        reading = MonitorReading(
            frame=self._frame,
            visible_activity=act_v,
            thermal_activity=act_t,
            fused_qabf=qabf,
            visible_healthy=healthy_v,
            thermal_healthy=healthy_t,
            action=action,
        )
        self.history.append(reading)
        return reading

    # ------------------------------------------------------------------
    @property
    def alarms(self) -> int:
        """Frames on which at least one source was flagged."""
        return sum(1 for r in self.history
                   if not (r.visible_healthy and r.thermal_healthy))

    def mean_qabf(self) -> float:
        if not self.history:
            raise FusionError("no frames observed yet")
        return float(np.mean([r.fused_qabf for r in self.history]))
