"""Image fusion quality metrics.

The paper motivates the DT-CWT by its fusion quality (better SNR and
perception than pyramid schemes, its references [2][4][12]); this module
provides the standard no-reference and reference-based metrics used in
that literature so the claim can be evaluated quantitatively:

* :func:`entropy` — information content of the fused image,
* :func:`mutual_information` — MI between each source and the fused
  result (the fusion-MI metric of Qu et al.),
* :func:`petrovic_qabf` — the Q^AB/F gradient-preservation metric
  (Xydeas & Petrovic), the de-facto standard for fusion benchmarks,
* :func:`ssim` — structural similarity against a reference,
* :func:`spatial_frequency`, :func:`average_gradient` — sharpness
  measures,
* :func:`psnr` — fidelity against a known ground truth.
"""

from __future__ import annotations

import numpy as np

from ..errors import FusionError


def _as_gray(image: np.ndarray) -> np.ndarray:
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim != 2:
        raise FusionError(f"metrics expect 2-D images, got shape {arr.shape}")
    return arr


def entropy(image: np.ndarray, bins: int = 256) -> float:
    """Shannon entropy of the intensity histogram, in bits."""
    arr = _as_gray(image)
    hist, _ = np.histogram(arr, bins=bins)
    p = hist.astype(np.float64)
    p = p[p > 0]
    p /= p.sum()
    return float(-np.sum(p * np.log2(p)))


def mutual_information(a: np.ndarray, b: np.ndarray, bins: int = 64) -> float:
    """Mutual information between two images, in bits."""
    a = _as_gray(a).ravel()
    b = _as_gray(b).ravel()
    if a.size != b.size:
        raise FusionError("mutual information needs equally sized images")
    joint, _, _ = np.histogram2d(a, b, bins=bins)
    pxy = joint / joint.sum()
    px = pxy.sum(axis=1, keepdims=True)
    py = pxy.sum(axis=0, keepdims=True)
    mask = pxy > 0
    return float(np.sum(pxy[mask] * np.log2(pxy[mask] / (px @ py)[mask])))


def fusion_mutual_information(src_a: np.ndarray, src_b: np.ndarray,
                              fused: np.ndarray, bins: int = 64) -> float:
    """MI-based fusion quality: MI(A;F) + MI(B;F) (Qu et al.)."""
    return (mutual_information(src_a, fused, bins)
            + mutual_information(src_b, fused, bins))


def _sobel(image: np.ndarray):
    """Sobel gradient magnitude and orientation (edge-replicated)."""
    arr = np.pad(_as_gray(image), 1, mode="edge")
    gx = (arr[1:-1, 2:] - arr[1:-1, :-2]) * 2.0 \
        + (arr[:-2, 2:] - arr[:-2, :-2]) \
        + (arr[2:, 2:] - arr[2:, :-2])
    gy = (arr[2:, 1:-1] - arr[:-2, 1:-1]) * 2.0 \
        + (arr[2:, :-2] - arr[:-2, :-2]) \
        + (arr[2:, 2:] - arr[:-2, 2:])
    mag = np.hypot(gx, gy)
    ang = np.arctan2(gy, gx + 1e-12)
    return mag, ang


def petrovic_qabf(src_a: np.ndarray, src_b: np.ndarray,
                  fused: np.ndarray) -> float:
    """Q^AB/F edge-transfer metric (Xydeas & Petrovic, 2000).

    Measures how much of each source's gradient strength and
    orientation survives into the fused image, weighted by source edge
    strength.  1.0 means perfect edge transfer.
    """
    ga, aa = _sobel(src_a)
    gb, ab = _sobel(src_b)
    gf, af = _sobel(fused)

    def edge_preservation(gs, as_, gf_, af_):
        with np.errstate(divide="ignore", invalid="ignore"):
            g_ratio = np.where(gs > gf_,
                               np.where(gs > 0, gf_ / np.maximum(gs, 1e-12), 0.0),
                               np.where(gf_ > 0, gs / np.maximum(gf_, 1e-12), 0.0))
        delta = np.abs(as_ - af_)
        delta = np.minimum(delta, np.pi - np.minimum(delta, np.pi))
        a_pres = 1.0 - 2.0 * delta / np.pi
        # the standard sigmoidal sharpening of both preservation terms
        qg = 0.9994 / (1.0 + np.exp(-15.0 * (g_ratio - 0.5)))
        qa = 0.9879 / (1.0 + np.exp(-22.0 * (a_pres - 0.8)))
        return qg * qa

    qaf = edge_preservation(ga, aa, gf, af)
    qbf = edge_preservation(gb, ab, gf, af)
    weights = ga + gb
    total = np.sum(weights)
    if total <= 0.0:
        return 0.0
    return float(np.sum(qaf * ga + qbf * gb) / total)


def ssim(a: np.ndarray, b: np.ndarray, data_range: float = None,
         window: int = 7) -> float:
    """Mean structural similarity (uniform window variant)."""
    a = _as_gray(a)
    b = _as_gray(b)
    if a.shape != b.shape:
        raise FusionError("SSIM needs equally shaped images")
    if data_range is None:
        data_range = max(a.max() - a.min(), b.max() - b.min(), 1e-12)
    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2

    def box(x):
        out = np.zeros_like(x)
        half = window // 2
        count = 0
        for dy in range(-half, half + 1):
            for dx in range(-half, half + 1):
                out += np.roll(np.roll(x, dy, axis=0), dx, axis=1)
                count += 1
        return out / count

    mu_a, mu_b = box(a), box(b)
    var_a = box(a * a) - mu_a ** 2
    var_b = box(b * b) - mu_b ** 2
    cov = box(a * b) - mu_a * mu_b
    num = (2 * mu_a * mu_b + c1) * (2 * cov + c2)
    den = (mu_a ** 2 + mu_b ** 2 + c1) * (var_a + var_b + c2)
    return float(np.mean(num / den))


def spatial_frequency(image: np.ndarray) -> float:
    """Row/column frequency measure of overall activity (sharpness)."""
    arr = _as_gray(image)
    row = np.diff(arr, axis=1)
    col = np.diff(arr, axis=0)
    return float(np.sqrt(np.mean(row ** 2) + np.mean(col ** 2)))


def average_gradient(image: np.ndarray) -> float:
    """Mean Sobel gradient magnitude."""
    mag, _ = _sobel(image)
    return float(np.mean(mag))


def psnr(reference: np.ndarray, image: np.ndarray,
         data_range: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB against a reference."""
    ref = _as_gray(reference)
    img = _as_gray(image)
    if ref.shape != img.shape:
        raise FusionError("PSNR needs equally shaped images")
    mse = float(np.mean((ref - img) ** 2))
    if mse == 0.0:
        return float("inf")
    return float(10.0 * np.log10(data_range ** 2 / mse))


def fusion_report(src_a: np.ndarray, src_b: np.ndarray,
                  fused: np.ndarray) -> dict:
    """All no-reference fusion metrics in one dictionary."""
    return {
        "entropy": entropy(fused),
        "mutual_information": fusion_mutual_information(src_a, src_b, fused),
        "qabf": petrovic_qabf(src_a, src_b, fused),
        "spatial_frequency": spatial_frequency(fused),
        "average_gradient": average_gradient(fused),
    }
