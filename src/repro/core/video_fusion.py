"""Temporal video fusion: coefficient smoothing and scene-change reset.

The paper fuses every frame pair independently ("video fusion is just a
special case of image fusion ... fused together continuously").  A
production video pipeline usually adds two temporal refinements, both
implemented here as thin layers over :class:`~repro.core.fusion.ImageFusion`:

* **temporal consistency** — the per-coefficient source-selection mask
  is low-pass filtered over time, suppressing the frame-to-frame
  selection flicker that independent max-magnitude fusion produces on
  noisy sensors (thermal NETD makes ties flip every frame);
* **scene-change reset** — a cheap low-pass-band distance detects cuts
  or large motion and resets the temporal state so the smoothing never
  ghosts across a scene change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..dtcwt.transform2d import DtcwtPyramid
from ..errors import FusionError
from .fusion import ImageFusion


@dataclass
class TemporalStats:
    """Diagnostics of the temporal fusion state."""

    frames: int = 0
    scene_resets: int = 0
    mean_flicker: float = 0.0  # mean |mask - previous mask|


class TemporalFusion:
    """Flicker-suppressed video fusion.

    Parameters
    ----------
    fusion:
        The per-frame fusion engine (defaults to the paper's DT-CWT +
        max-magnitude rule, 3 levels).
    smoothing:
        IIR coefficient of the selection-mask filter in [0, 1): 0 means
        no smoothing (paper behaviour), 0.8 means 80 % of the previous
        mask is kept.  Smoothed masks blend the two sources' coefficients
        instead of hard-selecting.
    scene_threshold:
        Relative low-pass distance (0..1) above which the temporal
        state resets.
    """

    def __init__(self, fusion: Optional[ImageFusion] = None,
                 smoothing: float = 0.7, scene_threshold: float = 0.35):
        if not 0.0 <= smoothing < 1.0:
            raise FusionError(f"smoothing must be in [0, 1), got {smoothing}")
        if scene_threshold <= 0.0:
            raise FusionError("scene threshold must be positive")
        self.fusion = fusion if fusion is not None else ImageFusion()
        self.smoothing = smoothing
        self.scene_threshold = scene_threshold
        self.stats = TemporalStats()
        self._masks: Optional[List[np.ndarray]] = None
        self._previous_lowpass: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget all temporal state (e.g. on a known stream restart)."""
        self._masks = None
        self._previous_lowpass = None

    def fuse(self, visible: np.ndarray, thermal: np.ndarray) -> np.ndarray:
        """Fuse one frame pair with temporal mask smoothing."""
        pyr_a = self.fusion.decompose(np.asarray(visible, dtype=np.float64))
        pyr_b = self.fusion.decompose(np.asarray(thermal, dtype=np.float64))

        if self._scene_changed(pyr_a):
            self.reset()
            self.stats.scene_resets += 1

        masks = self._select_masks(pyr_a, pyr_b)
        if self._masks is not None:
            flicker = float(np.mean([np.mean(np.abs(new - old))
                                     for new, old in zip(masks, self._masks)]))
            masks = [self.smoothing * old + (1.0 - self.smoothing) * new
                     for new, old in zip(masks, self._masks)]
        else:
            flicker = 0.0
        self._masks = masks
        self._previous_lowpass = pyr_a.lowpass.copy()

        fused = self._blend(pyr_a, pyr_b, masks)
        self.stats.frames += 1
        self.stats.mean_flicker = (
            (self.stats.mean_flicker * (self.stats.frames - 1) + flicker)
            / self.stats.frames
        )
        return self.fusion.reconstruct(fused)

    # ------------------------------------------------------------------
    @staticmethod
    def _select_masks(pyr_a: DtcwtPyramid,
                      pyr_b: DtcwtPyramid) -> List[np.ndarray]:
        """Per-level soft masks: 1 where source A wins, 0 where B wins."""
        return [
            (np.abs(band_a) >= np.abs(band_b)).astype(np.float64)
            for band_a, band_b in zip(pyr_a.highpasses, pyr_b.highpasses)
        ]

    def _blend(self, pyr_a: DtcwtPyramid, pyr_b: DtcwtPyramid,
               masks: List[np.ndarray]) -> DtcwtPyramid:
        highpasses = tuple(
            mask * band_a + (1.0 - mask) * band_b
            for mask, band_a, band_b in zip(masks, pyr_a.highpasses,
                                            pyr_b.highpasses)
        )
        return DtcwtPyramid(
            lowpass=(pyr_a.lowpass + pyr_b.lowpass) / 2.0,
            highpasses=highpasses,
            original_shape=pyr_a.original_shape,
            padded_shape=pyr_a.padded_shape,
            levels=pyr_a.levels,
        )

    def _scene_changed(self, pyr_a: DtcwtPyramid) -> bool:
        if self._previous_lowpass is None:
            return False
        if self._previous_lowpass.shape != pyr_a.lowpass.shape:
            return True
        prev = self._previous_lowpass
        diff = float(np.mean(np.abs(pyr_a.lowpass - prev)))
        scale = float(np.mean(np.abs(prev))) + 1e-9
        return diff / scale > self.scene_threshold


def selection_flicker(fuser, visible_frames, thermal_frames) -> float:
    """Mean frame-to-frame change of the fused output (flicker proxy).

    ``fuser`` is any ``f(visible, thermal) -> fused`` callable; the
    benchmark uses this to compare independent vs temporal fusion on a
    noisy static scene, where any output change IS flicker.
    """
    previous = None
    deltas = []
    for visible, thermal in zip(visible_frames, thermal_frames):
        fused = fuser(visible, thermal)
        if previous is not None:
            deltas.append(float(np.mean(np.abs(fused - previous))))
        previous = fused
    if not deltas:
        raise FusionError("need at least two frames to measure flicker")
    return float(np.mean(deltas))
