"""DT-CWT based image and video fusion (the paper's core algorithm).

The algorithm of Section III: apply the forward DT-CWT to the visible
and the infrared frame, combine the coefficient pyramids with a fusion
rule, and reconstruct the fused frame with the inverse DT-CWT.

:class:`ImageFusion` is the reusable object (transform + rule +
engine); :func:`fuse_images` the one-shot convenience.  The class also
exposes the *staged* execution used by the profiler and the runtime so
each stage can be timed and attributed the way Fig. 2 and Fig. 9 do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..dtcwt.coeffs import DtcwtBanks
from ..dtcwt.transform2d import Dtcwt2D, DtcwtPyramid
from ..errors import FusionError
from .fusion_rules import FusionRule, MaxMagnitudeRule


@dataclass
class FusionResult:
    """Fused frame plus the intermediate pyramids (for inspection)."""

    fused: np.ndarray
    pyramid_a: DtcwtPyramid
    pyramid_b: DtcwtPyramid
    pyramid_fused: DtcwtPyramid


class ImageFusion:
    """Pixel-level fusion of two co-registered frames.

    Parameters
    ----------
    levels:
        DT-CWT decomposition depth (the paper sweeps this indirectly by
        shrinking frames; 3 is its full-frame setting).
    rule:
        Coefficient fusion rule; defaults to the paper's max-magnitude
        selection with low-pass averaging.
    transform:
        Optionally a pre-built :class:`Dtcwt2D` (e.g. wired to a
        hardware engine's backend).  Overrides ``levels``/``banks``.
    """

    def __init__(self, levels: int = 3, rule: Optional[FusionRule] = None,
                 banks: Optional[DtcwtBanks] = None,
                 transform: Optional[Dtcwt2D] = None):
        self.transform = transform if transform is not None else Dtcwt2D(
            levels=levels, banks=banks)
        self.rule = rule if rule is not None else MaxMagnitudeRule()

    @property
    def levels(self) -> int:
        return self.transform.levels

    # ------------------------------------------------------------------
    # staged execution (what the profiler instruments)
    # ------------------------------------------------------------------
    def decompose(self, image: np.ndarray) -> DtcwtPyramid:
        """Stage 1/2: forward DT-CWT of one source frame."""
        return self.transform.forward(image)

    def combine(self, pyr_a: DtcwtPyramid, pyr_b: DtcwtPyramid) -> DtcwtPyramid:
        """Stage 3: coefficient fusion."""
        return self.rule.fuse(pyr_a, pyr_b)

    def reconstruct(self, pyramid: DtcwtPyramid) -> np.ndarray:
        """Stage 4: inverse DT-CWT of the fused pyramid."""
        return self.transform.inverse(pyramid)

    # ------------------------------------------------------------------
    def fuse(self, image_a: np.ndarray, image_b: np.ndarray) -> FusionResult:
        """Full pipeline on one frame pair."""
        a = np.asarray(image_a)
        b = np.asarray(image_b)
        if a.shape != b.shape:
            raise FusionError(
                f"source frames must share a shape, got {a.shape} vs {b.shape}"
            )
        pyr_a = self.decompose(a)
        pyr_b = self.decompose(b)
        pyr_f = self.combine(pyr_a, pyr_b)
        fused = self.reconstruct(pyr_f)
        return FusionResult(fused=fused, pyramid_a=pyr_a, pyramid_b=pyr_b,
                            pyramid_fused=pyr_f)


def fuse_images(image_a: np.ndarray, image_b: np.ndarray, levels: int = 3,
                rule: Optional[FusionRule] = None) -> np.ndarray:
    """One-shot DT-CWT fusion of two frames; returns the fused frame."""
    return ImageFusion(levels=levels, rule=rule).fuse(image_a, image_b).fused
