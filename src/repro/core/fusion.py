"""DT-CWT based image and video fusion (the paper's core algorithm).

The algorithm of Section III: apply the forward DT-CWT to the visible
and the infrared frame, combine the coefficient pyramids with a fusion
rule, and reconstruct the fused frame with the inverse DT-CWT.

:class:`ImageFusion` is the reusable object (transform + rule +
engine); :func:`fuse_images` the one-shot convenience.  The class also
exposes the *staged* execution used by the profiler and the runtime so
each stage can be timed and attributed the way Fig. 2 and Fig. 9 do.

:meth:`ImageFusion.fuse_batch` is the batch-first entry point: ``B``
frame pairs are fused with the same number of NumPy primitive calls as
one pair.  Both sources of every pair ride the *same* stacked forward
transform (a ``(2B, H, W)`` stack — visible frames first, thermal
frames second — so pairing two inputs already doubles the batch for
free), the fusion rule combines the two pyramid stacks in vectorized
calls, and one stacked inverse reconstructs all fused frames.  Every
frame is bitwise-identical to what :meth:`ImageFusion.fuse` computes
for that pair alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from ..dtcwt.coeffs import DtcwtBanks
from ..dtcwt.transform2d import Dtcwt2D, DtcwtPyramid, DtcwtPyramidStack
from ..errors import FusionError
from .fusion_rules import FusionRule, MaxMagnitudeRule


@dataclass
class FusionResult:
    """Fused frame plus the intermediate pyramids (for inspection)."""

    fused: np.ndarray
    pyramid_a: DtcwtPyramid
    pyramid_b: DtcwtPyramid
    pyramid_fused: DtcwtPyramid


@dataclass
class BatchFusionResult:
    """Fused frame stack plus the intermediate pyramid stacks.

    ``fused`` has shape ``(B, H, W)``; the pyramid stacks hold every
    pair's coefficients (``pyramids_a[i]`` etc. give per-frame views).
    ``result[i]`` adapts frame ``i`` into an ordinary
    :class:`FusionResult`.
    """

    fused: np.ndarray
    pyramids_a: DtcwtPyramidStack
    pyramids_b: DtcwtPyramidStack
    pyramids_fused: DtcwtPyramidStack

    def __len__(self) -> int:
        return self.fused.shape[0]

    def __getitem__(self, index: int) -> FusionResult:
        return FusionResult(
            fused=self.fused[index],
            pyramid_a=self.pyramids_a[index],
            pyramid_b=self.pyramids_b[index],
            pyramid_fused=self.pyramids_fused[index],
        )


class ImageFusion:
    """Pixel-level fusion of two co-registered frames.

    Parameters
    ----------
    levels:
        DT-CWT decomposition depth (the paper sweeps this indirectly by
        shrinking frames; 3 is its full-frame setting).
    rule:
        Coefficient fusion rule; defaults to the paper's max-magnitude
        selection with low-pass averaging.
    transform:
        Optionally a pre-built :class:`Dtcwt2D` (e.g. wired to a
        hardware engine's backend).  Overrides ``levels``/``banks``.
    """

    def __init__(self, levels: int = 3, rule: Optional[FusionRule] = None,
                 banks: Optional[DtcwtBanks] = None,
                 transform: Optional[Dtcwt2D] = None):
        self.transform = transform if transform is not None else Dtcwt2D(
            levels=levels, banks=banks)
        self.rule = rule if rule is not None else MaxMagnitudeRule()

    @property
    def levels(self) -> int:
        return self.transform.levels

    # ------------------------------------------------------------------
    # staged execution (what the profiler instruments)
    # ------------------------------------------------------------------
    def decompose(self, image: np.ndarray) -> DtcwtPyramid:
        """Stage 1/2: forward DT-CWT of one source frame."""
        return self.transform.forward(image)

    def combine(self, pyr_a: DtcwtPyramid, pyr_b: DtcwtPyramid) -> DtcwtPyramid:
        """Stage 3: coefficient fusion."""
        return self.rule.fuse(pyr_a, pyr_b)

    def reconstruct(self, pyramid: DtcwtPyramid) -> np.ndarray:
        """Stage 4: inverse DT-CWT of the fused pyramid."""
        return self.transform.inverse(pyramid)

    # ------------------------------------------------------------------
    # batched staged execution (same stages, stacked operands)
    # ------------------------------------------------------------------
    def decompose_batch(self, frames: np.ndarray) -> DtcwtPyramidStack:
        """Forward DT-CWT of a whole ``(N, H, W)`` frame stack."""
        return self.transform.forward_batch(frames)

    def combine_stack(self, stack_a: DtcwtPyramidStack,
                      stack_b: DtcwtPyramidStack) -> DtcwtPyramidStack:
        """Vectorized coefficient fusion of ``N`` pyramid pairs."""
        return self.rule.fuse_stack(stack_a, stack_b)

    def reconstruct_batch(self, stack: DtcwtPyramidStack) -> np.ndarray:
        """Inverse DT-CWT of a fused pyramid stack -> ``(N, H, W)``."""
        return self.transform.inverse_batch(stack)

    # ------------------------------------------------------------------
    def fuse(self, image_a: np.ndarray, image_b: np.ndarray) -> FusionResult:
        """Full pipeline on one frame pair."""
        a = np.asarray(image_a)
        b = np.asarray(image_b)
        if a.shape != b.shape:
            raise FusionError(
                f"source frames must share a shape, got {a.shape} vs {b.shape}"
            )
        pyr_a = self.decompose(a)
        pyr_b = self.decompose(b)
        pyr_f = self.combine(pyr_a, pyr_b)
        fused = self.reconstruct(pyr_f)
        return FusionResult(fused=fused, pyramid_a=pyr_a, pyramid_b=pyr_b,
                            pyramid_fused=pyr_f)

    def fuse_batch(self,
                   frames_a: Union[np.ndarray, Sequence[np.ndarray]],
                   frames_b: Union[np.ndarray, Sequence[np.ndarray]]
                   ) -> BatchFusionResult:
        """Full pipeline on ``B`` frame pairs in stacked NumPy calls.

        ``frames_a``/``frames_b`` are ``(B, H, W)`` stacks (or lists of
        same-shape 2-D frames).  Both sources ride one ``(2B, H, W)``
        forward transform — the pairing itself doubles the batch — so
        even ``B = 1`` already halves the per-call overhead versus two
        separate forwards.  Each fused frame is bitwise-identical to
        :meth:`fuse` on that pair.
        """
        a = np.asarray(frames_a)
        b = np.asarray(frames_b)
        if a.ndim == 2 or b.ndim == 2:
            raise FusionError(
                "fuse_batch expects (B, H, W) frame stacks; use fuse() "
                "for a single pair"
            )
        if a.ndim != 3 or b.ndim != 3:
            raise FusionError(
                f"fuse_batch expects (B, H, W) frame stacks, got shapes "
                f"{a.shape} and {b.shape}"
            )
        if a.shape != b.shape:
            raise FusionError(
                f"source stacks must share a shape, got {a.shape} vs "
                f"{b.shape}"
            )
        if a.shape[0] == 0:
            raise FusionError("cannot fuse an empty batch")
        count = a.shape[0]
        doubled = self.decompose_batch(np.concatenate([a, b], axis=0))
        stack_a = doubled.slice(0, count)
        stack_b = doubled.slice(count, 2 * count)
        stack_f = self.combine_stack(stack_a, stack_b)
        fused = self.reconstruct_batch(stack_f)
        return BatchFusionResult(fused=fused, pyramids_a=stack_a,
                                 pyramids_b=stack_b, pyramids_fused=stack_f)


def fuse_images(image_a: np.ndarray, image_b: np.ndarray, levels: int = 3,
                rule: Optional[FusionRule] = None) -> np.ndarray:
    """One-shot DT-CWT fusion of two frames; returns the fused frame."""
    return ImageFusion(levels=levels, rule=rule).fuse(image_a, image_b).fused
