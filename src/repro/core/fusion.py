"""DT-CWT based image and video fusion (the paper's core algorithm).

The algorithm of Section III: apply the forward DT-CWT to the visible
and the infrared frame, combine the coefficient pyramids with a fusion
rule, and reconstruct the fused frame with the inverse DT-CWT.

:class:`ImageFusion` is the reusable object (transform + rule +
engine); :func:`fuse_images` the one-shot convenience.  The class also
exposes the *staged* execution used by the profiler and the runtime so
each stage can be timed and attributed the way Fig. 2 and Fig. 9 do.

:meth:`ImageFusion.fuse_batch` is the batch-first entry point: ``B``
frame pairs are fused with the same number of NumPy primitive calls as
one pair.  Both sources of every pair ride the *same* stacked forward
transform (a ``(2B, H, W)`` stack — visible frames first, thermal
frames second — so pairing two inputs already doubles the batch for
free), the fusion rule combines the two pyramid stacks in vectorized
calls, and one stacked inverse reconstructs all fused frames.  Every
frame is bitwise-identical to what :meth:`ImageFusion.fuse` computes
for that pair alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..dtcwt.coeffs import DtcwtBanks
from ..dtcwt.transform2d import Dtcwt2D, DtcwtPyramid, DtcwtPyramidStack
from ..errors import FusionError
from .fusion_rules import FusionRule, MaxMagnitudeRule


@dataclass
class FusionResult:
    """Fused frame plus the intermediate pyramids (for inspection).

    ``pyramids`` holds every source's pyramid in input order; the
    historical ``pyramid_a`` / ``pyramid_b`` names read the first two.
    """

    fused: np.ndarray
    pyramids: Tuple[DtcwtPyramid, ...]
    pyramid_fused: DtcwtPyramid

    @property
    def pyramid_a(self) -> DtcwtPyramid:
        return self.pyramids[0]

    @property
    def pyramid_b(self) -> DtcwtPyramid:
        return self.pyramids[1]


@dataclass
class BatchFusionResult:
    """Fused frame stack plus the intermediate pyramid stacks.

    ``fused`` has shape ``(B, H, W)``; ``pyramids[s]`` holds source
    ``s``'s coefficients for every frame (``pyramids_a`` /
    ``pyramids_b`` read the first two).  ``result[i]`` adapts frame
    ``i`` into an ordinary :class:`FusionResult`.
    """

    fused: np.ndarray
    pyramids: Tuple[DtcwtPyramidStack, ...]
    pyramids_fused: DtcwtPyramidStack

    @property
    def pyramids_a(self) -> DtcwtPyramidStack:
        return self.pyramids[0]

    @property
    def pyramids_b(self) -> DtcwtPyramidStack:
        return self.pyramids[1]

    def __len__(self) -> int:
        return self.fused.shape[0]

    def __getitem__(self, index: int) -> FusionResult:
        return FusionResult(
            fused=self.fused[index],
            pyramids=tuple(stack[index] for stack in self.pyramids),
            pyramid_fused=self.pyramids_fused[index],
        )


class ImageFusion:
    """Pixel-level fusion of two co-registered frames.

    Parameters
    ----------
    levels:
        DT-CWT decomposition depth (the paper sweeps this indirectly by
        shrinking frames; 3 is its full-frame setting).
    rule:
        Coefficient fusion rule; defaults to the paper's max-magnitude
        selection with low-pass averaging.
    transform:
        Optionally a pre-built :class:`Dtcwt2D` (e.g. wired to a
        hardware engine's backend).  Overrides ``levels``/``banks``.
    """

    def __init__(self, levels: int = 3, rule: Optional[FusionRule] = None,
                 banks: Optional[DtcwtBanks] = None,
                 transform: Optional[Dtcwt2D] = None):
        self.transform = transform if transform is not None else Dtcwt2D(
            levels=levels, banks=banks)
        self.rule = rule if rule is not None else MaxMagnitudeRule()

    @property
    def levels(self) -> int:
        return self.transform.levels

    # ------------------------------------------------------------------
    # staged execution (what the profiler instruments)
    # ------------------------------------------------------------------
    def decompose(self, image: np.ndarray) -> DtcwtPyramid:
        """Stage 1/2: forward DT-CWT of one source frame."""
        return self.transform.forward(image)

    def combine(self, pyr_a: DtcwtPyramid, pyr_b: DtcwtPyramid) -> DtcwtPyramid:
        """Stage 3: coefficient fusion."""
        return self.rule.fuse(pyr_a, pyr_b)

    def combine_many(self, pyramids: Sequence[DtcwtPyramid]) -> DtcwtPyramid:
        """Stage 3, N-ary: reduce any number of source pyramids (two
        delegate to the pairwise :meth:`combine` bit-for-bit)."""
        return self.rule.fuse_many(pyramids)

    def reconstruct(self, pyramid: DtcwtPyramid) -> np.ndarray:
        """Stage 4: inverse DT-CWT of the fused pyramid."""
        return self.transform.inverse(pyramid)

    # ------------------------------------------------------------------
    # batched staged execution (same stages, stacked operands)
    # ------------------------------------------------------------------
    def decompose_batch(self, frames: np.ndarray) -> DtcwtPyramidStack:
        """Forward DT-CWT of a whole ``(N, H, W)`` frame stack."""
        return self.transform.forward_batch(frames)

    def combine_stack(self, stack_a: DtcwtPyramidStack,
                      stack_b: DtcwtPyramidStack) -> DtcwtPyramidStack:
        """Vectorized coefficient fusion of ``N`` pyramid pairs."""
        return self.rule.fuse_stack(stack_a, stack_b)

    def combine_stack_many(self, stacks: Sequence[DtcwtPyramidStack]
                           ) -> DtcwtPyramidStack:
        """Vectorized N-ary coefficient fusion of pyramid stacks (two
        delegate to the pairwise :meth:`combine_stack` bit-for-bit)."""
        return self.rule.fuse_stack_many(stacks)

    def reconstruct_batch(self, stack: DtcwtPyramidStack) -> np.ndarray:
        """Inverse DT-CWT of a fused pyramid stack -> ``(N, H, W)``."""
        return self.transform.inverse_batch(stack)

    # ------------------------------------------------------------------
    def fuse(self, *images: np.ndarray) -> FusionResult:
        """Full pipeline on one co-registered frame group (N >= 2).

        ``fuse(a, b)`` is the historical pair path, bit-for-bit; more
        sources reduce through the rule's N-ary combination.
        """
        if len(images) < 2:
            raise FusionError(
                f"fuse needs >= 2 source frames, got {len(images)}")
        frames = [np.asarray(image) for image in images]
        shapes = {frame.shape for frame in frames}
        if len(shapes) != 1:
            raise FusionError(
                f"source frames must share a shape, got "
                f"{' vs '.join(str(frame.shape) for frame in frames)}"
            )
        pyramids = tuple(self.decompose(frame) for frame in frames)
        if len(pyramids) == 2:
            pyr_f = self.combine(pyramids[0], pyramids[1])
        else:
            pyr_f = self.combine_many(pyramids)
        fused = self.reconstruct(pyr_f)
        return FusionResult(fused=fused, pyramids=pyramids,
                            pyramid_fused=pyr_f)

    def fuse_batch(self,
                   *stacks: Union[np.ndarray, Sequence[np.ndarray]]
                   ) -> BatchFusionResult:
        """Full pipeline on ``B`` frame groups in stacked NumPy calls.

        Each positional argument is one source's ``(B, H, W)`` stack
        (or list of same-shape 2-D frames).  All ``N`` sources ride the
        *same* ``(N*B, H, W)`` forward transform — the grouping itself
        multiplies the batch — so even ``B = 1`` already divides the
        per-call overhead by ``N`` versus separate forwards.  Each
        fused frame is bitwise-identical to :meth:`fuse` on that group.
        """
        if len(stacks) < 2:
            raise FusionError(
                f"fuse_batch needs >= 2 source stacks, got {len(stacks)}")
        arrays = [np.asarray(stack) for stack in stacks]
        if any(array.ndim == 2 for array in arrays):
            raise FusionError(
                "fuse_batch expects (B, H, W) frame stacks; use fuse() "
                "for a single group"
            )
        if any(array.ndim != 3 for array in arrays):
            raise FusionError(
                f"fuse_batch expects (B, H, W) frame stacks, got shapes "
                f"{' and '.join(str(array.shape) for array in arrays)}"
            )
        if len({array.shape for array in arrays}) != 1:
            raise FusionError(
                f"source stacks must share a shape, got "
                f"{' vs '.join(str(array.shape) for array in arrays)}"
            )
        if arrays[0].shape[0] == 0:
            raise FusionError("cannot fuse an empty batch")
        count = arrays[0].shape[0]
        stacked = self.decompose_batch(np.concatenate(arrays, axis=0))
        per_source = tuple(stacked.slice(s * count, (s + 1) * count)
                           for s in range(len(arrays)))
        if len(per_source) == 2:
            stack_f = self.combine_stack(per_source[0], per_source[1])
        else:
            stack_f = self.combine_stack_many(per_source)
        fused = self.reconstruct_batch(stack_f)
        return BatchFusionResult(fused=fused, pyramids=per_source,
                                 pyramids_fused=stack_f)


def fuse_images(*images: np.ndarray, levels: int = 3,
                rule: Optional[FusionRule] = None) -> np.ndarray:
    """One-shot DT-CWT fusion of N >= 2 frames; returns the fused frame."""
    return ImageFusion(levels=levels, rule=rule).fuse(*images).fused
