"""Image registration for the multi-sensor rig.

The paper places the webcam and the thermal camera "together to capture
the same scene" and fuses pixel-to-pixel; any real rig needs to
estimate and remove the residual translation between the two views
first.  Two estimators are provided:

* :func:`phase_correlation` — classic FFT cross-power method, accurate
  to a pixel (sub-pixel via parabolic peak interpolation);
* :class:`DtcwtRegistration` — coarse-to-fine translation estimation on
  the DT-CWT's coefficient magnitudes (which are nearly shift
  invariant, so the correlation surfaces are smooth), refined at full
  resolution on gradient magnitudes and bounded by the rig's physical
  ``max_shift``.

Scope: exact for same-sensor displacement and robust to nonlinear
intensity remapping (different sensor response curves).  Truly
cross-*content* registration — where the two modalities see disjoint
structure, or the scene carries periodic texture whose period divides
the search range — is ambiguous for any correlation method and out of
scope here (mutual-information methods are the literature's answer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..dtcwt.transform2d import Dtcwt2D
from ..errors import FusionError


@dataclass
class RegistrationResult:
    """Estimated displacement of image B relative to image A (pixels)."""

    dy: float
    dx: float
    confidence: float

    @property
    def magnitude(self) -> float:
        return float(np.hypot(self.dy, self.dx))


def _parabolic_refine(values: np.ndarray, index: int) -> float:
    """Sub-sample peak position from three neighbouring samples."""
    prev_v = values[(index - 1) % len(values)]
    peak_v = values[index]
    next_v = values[(index + 1) % len(values)]
    denom = prev_v - 2.0 * peak_v + next_v
    if abs(denom) < 1e-12:
        return float(index)
    return index + 0.5 * (prev_v - next_v) / denom


def phase_correlation(image_a: np.ndarray, image_b: np.ndarray
                      ) -> RegistrationResult:
    """Translation of ``image_b`` relative to ``image_a`` by FFT.

    Returns the shift that, applied to ``image_b``, aligns it onto
    ``image_a``; sub-pixel accuracy via parabolic interpolation of the
    correlation peak.
    """
    a = np.asarray(image_a, dtype=np.float64)
    b = np.asarray(image_b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 2:
        raise FusionError("phase correlation needs two equal 2-D images")
    a = a - a.mean()
    b = b - b.mean()
    fa = np.fft.fft2(a)
    fb = np.fft.fft2(b)
    cross = fa * np.conj(fb)
    magnitude = np.abs(cross)
    magnitude[magnitude < 1e-12] = 1e-12
    surface = np.real(np.fft.ifft2(cross / magnitude))

    peak = np.unravel_index(int(np.argmax(surface)), surface.shape)
    dy = _parabolic_refine(surface[:, peak[1]], peak[0])
    dx = _parabolic_refine(surface[peak[0], :], peak[1])
    rows, cols = surface.shape
    if dy > rows / 2:
        dy -= rows
    if dx > cols / 2:
        dx -= cols
    total = float(np.sum(np.abs(surface)))
    confidence = float(surface[peak]) / total * surface.size if total else 0.0
    return RegistrationResult(dy=float(dy), dx=float(dx),
                              confidence=min(1.0, confidence / 50.0))


class DtcwtRegistration:
    """Coarse-to-fine translation estimation on DT-CWT magnitudes.

    At each level the per-band magnitude maps of both images are
    cross-correlated (circularly); coarse levels vote first, finer
    levels refine the running estimate within +-1 sample of the
    upsampled coarse shift.
    """

    def __init__(self, levels: int = 4, max_shift: int = 10):
        if levels < 2:
            raise FusionError("coarse-to-fine needs at least 2 levels")
        if max_shift < 1:
            raise FusionError("max_shift must be >= 1 pixel")
        self.levels = levels
        self.max_shift = max_shift

    def estimate(self, image_a: np.ndarray, image_b: np.ndarray
                 ) -> RegistrationResult:
        a = np.asarray(image_a, dtype=np.float64)
        b = np.asarray(image_b, dtype=np.float64)
        if a.shape != b.shape or a.ndim != 2:
            raise FusionError("registration needs two equal 2-D images")
        transform = Dtcwt2D(levels=self.levels)
        pyr_a = transform.forward(a)
        pyr_b = transform.forward(b)

        dy = dx = 0.0
        confidence = 0.0
        for level in range(self.levels - 1, -1, -1):
            scale = 2 ** (level + 1)
            if scale > 2 * self.max_shift:
                # a cell at this level exceeds the physically possible
                # displacement of the co-located rig: searching here can
                # only lock onto wrong cross-modal structure
                continue
            mag_a = _normalized(np.sum(np.abs(pyr_a.highpasses[level]), axis=0))
            mag_b = _normalized(np.sum(np.abs(pyr_b.highpasses[level]), axis=0))
            radius = max(1, -(-self.max_shift // scale)) if dy == dx == 0.0 \
                else 1
            guess = (dy / scale, dx / scale)
            shift, confidence = _local_correlation(mag_a, mag_b, guess,
                                                   radius=radius)
            dy = _clamp(shift[0] * scale, self.max_shift)
            dx = _clamp(shift[1] * scale, self.max_shift)

        # the finest band sits at half resolution, so the estimate is a
        # multiple of two; resolve the last pixel on full-resolution
        # gradient magnitudes (robust to intensity remapping)
        grad_a = _normalized(_gradient_magnitude(a))
        grad_b = _normalized(_gradient_magnitude(b))
        shift, confidence = _local_correlation(grad_a, grad_b, (dy, dx),
                                               radius=1)
        return RegistrationResult(dy=_clamp(shift[0], self.max_shift),
                                  dx=_clamp(shift[1], self.max_shift),
                                  confidence=confidence)


def _clamp(value: float, bound: float) -> float:
    return max(-bound, min(bound, value))


def _normalized(image: np.ndarray) -> np.ndarray:
    """Zero-mean, unit-norm copy — correlation becomes NCC-like, which
    is what makes cross-modality matching workable."""
    out = image - image.mean()
    norm = float(np.linalg.norm(out))
    return out / norm if norm > 1e-12 else out


def _gradient_magnitude(image: np.ndarray) -> np.ndarray:
    gy = np.roll(image, -1, axis=0) - np.roll(image, 1, axis=0)
    gx = np.roll(image, -1, axis=1) - np.roll(image, 1, axis=1)
    return np.hypot(gy, gx)


def _local_correlation(mag_a: np.ndarray, mag_b: np.ndarray,
                       guess: Tuple[float, float], radius: int
                       ) -> Tuple[Tuple[float, float], float]:
    """Best integer shift near ``guess`` by circular correlation score."""
    best = (0.0, 0.0)
    best_score = -np.inf
    scores = {}
    g_r, g_c = int(round(guess[0])), int(round(guess[1]))
    norm = float(np.linalg.norm(mag_a) * np.linalg.norm(mag_b)) or 1.0
    for dr in range(g_r - radius, g_r + radius + 1):
        for dc in range(g_c - radius, g_c + radius + 1):
            rolled = np.roll(np.roll(mag_b, dr, axis=0), dc, axis=1)
            score = float(np.sum(mag_a * rolled)) / norm
            scores[(dr, dc)] = score
            if score > best_score:
                best_score = score
                best = (float(dr), float(dc))
    return best, min(1.0, max(0.0, best_score))


def register_and_fuse(image_a: np.ndarray, image_b: np.ndarray,
                      levels: int = 3,
                      estimator: Optional[DtcwtRegistration] = None
                      ) -> Tuple[np.ndarray, RegistrationResult]:
    """Align ``image_b`` to ``image_a`` (integer shift), then fuse."""
    from .fusion import fuse_images
    est = estimator if estimator is not None else DtcwtRegistration()
    result = est.estimate(image_a, image_b)
    aligned = np.roll(np.roll(np.asarray(image_b, dtype=np.float64),
                              int(round(result.dy)), axis=0),
                      int(round(result.dx)), axis=1)
    return fuse_images(image_a, aligned, levels=levels), result
