"""Run-time engine selection (the paper's key finding, made executable).

Section VII concludes that "an adaptive system that intelligently
selects between the SIMD engine and the FPGA achieves the most energy
and performance efficiency point", and the paper's future work is a
system that chooses the resource automatically per frame size and
decomposition level.  This module implements that system three ways:

* :class:`CostModelScheduler` — picks the engine whose *analytic* cost
  model predicts the lowest latency (or energy) for the workload;
* :class:`OnlineScheduler` — measures each engine on the live workload
  (round-robin exploration, then exploitation with periodic re-probes),
  needing no model at all;
* :class:`PerLevelScheduler` — an extension beyond the paper: because
  each DT-CWT level halves the frame, the optimal engine can differ
  *within* one transform (FPGA for the large early levels, NEON for the
  small deep ones); this scheduler composes a per-level execution plan
  from the same cost models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..hw.engine import Engine
from ..hw.power import DEFAULT_POWER_MODEL, PowerModel
from ..hw.registry import default_engines
from ..hw.work import WorkModel
from ..types import FrameShape

__all__ = [
    "CostModelScheduler", "Decision", "LevelPlan", "OnlineScheduler",
    "PerLevelScheduler", "default_engines",
]


@dataclass
class Decision:
    """One scheduling decision with its predicted costs."""

    engine: Engine
    predicted_s: float
    predicted_mj: float
    alternatives: Dict[str, float] = field(default_factory=dict)


class CostModelScheduler:
    """Model-driven selection between the available engines.

    ``objective`` is ``"time"`` (Fig. 9 optimum) or ``"energy"``
    (Fig. 10 optimum); the two differ near the crossover because FPGA
    mode draws 19.2 mW more.
    """

    def __init__(self, engines: Optional[Sequence[Engine]] = None,
                 objective: str = "time",
                 power_model: PowerModel = DEFAULT_POWER_MODEL):
        if objective not in ("time", "energy"):
            raise ConfigurationError(
                f"objective must be 'time' or 'energy', got {objective!r}"
            )
        self.engines = tuple(engines) if engines is not None else default_engines()
        if not self.engines:
            raise ConfigurationError("at least one engine is required")
        self.objective = objective
        self.power_model = power_model

    def cost(self, engine: Engine, shape: FrameShape, levels: int) -> Tuple[float, float]:
        """(seconds, millijoules) for one fused frame on ``engine``."""
        seconds = engine.frame_time(shape, levels).total_s
        mj = seconds * self.power_model.power_w(engine.power_mode) * 1e3
        return seconds, mj

    def choose(self, shape: FrameShape, levels: int = 3) -> Decision:
        """Pick the best engine for fusing frames of ``shape``."""
        best: Optional[Decision] = None
        alternatives: Dict[str, float] = {}
        for engine in self.engines:
            seconds, mj = self.cost(engine, shape, levels)
            key = seconds if self.objective == "time" else mj
            alternatives[engine.name] = key
            if best is None or key < (best.predicted_s if self.objective == "time"
                                      else best.predicted_mj):
                best = Decision(engine=engine, predicted_s=seconds,
                                predicted_mj=mj)
        assert best is not None
        best.alternatives = alternatives
        return best


class OnlineScheduler:
    """Measurement-driven selection, no model required.

    Explores every engine for ``probe_frames`` frames, then exploits the
    best observed latency; every ``reprobe_every`` frames it re-probes
    the runner-up so a workload change (e.g. new frame size after a
    camera mode switch) is picked up.  Feed observations with
    :meth:`observe`; ask for the next engine with :meth:`next_engine`.
    """

    def __init__(self, engines: Optional[Sequence[Engine]] = None,
                 probe_frames: int = 3, reprobe_every: int = 50):
        if probe_frames < 1:
            raise ConfigurationError("probe_frames must be >= 1")
        if reprobe_every < 2:
            raise ConfigurationError("reprobe_every must be >= 2")
        self.engines = tuple(engines) if engines is not None else default_engines()
        self.probe_frames = probe_frames
        self.reprobe_every = reprobe_every
        self._observations: Dict[str, List[float]] = {e.name: [] for e in self.engines}
        self._frame_index = 0

    def next_engine(self) -> Engine:
        """Engine to use for the next frame."""
        self._frame_index += 1
        for engine in self.engines:  # exploration phase
            if len(self._observations[engine.name]) < self.probe_frames:
                return engine
        if self._frame_index % self.reprobe_every == 0:
            return self._ranked()[1] if len(self.engines) > 1 else self._ranked()[0]
        return self._ranked()[0]

    def observe(self, engine: Engine, seconds: float) -> None:
        """Record a measured frame latency for ``engine``."""
        if seconds < 0:
            raise ConfigurationError(f"negative latency observed: {seconds}")
        self._observations[engine.name].append(seconds)

    def reset(self) -> None:
        """Forget all measurements (e.g. after a frame-size change)."""
        for name in self._observations:
            self._observations[name].clear()
        self._frame_index = 0

    def _mean(self, name: str) -> float:
        obs = self._observations[name]
        recent = obs[-10:]
        return sum(recent) / len(recent)

    def _ranked(self) -> List[Engine]:
        return sorted(self.engines, key=lambda e: self._mean(e.name))


@dataclass
class LevelPlan:
    """Execution plan mapping each DT-CWT level to an engine."""

    shape: FrameShape
    levels: int
    forward_assignment: Tuple[str, ...]
    inverse_assignment: Tuple[str, ...]
    predicted_s: float


class PerLevelScheduler:
    """Assign each decomposition level to its cheapest engine.

    Level ``l`` of the transform works on a ``1/2^{l-1}``-scaled frame,
    so deep levels sit below the FPGA's profitability threshold even
    when the input frame is large.  This scheduler evaluates each
    engine's cost *per level* (from the shared work model) and composes
    a mixed plan — the paper's adaptive idea taken one step further.

    A per-level engine switch costs ``switch_penalty_s`` (pipeline
    drain, first-command latency), so a mixed plan must beat the best
    single-engine plan by more than the switching cost it introduces.
    """

    def __init__(self, engines: Optional[Sequence[Engine]] = None,
                 switch_penalty_s: float = 30e-6):
        self.engines = tuple(engines) if engines is not None else default_engines()
        if switch_penalty_s < 0:
            raise ConfigurationError("switch penalty cannot be negative")
        self.switch_penalty_s = switch_penalty_s

    def _level_costs(self, engine: Engine, shape: FrameShape, levels: int,
                     direction: str) -> List[float]:
        """Seconds each level costs on ``engine`` (one image)."""
        work = WorkModel(shape, levels=levels, banks=engine.banks)
        passes = (work.forward_passes() if direction == "forward"
                  else work.inverse_passes())
        costs = []
        for level in range(1, levels + 1):
            level_passes = [p for p in passes if p.level == level]
            # re-cost through the engine by building a single-level view
            total = self._cost_passes(engine, level_passes, direction)
            costs.append(total)
        return costs

    def _cost_passes(self, engine: Engine, passes, direction: str) -> float:
        from ..hw.arm import ArmEngine as _Arm
        from ..hw.fpga import FpgaEngine as _Fpga
        from ..hw.neon import NeonEngine as _Neon
        if isinstance(engine, _Fpga):
            breakdown = engine._schedule(list(passes), direction)  # noqa: SLF001
            return breakdown.total_s
        if isinstance(engine, _Neon):
            rate = (engine.calibration.arm_mac_rate_fwd if direction == "forward"
                    else engine.calibration.arm_mac_rate_inv)
            fraction = (engine.calibration.neon_vector_fraction_fwd
                        if direction == "forward"
                        else engine.calibration.neon_vector_fraction_inv)
            return engine._passes_time(list(passes), rate, fraction).total_s  # noqa: SLF001
        if isinstance(engine, _Arm):
            rate = (engine.calibration.arm_mac_rate_fwd if direction == "forward"
                    else engine.calibration.arm_mac_rate_inv)
            return engine._passes_time(list(passes), rate).total_s  # noqa: SLF001
        raise ConfigurationError(
            f"per-level costing not supported for engine {engine.name!r}"
        )

    def plan(self, shape: FrameShape, levels: int = 3) -> LevelPlan:
        """Compose the cheapest per-level assignment for one fused frame."""
        fwd_costs = {e.name: self._level_costs(e, shape, levels, "forward")
                     for e in self.engines}
        inv_costs = {e.name: self._level_costs(e, shape, levels, "inverse")
                     for e in self.engines}

        fwd_pick, inv_pick = [], []
        total = 0.0
        for level in range(levels):
            name = min(fwd_costs, key=lambda n: fwd_costs[n][level])
            fwd_pick.append(name)
            total += 2.0 * fwd_costs[name][level]  # two source images
        for level in range(levels):
            name = min(inv_costs, key=lambda n: inv_costs[n][level])
            inv_pick.append(name)
            total += inv_costs[name][level]

        switches = _count_switches(fwd_pick) * 2 + _count_switches(inv_pick)
        total += switches * self.switch_penalty_s
        # fusion stage always runs on the ARM
        total += self.engines[0].fusion_time(shape, levels).total_s
        return LevelPlan(
            shape=shape,
            levels=levels,
            forward_assignment=tuple(fwd_pick),
            inverse_assignment=tuple(inv_pick),
            predicted_s=total,
        )


def _count_switches(assignment: Sequence[str]) -> int:
    return sum(1 for a, b in zip(assignment, assignment[1:]) if a != b)
