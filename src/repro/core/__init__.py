"""The paper's primary contribution: DT-CWT fusion + adaptive scheduling."""

from .adaptive import (
    CostModelScheduler,
    Decision,
    LevelPlan,
    OnlineScheduler,
    PerLevelScheduler,
    default_engines,
)
from .fusion import BatchFusionResult, FusionResult, ImageFusion, fuse_images
from .fusion_rules import (
    FusionRule,
    MaxMagnitudeRule,
    WeightedRule,
    WindowActivityRule,
    rule_by_name,
)
from .metrics import (
    average_gradient,
    entropy,
    fusion_mutual_information,
    fusion_report,
    mutual_information,
    petrovic_qabf,
    psnr,
    spatial_frequency,
    ssim,
)
from .profiling import STAGES, PipelineProfiler, profile_model
from .quality_monitor import (
    ACTION_FUSE,
    ACTION_PASS_THERMAL,
    ACTION_PASS_VISIBLE,
    MonitorReading,
    QualityMonitor,
)
from .registration import (
    DtcwtRegistration,
    RegistrationResult,
    phase_correlation,
    register_and_fuse,
)
from .video_fusion import TemporalFusion, TemporalStats, selection_flicker

__all__ = [
    "CostModelScheduler", "Decision", "LevelPlan", "OnlineScheduler",
    "PerLevelScheduler", "default_engines",
    "BatchFusionResult", "FusionResult", "ImageFusion", "fuse_images",
    "FusionRule", "MaxMagnitudeRule", "WeightedRule", "WindowActivityRule",
    "rule_by_name",
    "average_gradient", "entropy", "fusion_mutual_information",
    "fusion_report", "mutual_information", "petrovic_qabf", "psnr",
    "spatial_frequency", "ssim",
    "STAGES", "PipelineProfiler", "profile_model",
    "DtcwtRegistration", "RegistrationResult", "phase_correlation",
    "register_and_fuse",
    "TemporalFusion", "TemporalStats", "selection_flicker",
    "ACTION_FUSE", "ACTION_PASS_THERMAL", "ACTION_PASS_VISIBLE",
    "MonitorReading", "QualityMonitor",
]
