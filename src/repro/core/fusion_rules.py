"""Coefficient fusion rules for DT-CWT pixel-level image fusion.

After both source frames are decomposed, a fusion rule decides — per
complex high-pass coefficient and per low-pass sample — how to combine
the two pyramids into one.  The paper uses the classic rule family from
Nikolov/Hill (its reference [2]):

* **maximum magnitude** selection for the high-pass bands (a larger
  ``|z|`` means more salient local structure in that band), and
* **averaging** for the final low-pass (the coarse illumination of the
  two modalities is blended).

Additional rules implemented here (window activity with consistency
checking, weighted blending) are standard variants used to study fusion
quality; they share the same interface so the pipeline can swap them.

All built-in rules are **vectorized ufunc-style operations**: the
per-level combination methods only ever address the trailing ``(H, W)``
axes (elementwise selects/blends, rolls along ``axis=-2``/``-1``), so
the very same code fuses one pyramid pair or a whole stacked batch —
:meth:`FusionRule.fuse_stack` hands them ``(6, N, H, W)`` operands and
every frame comes out bitwise-identical to a per-frame
:meth:`FusionRule.fuse`.  Custom subclasses keep batch support for free
as long as their ``fuse_highpass``/``fuse_lowpass`` follow the same
trailing-axes discipline (or override :meth:`fuse_stack`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from ..dtcwt.transform2d import DtcwtPyramid, DtcwtPyramidStack
from ..errors import FusionError


class FusionRule(ABC):
    """Combines N >= 2 same-shape DT-CWT pyramids into one.

    The pairwise :meth:`fuse` / :meth:`fuse_stack` remain the N=2
    entry points; :meth:`fuse_many` / :meth:`fuse_stack_many` reduce
    any number of sources and *delegate to the pairwise path when
    N == 2*, so two-source results are bitwise-identical whichever
    spelling the caller uses.  The default N-ary reduction left-folds
    :meth:`fuse_highpass` (exact for selection rules whose pairwise
    comparison is associative, e.g. max-magnitude) and uniformly
    averages the low-pass; rules with genuinely N-ary semantics
    override :meth:`fuse_highpass_many` / :meth:`fuse_lowpass_many`.
    """

    name = "rule"

    def fuse(self, a: DtcwtPyramid, b: DtcwtPyramid) -> DtcwtPyramid:
        """Return the fused pyramid (inputs are not modified)."""
        _check_compatible(a, b)
        highpasses = tuple(
            self.fuse_highpass(ha, hb)
            for ha, hb in zip(a.highpasses, b.highpasses)
        )
        lowpass = self.fuse_lowpass(a.lowpass, b.lowpass)
        return DtcwtPyramid(
            lowpass=lowpass,
            highpasses=highpasses,
            original_shape=a.original_shape,
            padded_shape=a.padded_shape,
            levels=a.levels,
        )

    def fuse_stack(self, a: DtcwtPyramidStack, b: DtcwtPyramidStack
                   ) -> DtcwtPyramidStack:
        """Fuse ``N`` pyramid pairs in single vectorized calls.

        Frame ``i`` of the result is bitwise-identical to
        ``fuse(a[i], b[i])``; the whole batch costs the same number of
        NumPy calls as one pair.
        """
        _check_compatible(a, b)
        if a.count != b.count:
            raise FusionError(
                f"pyramid stacks disagree on frame count: {a.count} vs "
                f"{b.count}"
            )
        highpasses = tuple(
            self.fuse_highpass(ha, hb)
            for ha, hb in zip(a.highpasses, b.highpasses)
        )
        lowpass = self.fuse_lowpass(a.lowpass, b.lowpass)
        return DtcwtPyramidStack(
            lowpass=lowpass,
            highpasses=highpasses,
            original_shape=a.original_shape,
            padded_shape=a.padded_shape,
            levels=a.levels,
        )

    def fuse_many(self, pyramids: Sequence[DtcwtPyramid]) -> DtcwtPyramid:
        """Reduce N >= 2 pyramids into one fused pyramid.

        ``fuse_many([a, b])`` is bitwise-identical to ``fuse(a, b)``
        (it *is* that call).
        """
        pyramids = list(pyramids)
        if len(pyramids) < 2:
            raise FusionError(
                f"fuse_many needs >= 2 pyramids, got {len(pyramids)}")
        if len(pyramids) == 2:
            return self.fuse(pyramids[0], pyramids[1])
        first = pyramids[0]
        for other in pyramids[1:]:
            _check_compatible(first, other)
        highpasses = tuple(
            self.fuse_highpass_many(bands)
            for bands in zip(*(p.highpasses for p in pyramids))
        )
        lowpass = self.fuse_lowpass_many([p.lowpass for p in pyramids])
        return DtcwtPyramid(
            lowpass=lowpass,
            highpasses=highpasses,
            original_shape=first.original_shape,
            padded_shape=first.padded_shape,
            levels=first.levels,
        )

    def fuse_stack_many(self, stacks: Sequence[DtcwtPyramidStack]
                        ) -> DtcwtPyramidStack:
        """Reduce N >= 2 pyramid *stacks*, vectorized over frames.

        Frame ``i`` of the result is bitwise-identical to
        ``fuse_many([s[i] for s in stacks])``; two stacks delegate to
        the pairwise :meth:`fuse_stack`.
        """
        stacks = list(stacks)
        if len(stacks) < 2:
            raise FusionError(
                f"fuse_stack_many needs >= 2 stacks, got {len(stacks)}")
        if len(stacks) == 2:
            return self.fuse_stack(stacks[0], stacks[1])
        first = stacks[0]
        for other in stacks[1:]:
            _check_compatible(first, other)
            if first.count != other.count:
                raise FusionError(
                    f"pyramid stacks disagree on frame count: "
                    f"{first.count} vs {other.count}"
                )
        highpasses = tuple(
            self.fuse_highpass_many(bands)
            for bands in zip(*(s.highpasses for s in stacks))
        )
        lowpass = self.fuse_lowpass_many([s.lowpass for s in stacks])
        return DtcwtPyramidStack(
            lowpass=lowpass,
            highpasses=highpasses,
            original_shape=first.original_shape,
            padded_shape=first.padded_shape,
            levels=first.levels,
        )

    @abstractmethod
    def fuse_highpass(self, band_a: np.ndarray, band_b: np.ndarray) -> np.ndarray:
        """Combine one level's complex subbands ``(6, ..., H, W)``.

        Implementations must only address the trailing two axes so
        stacked batches fuse identically to single frames.
        """

    def fuse_lowpass(self, low_a: np.ndarray, low_b: np.ndarray) -> np.ndarray:
        """Default low-pass handling: average the two modalities."""
        return (low_a + low_b) / 2.0

    def fuse_highpass_many(self, bands: Sequence[np.ndarray]) -> np.ndarray:
        """N-ary high-pass reduction; the default left-folds the
        pairwise rule (earlier sources win pairwise ties, matching the
        two-source convention)."""
        fused = bands[0]
        for band in bands[1:]:
            fused = self.fuse_highpass(fused, band)
        return fused

    def fuse_lowpass_many(self, lows: Sequence[np.ndarray]) -> np.ndarray:
        """N-ary low-pass reduction; the default is the uniform mean
        (the N-source generalization of the pairwise average)."""
        total = lows[0] + lows[1]
        for low in lows[2:]:
            total = total + low
        return total / float(len(lows))


class MaxMagnitudeRule(FusionRule):
    """Per-coefficient selection of the larger complex magnitude.

    The paper's rule: keep the coefficient with more local energy,
    which transfers the sharpest structure from either modality.
    """

    name = "max-magnitude"

    def fuse_highpass(self, band_a: np.ndarray, band_b: np.ndarray) -> np.ndarray:
        choose_a = np.abs(band_a) >= np.abs(band_b)
        return np.where(choose_a, band_a, band_b)

    def fuse_highpass_many(self, bands: Sequence[np.ndarray]) -> np.ndarray:
        # one argmax over the source axis instead of N-1 pairwise
        # folds; argmax returns the first maximum, which is exactly
        # the fold's earliest-source tie-break
        stacked = np.stack(bands)
        choice = np.argmax(np.abs(stacked), axis=0)
        return np.take_along_axis(stacked, choice[None], axis=0)[0]


class WeightedRule(FusionRule):
    """Fixed-weight linear blend of coefficients (alpha toward input A).

    Mostly useful as a lower bound in quality studies: blending complex
    coefficients averages away contrast that selection rules keep.
    """

    name = "weighted"

    def __init__(self, alpha: float = 0.5):
        if not 0.0 <= alpha <= 1.0:
            raise FusionError(f"alpha must be within [0, 1], got {alpha}")
        self.alpha = alpha

    def fuse_highpass(self, band_a: np.ndarray, band_b: np.ndarray) -> np.ndarray:
        return self.alpha * band_a + (1.0 - self.alpha) * band_b

    def fuse_lowpass(self, low_a: np.ndarray, low_b: np.ndarray) -> np.ndarray:
        return self.alpha * low_a + (1.0 - self.alpha) * low_b

    def _blend_many(self, operands: Sequence[np.ndarray]) -> np.ndarray:
        # alpha toward source 0; the remainder shared uniformly —
        # the N-source generalization of the pairwise blend
        rest = (1.0 - self.alpha) / float(len(operands) - 1)
        fused = self.alpha * operands[0]
        for operand in operands[1:]:
            fused = fused + rest * operand
        return fused

    def fuse_highpass_many(self, bands: Sequence[np.ndarray]) -> np.ndarray:
        return self._blend_many(bands)

    def fuse_lowpass_many(self, lows: Sequence[np.ndarray]) -> np.ndarray:
        return self._blend_many(lows)


class WindowActivityRule(FusionRule):
    """Area-based selection with an optional consistency check.

    The activity of each coefficient is the local sum of ``|z|`` over a
    ``window x window`` neighbourhood; whole neighbourhoods vote for the
    source with more energy, which suppresses the salt-and-pepper
    selection noise of the per-coefficient rule.  With
    ``consistency=True`` a majority filter flips isolated decisions —
    the standard Li/Kingsbury refinement.
    """

    name = "window-activity"

    def __init__(self, window: int = 3, consistency: bool = True):
        if window < 1 or window % 2 == 0:
            raise FusionError(f"window must be odd and >= 1, got {window}")
        self.window = window
        self.consistency = consistency

    def fuse_highpass(self, band_a: np.ndarray, band_b: np.ndarray) -> np.ndarray:
        act_a = _box_sum(np.abs(band_a), self.window)
        act_b = _box_sum(np.abs(band_b), self.window)
        choose_a = act_a >= act_b
        if self.consistency:
            votes = _box_sum(choose_a.astype(np.float64), self.window)
            majority = self.window * self.window / 2.0
            choose_a = votes > majority
        return np.where(choose_a, band_a, band_b)

    def fuse_highpass_many(self, bands: Sequence[np.ndarray]) -> np.ndarray:
        stacked = np.stack(bands)
        activity = _box_sum(np.abs(stacked), self.window)
        # first maximum wins: the earliest-source tie-break of the
        # pairwise rule, generalized
        choice = np.argmax(activity, axis=0)
        if self.consistency:
            # each source's local vote share; re-argmax flips isolated
            # decisions toward the neighbourhood consensus
            votes = np.stack([
                _box_sum((choice == s).astype(np.float64), self.window)
                for s in range(stacked.shape[0])])
            choice = np.argmax(votes, axis=0)
        return np.take_along_axis(stacked, choice[None], axis=0)[0]


def _box_sum(stack: np.ndarray, window: int) -> np.ndarray:
    """Sliding-window sum over the trailing two axes (edge-replicated)."""
    half = window // 2
    out = np.zeros_like(stack)
    for dy in range(-half, half + 1):
        rolled = np.roll(stack, dy, axis=-2)
        for dx in range(-half, half + 1):
            out += np.roll(rolled, dx, axis=-1)
    return out


def _check_compatible(a, b) -> None:
    """Shared structural check for pyramid pairs and stack pairs."""
    if a.levels != b.levels:
        raise FusionError(
            f"pyramids disagree on levels: {a.levels} vs {b.levels}"
        )
    if a.padded_shape != b.padded_shape:
        raise FusionError(
            f"pyramids disagree on shape: {a.padded_shape} vs {b.padded_shape}"
        )


def rule_by_name(name: str, **kwargs) -> FusionRule:
    """Factory used by the CLI and the examples."""
    rules = {
        MaxMagnitudeRule.name: MaxMagnitudeRule,
        WeightedRule.name: WeightedRule,
        WindowActivityRule.name: WindowActivityRule,
    }
    if name not in rules:
        raise FusionError(f"unknown fusion rule {name!r}; known: {sorted(rules)}")
    return rules[name](**kwargs)
