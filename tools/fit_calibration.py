#!/usr/bin/env python3
"""Re-derive the fitted constants in ``repro.hw.calibration``.

Fits the FPGA PS-side cost parameters (driver invocation cost and
user-space memcpy cost per word) to the paper's published anchor
points, holding the physically-derived parts of the model (PL cycle
counts, work model) fixed.  Prints the resulting constants and the
achieved-vs-target table; the maintainer pastes the values into
``Calibration`` so the library needs no scipy at runtime.

Run:  python tools/fit_calibration.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np
from scipy import optimize

from repro.hw.arm import ArmEngine
from repro.hw.calibration import DEFAULT_CALIBRATION
from repro.hw.fpga import FpgaEngine
from repro.hw.neon import NeonEngine
from repro.types import FrameShape

FULL = FrameShape(88, 72)
SMALL = FrameShape(32, 24)
MID = FrameShape(40, 40)


def targets():
    arm = ArmEngine()
    neon = NeonEngine()
    t_fwd_full = 0.444 * arm.forward_stage_time(FULL)    # -55.6 %
    t_inv_full = 0.394 * arm.inverse_stage_time(FULL)    # -60.6 %
    t_fwd_small = 1.364 * neon.forward_stage_time(SMALL)  # +36.4 % vs NEON
    # Fig. 9(c): the inverse on FPGA only beats NEON past 40x40, so at
    # 40x40 it must still be slightly behind
    t_inv_mid = 1.04 * neon.inverse_stage_time(MID)
    return t_fwd_full, t_inv_full, t_fwd_small, t_inv_mid


def residuals(params: np.ndarray) -> np.ndarray:
    driver_s, word_s, marshal_s = params
    if driver_s <= 0 or word_s <= 0 or marshal_s < 0:
        return np.array([1e3, 1e3, 1e3, 1e3])
    cal = DEFAULT_CALIBRATION.with_overrides(
        fpga_driver_invocation_s=float(driver_s),
        fpga_ps_word_s=float(word_s),
        fpga_inverse_marshal_s=float(marshal_s),
    )
    fpga = FpgaEngine(calibration=cal)
    t1, t2, t3, t4 = targets()
    return np.array([
        fpga.forward_stage_time(FULL) / t1 - 1.0,
        fpga.inverse_stage_time(FULL) / t2 - 1.0,
        fpga.forward_stage_time(SMALL) / t3 - 1.0,
        0.5 * (fpga.inverse_stage_time(MID) / t4 - 1.0),
    ])


def main() -> None:
    start = np.array([DEFAULT_CALIBRATION.fpga_driver_invocation_s,
                      DEFAULT_CALIBRATION.fpga_ps_word_s,
                      DEFAULT_CALIBRATION.fpga_inverse_marshal_s])
    result = optimize.least_squares(
        residuals, start,
        bounds=([1e-6, 1e-9, 0.0], [1e-4, 1e-6, 1e-4]),
    )
    driver_s, word_s, marshal_s = result.x
    print(f"fpga_driver_invocation_s = {driver_s:.4e}")
    print(f"fpga_ps_word_s           = {word_s:.4e}")
    print(f"fpga_inverse_marshal_s   = {marshal_s:.4e}")
    print(f"residuals (relative): {residuals(result.x)}")

    cal = DEFAULT_CALIBRATION.with_overrides(
        fpga_driver_invocation_s=float(driver_s),
        fpga_ps_word_s=float(word_s),
        fpga_inverse_marshal_s=float(marshal_s),
    )
    arm, neon, fpga = ArmEngine(), NeonEngine(), FpgaEngine(calibration=cal)
    print("\nachieved:")
    print("  FPGA fwd gain @88x72:",
          1 - fpga.forward_stage_time(FULL) / arm.forward_stage_time(FULL),
          "(paper 0.556)")
    print("  FPGA inv gain @88x72:",
          1 - fpga.inverse_stage_time(FULL) / arm.inverse_stage_time(FULL),
          "(paper 0.606)")
    print("  FPGA/NEON fwd @32x24:",
          fpga.forward_stage_time(SMALL) / neon.forward_stage_time(SMALL),
          "(paper 1.364)")
    print("  FPGA total gain @88x72:",
          1 - fpga.frame_time(FULL).total_s / arm.frame_time(FULL).total_s,
          "(paper 0.481)")


if __name__ == "__main__":
    main()
