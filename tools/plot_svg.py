#!/usr/bin/env python3
"""Render the paper's evaluation figures as SVG files.

Thin wrapper over :func:`repro.figures.generate_figures` (also exposed
as ``repro-fusion figures``) kept for direct script use.

Run:  python tools/plot_svg.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.figures import generate_figures  # noqa: E402


def main(out_dir: str = "figures") -> None:
    for path in generate_figures(out_dir):
        print(f"wrote {path}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "figures")
