"""Fusion quality: DT-CWT vs related-work baselines (Section I's claim).

'Compared to other schemes, wavelet transform achieves better signal to
noise ratios and improved perception with no blocking artefacts ...
the use of the DT-CWT has been shown to produce significant fusion
quality improvement.'

Two standard scenarios quantify that:

* **multifocus** — two differently-blurred views of a ground-truth
  scene; PSNR/SSIM against the truth measure restoration quality;
* **misregistration** — the thermal source shifted by one pixel; the
  output of a shift-invariant transform changes gracefully.
"""

import numpy as np

from repro.baselines import fuse_average, fuse_dwt, fuse_laplacian, fuse_pca
from repro.core.fusion import fuse_images
from repro.core.metrics import petrovic_qabf, psnr, ssim
from repro.video.scene import SyntheticScene

from conftest import format_line

_FUSERS = {
    "dtcwt": lambda a, b: fuse_images(a, b, levels=3),
    "dwt": fuse_dwt,
    "laplacian": fuse_laplacian,
    "average": fuse_average,
    "pca": fuse_pca,
}


def _scene_images():
    scene = SyntheticScene(width=128, height=96, seed=1)
    return scene.render_visible(0.0), scene.render_thermal(0.0)


def _blur(img, passes=6):
    out = img.copy()
    for _ in range(passes):
        out = (out + np.roll(out, 1, 0) + np.roll(out, -1, 0)
               + np.roll(out, 1, 1) + np.roll(out, -1, 1)) / 5.0
    return out


def test_multifocus_quality(report):
    vis, _ = _scene_images()
    blurred = _blur(vis)
    left = vis.copy()
    left[:, 64:] = blurred[:, 64:]
    right = vis.copy()
    right[:, :64] = blurred[:, :64]

    lines = ["Multifocus fusion vs ground truth (higher is better):",
             f"  {'method':<11} {'Q^AB/F':>8} {'PSNR':>8} {'SSIM':>8}"]
    scores = {}
    for name, fuse in _FUSERS.items():
        fused = fuse(left, right)
        scores[name] = (petrovic_qabf(left, right, fused),
                        psnr(vis, fused), ssim(vis, fused))
        lines.append(f"  {name:<11} {scores[name][0]:>8.4f} "
                     f"{scores[name][1]:>8.2f} {scores[name][2]:>8.4f}")
    lines.append("")
    lines.append(format_line("DT-CWT vs DWT (PSNR)", "DT-CWT better",
                             f"{scores['dtcwt'][1]:.1f} vs "
                             f"{scores['dwt'][1]:.1f} dB"))
    report("\n".join(lines))

    assert scores["dtcwt"][1] > scores["dwt"][1]        # beats real DWT
    assert scores["dtcwt"][1] > scores["laplacian"][1]  # beats pyramid
    assert scores["dtcwt"][1] > scores["average"][1]    # beats naive


def test_misregistration_robustness(report):
    """Shift invariance in action: fusing with a 1-px-shifted source
    should perturb the output least for the DT-CWT."""
    vis, th = _scene_images()
    th_shifted = np.roll(th, 1, axis=0)

    lines = ["Output sensitivity to 1-px source misregistration "
             "(mean |delta|, lower is better):"]
    sensitivity = {}
    for name in ("dtcwt", "dwt", "laplacian"):
        fuse = _FUSERS[name]
        delta = np.mean(np.abs(fuse(vis, th_shifted) - fuse(vis, th)))
        sensitivity[name] = float(delta)
        lines.append(f"  {name:<11} {delta:8.4f}")
    report("\n".join(lines))

    assert sensitivity["dtcwt"] < sensitivity["dwt"]
    assert sensitivity["dtcwt"] < sensitivity["laplacian"]


def test_visible_thermal_fusion_report(report):
    """The system's actual workload: IR + visible surveillance frames."""
    vis, th = _scene_images()
    lines = ["Visible+thermal fusion (no-reference metrics):",
             f"  {'method':<11} {'Q^AB/F':>8} {'entropy':>8}"]
    from repro.core.metrics import entropy
    qabf_scores = {}
    for name, fuse in _FUSERS.items():
        fused = fuse(vis, th)
        qabf_scores[name] = petrovic_qabf(vis, th, fused)
        lines.append(f"  {name:<11} {qabf_scores[name]:>8.4f} "
                     f"{entropy(fused):>8.3f}")
    report("\n".join(lines))
    assert qabf_scores["dtcwt"] > qabf_scores["average"]


def test_dtcwt_fusion_kernel(benchmark):
    vis, th = _scene_images()
    fused = benchmark(fuse_images, vis, th)
    assert fused.shape == vis.shape
