"""GP-port vs ACP+DMA transfers (Section V's motivation for the DMA).

'The general purpose 32-bit ports do not obtain the require performance
and every transfer requires around 25 clock cycles with the CPU moving
the data itself. For this reason we created a custom DMA engine...'
"""

from repro.hw.axi import AcpModel, AxiLiteModel, GpPortModel
from repro.types import FrameShape

from conftest import format_line


def test_gp_vs_acp_bandwidth(report):
    gp = GpPortModel()
    acp = AcpModel()

    lines = ["PS<->PL transfer mechanisms:",
             f"  {'words':>8} {'GP (us)':>10} {'ACP (us)':>10} {'ratio':>7}"]
    for words in (16, 128, 1024, 2048):
        t_gp = gp.transfer_s(words) * 1e6
        t_acp = acp.transfer_s(words) * 1e6
        lines.append(f"  {words:>8} {t_gp:>10.2f} {t_acp:>10.2f} "
                     f"{t_gp / t_acp:>7.1f}x")
    lines.append("")
    lines.append(format_line("GP cost per word", "~25 PS cycles",
                             f"{gp.transfer_s(1) * 533e6:.0f} cycles"))
    lines.append(format_line("ACP burst bandwidth", "(DMA engine)",
                             f"{acp.bandwidth_bytes_per_s() / 1e6:.0f} MB/s"))
    report("\n".join(lines))

    assert abs(gp.transfer_s(1) * 533e6 - 25.0) < 1e-6
    assert gp.transfer_s(2048) > 5 * acp.transfer_s(2048)


def test_what_if_gp_based_engine(report, engines):
    """If every pass's data moved through a GP port instead of the DMA,
    the FPGA's crossover moves past 40x40 — it loses the mid-size wins
    the paper reports, which is why the custom memcpy master exists."""
    from repro.hw.work import WorkModel
    gp = GpPortModel()
    neon = engines["neon"]
    fpga = engines["fpga"]

    lines = ["Hypothetical GP-port engine (forward stage, ms / frame):",
             f"  {'size':>7} {'NEON':>9} {'FPGA+DMA':>9} {'FPGA+GP':>9}"]
    results = {}
    for shape in [FrameShape(32, 24), FrameShape(40, 40), FrameShape(88, 72)]:
        work = WorkModel(shape, levels=3)
        gp_transfer = 2 * sum(gp.transfer_s(p.words_in + p.words_out)
                              for p in work.forward_passes())
        t_fpga = fpga.forward_stage_time(shape)
        t_gp_engine = t_fpga + gp_transfer  # DMA replaced by CPU copying
        t_neon = neon.forward_stage_time(shape)
        results[str(shape)] = (t_neon, t_fpga, t_gp_engine)
        lines.append(f"  {str(shape):>7} {t_neon * 1e3:>9.2f} "
                     f"{t_fpga * 1e3:>9.2f} {t_gp_engine * 1e3:>9.2f}")
    report("\n".join(lines))

    neon_40, dma_40, gp_40 = results["40x40"]
    assert dma_40 < neon_40 < gp_40  # the DMA is what wins 40x40
    for t_neon, t_fpga, t_gp in results.values():
        assert t_gp > t_fpga  # CPU-moved data always costs extra


def test_axilite_kernel(benchmark):
    lite = AxiLiteModel()
    total = benchmark(lambda: sum(lite.write_s(4) for _ in range(1000)))
    assert total > 0
