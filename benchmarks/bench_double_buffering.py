"""Double-buffering ablation (the Fig. 5 design choice).

The paper splits the kernel memory into two areas so user-space
memcpys overlap hardware processing.  This bench quantifies what that
buys at each frame size, and what a single-buffered driver would cost.
"""

from repro.hw.fpga import FpgaEngine
from repro.types import PAPER_FRAME_SIZES, FrameShape

from conftest import format_line


def test_double_buffering_gain(report):
    db_on = FpgaEngine(double_buffered=True)
    db_off = FpgaEngine(double_buffered=False)

    lines = ["Double buffering ablation (FPGA forward stage, ms / frame):",
             f"  {'size':>7} {'single':>9} {'double':>9} {'saving':>8}"]
    for shape in PAPER_FRAME_SIZES:
        t_off = db_off.forward_stage_time(shape) * 1e3
        t_on = db_on.forward_stage_time(shape) * 1e3
        lines.append(f"  {str(shape):>7} {t_off:>9.3f} {t_on:>9.3f} "
                     f"{100 * (1 - t_on / t_off):>7.1f}%")
    report("\n".join(lines))

    full = FrameShape(88, 72)
    assert db_on.forward_stage_time(full) < db_off.forward_stage_time(full)


def test_breakdown_attribution(report):
    """With double buffering, PS transfers hide under hardware time."""
    db_on = FpgaEngine(double_buffered=True)
    db_off = FpgaEngine(double_buffered=False)
    full = FrameShape(88, 72)
    on = db_on.forward_time(full)
    off = db_off.forward_time(full)

    lines = ["Latency attribution @88x72 (forward, one image):"]
    for label, b in (("single-buffered", off), ("double-buffered", on)):
        lines.append(f"  {label:<16} compute {b.compute_s * 1e3:6.2f} ms | "
                     f"transfer {b.transfer_s * 1e3:6.2f} ms | "
                     f"command {b.command_s * 1e3:6.2f} ms")
    lines.append("")
    lines.append(format_line("exposed transfer time shrinks", "Fig. 5",
                             f"{off.transfer_s * 1e3:.2f} -> "
                             f"{on.transfer_s * 1e3:.2f} ms"))
    report("\n".join(lines))

    assert on.transfer_s < off.transfer_s
    # the command cost never hides — it is why small frames lose
    assert abs(on.command_s - off.command_s) < 1e-9


def test_schedule_kernel(benchmark):
    from repro.hw.driver import PassCost, WaveletDriver
    driver = WaveletDriver()
    passes = [PassCost(3e-6, 2e-6, 4e-6, 25e-6) for _ in range(712)]
    breakdown = benchmark(driver.schedule, passes, True)
    assert breakdown.total_s > 0
