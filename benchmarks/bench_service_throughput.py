"""Service throughput: N concurrent streams vs back-to-back serial runs.

The serving layer's claim is that multiplexing independent streams
over one shared engine pool buys *aggregate* wall-clock throughput —
micro-batched plan interpretation amortizes per-frame Python overhead
inside NumPy even on one core, and multi-core hosts additionally
overlap streams across pool engines — without changing a single output
bit of any stream.  This bench runs the issue's mixed 4-stream
workload (two small-frame batch streams, one temporal, one
registration) through :class:`repro.serve.FusionService` on a shared
``1×ARM + 1×NEON + 2×FPGA`` pool, against the obvious baseline:
running the same four streams back-to-back, serially, one session at a
time.  Bitwise per-stream parity against the baseline is asserted, not
assumed.

Runs two ways:

* under pytest (like every other bench): ``pytest
  benchmarks/bench_service_throughput.py``;
* as a script with a CI-friendly quick mode::

      PYTHONPATH=src python benchmarks/bench_service_throughput.py --quick
      PYTHONPATH=src python benchmarks/bench_service_throughput.py \
          --scale 2 --min-speedup 1.5

``--quick`` gates on the issue's acceptance bar (aggregate fps >= 1.5x
the back-to-back serial baseline) unless ``--min-speedup`` overrides
it; ``--json-out`` writes the machine-readable rows for CI artifacts
(the ``BENCH_serve.json`` upload).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time
from typing import Dict, List, Tuple

from repro.serve import FusionService
from repro.session import ArraySource, FusionConfig, FusionSession
from repro.types import FrameShape
from repro.video.scaler import resize_to
from repro.video.scene import SyntheticScene

SMALL = FrameShape(32, 24)
MID = FrameShape(40, 40)

#: the acceptance pool: the paper's board plus a second FPGA fabric
POOL = {"arm": 1, "neon": 1, "fpga": 2}

#: (name, config overrides, seed, frames at scale 1) — batch streams
#: carry more frames, the realistic shape of bulk batch tenants (the
#: CPU engines, whose NumPy kernels vectorize across stacked frames)
#: sharing a box with two latency-ish streams pinned to the FPGAs
WORKLOAD: Tuple[Tuple[str, Dict, int, int], ...] = (
    ("batch-a", dict(engine="arm", executor="batch", batch_size=16,
                     fusion_shape=SMALL), 11, 32),
    ("batch-b", dict(engine="neon", executor="batch", batch_size=16,
                     fusion_shape=SMALL), 12, 32),
    ("temporal", dict(engine="fpga", temporal=True,
                      fusion_shape=MID), 13, 8),
    ("registration", dict(engine="fpga", registration=True,
                          fusion_shape=MID), 14, 8),
)


def build_config(overrides: Dict) -> FusionConfig:
    base = dict(levels=2, seed=5, quality_metrics=False,
                keep_records=True)
    base.update(overrides)
    return FusionConfig(**base)


def recorded_footage(overrides: Dict, seed: int,
                     frames: int) -> ArraySource:
    """Pre-rendered frame pairs at the stream's fusion geometry.

    The bench compares *execution strategies*, so both sides replay
    identical recorded footage (the realistic serving input) instead
    of paying the synthetic scene's full-resolution render inside the
    measured interval — that cost is identical dead weight on both
    sides and only dilutes the comparison.
    """
    shape = build_config(overrides).fusion_shape.array_shape
    scene = SyntheticScene(seed=seed)
    visible, thermal = [], []
    for i in range(frames):
        t_s = i / 25.0
        visible.append(resize_to(scene.render_visible(t_s), shape))
        thermal.append(resize_to(scene.render_thermal(t_s), shape))
    return ArraySource(visible, thermal)


def frame_hashes(records) -> List[str]:
    return [hashlib.sha256(r.frame.pixels.tobytes()).hexdigest()
            for r in records]


def run_baseline(scale: int,
                 footage: Dict[str, ArraySource]
                 ) -> Tuple[Dict[str, Dict], float]:
    """The four streams back-to-back, serially, one session at a time."""
    rows: Dict[str, Dict] = {}
    total_wall = 0.0
    for name, overrides, seed, frames in WORKLOAD:
        config = build_config(overrides).with_overrides(executor="serial")
        n = frames * scale
        with FusionSession(config) as session:
            start = time.perf_counter()
            report = session.run(n, source=footage[name])
            wall = time.perf_counter() - start
        total_wall += wall
        rows[name] = {
            "frames": report.frames,
            "serial_wall_s": wall,
            "serial_fps": report.frames / wall if wall > 0 else 0.0,
            "hashes": frame_hashes(report.records),
        }
    return rows, total_wall


def run_service(scale: int, footage: Dict[str, ArraySource]):
    """The same four streams, concurrently, over the shared pool."""
    # budget sized so every batch tenant can fill a whole micro-batch
    # (saturation would force partial grants and forfeit vectorization)
    service = FusionService(pool=POOL, max_in_flight=len(WORKLOAD) * 16,
                            stream_queue_depth=16)
    for name, overrides, seed, frames in WORKLOAD:
        service.add_stream(name, config=build_config(overrides),
                           source=footage[name],
                           frames=frames * scale)
    return service.serve()


def run_bench(scale: int) -> Tuple[str, Dict]:
    footage = {name: recorded_footage(overrides, seed, frames * scale)
               for name, overrides, seed, frames in WORKLOAD}
    baseline, baseline_wall = run_baseline(scale, footage)
    report = run_service(scale, footage)

    mismatched = []
    for name in baseline:
        served = frame_hashes(report.streams[name].records)
        if served != baseline[name]["hashes"]:
            mismatched.append(name)

    total_frames = sum(row["frames"] for row in baseline.values())
    baseline_fps = (total_frames / baseline_wall
                    if baseline_wall > 0 else 0.0)
    speedup = (report.aggregate_fps / baseline_fps
               if baseline_fps > 0 else 0.0)

    lines = [f"Service throughput: {len(WORKLOAD)} concurrent streams "
             f"on a shared {POOL} pool ({total_frames} frames total, "
             f"cpus={os.cpu_count()}):",
             f"  {'stream':>13} {'frames':>6} {'serial fps':>11} "
             f"{'served fps':>11}  parity"]
    for name, row in baseline.items():
        served = report.streams[name]
        parity = "DIVERGED" if name in mismatched else "bitwise"
        lines.append(
            f"  {name:>13} {row['frames']:>6} {row['serial_fps']:>11.2f} "
            f"{served.throughput['wall_fps']:>11.2f}  {parity}")
    lines.append("")
    lines.append(f"  back-to-back serial: {baseline_fps:8.2f} fps aggregate "
                 f"({baseline_wall:.2f}s)")
    lines.append(f"  FusionService      : {report.aggregate_fps:8.2f} fps "
                 f"aggregate ({report.wall_seconds:.2f}s)  "
                 f"=> {speedup:.2f}x")
    occupancy = ", ".join(f"{label} {frac:.0%}" for label, frac
                          in report.engine_occupancy.items())
    lines.append(f"  engine occupancy   : {occupancy}")
    lines.append(f"  pool leases        : "
                 f"{report.pool['granted']} granted, "
                 f"{report.pool['released']} released, "
                 f"peak {report.pool['peak_outstanding']} outstanding")

    payload = {
        "pool": dict(POOL),
        "scale": scale,
        "frames_total": total_frames,
        "baseline_wall_s": baseline_wall,
        "baseline_fps": baseline_fps,
        "service_wall_s": report.wall_seconds,
        "service_fps": report.aggregate_fps,
        "speedup": speedup,
        "bitwise_parity": not mismatched,
        "mismatched_streams": mismatched,
        "engine_occupancy": dict(report.engine_occupancy),
        "admission": dict(report.admission),
        "pool_stats": dict(report.pool),
        "streams": {
            name: {
                "frames": row["frames"],
                "serial_fps": row["serial_fps"],
                "served_fps": report.streams[name].throughput["wall_fps"],
                "grants": report.streams[name].throughput["grants"],
                "model_mj": report.streams[name].model_millijoules_total,
            }
            for name, row in baseline.items()
        },
    }
    return "\n".join(lines), payload


def test_service_throughput(report):
    """Pytest entry: a small pass proving completion + bitwise parity
    (the speedup gate runs in script mode, where the machine is known)."""
    text, payload = run_bench(scale=1)
    report(text)
    assert payload["bitwise_parity"], payload["mismatched_streams"]
    assert payload["frames_total"] == sum(frames for *_, frames
                                          in WORKLOAD)
    assert payload["service_fps"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: scale 1 and gate at the "
                             "acceptance bar (1.5x) unless "
                             "--min-speedup overrides it")
    parser.add_argument("--scale", type=int, default=2,
                        help="frame-count multiplier per stream "
                             "(default 2; --quick forces 1)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless aggregate service fps >= this "
                             "multiple of the back-to-back serial fps")
    parser.add_argument("--json-out", default=None,
                        help="write the machine-readable rows as JSON")
    args = parser.parse_args(argv)

    scale = 1 if args.quick else args.scale
    min_speedup = args.min_speedup
    if min_speedup is None and args.quick:
        min_speedup = 1.5

    text, payload = run_bench(scale)
    print(text)

    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"  wrote {args.json_out}")

    if not payload["bitwise_parity"]:
        print(f"FAIL: served streams diverged from their solo runs: "
              f"{payload['mismatched_streams']}", file=sys.stderr)
        return 1
    if min_speedup is not None and payload["speedup"] < min_speedup:
        print(f"FAIL: aggregate speedup {payload['speedup']:.2f}x < "
              f"{min_speedup:.2f}x", file=sys.stderr)
        return 1
    if min_speedup is not None:
        print(f"OK: aggregate speedup {payload['speedup']:.2f}x >= "
              f"{min_speedup:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
